"""Versioned binary engine snapshots with mmap-loadable array sections.

A snapshot makes engine state a cheap artifact instead of a cold build:
``KeywordSearchEngine.save(path)`` writes everything a serving process
needs — the database instance, the compiled CSR buffers, the interning
table, the inverted-index postings, corpus statistics and the shard
assignment — and ``KeywordSearchEngine.open(path)`` brings an engine up
an order of magnitude faster than rebuilding those structures from raw
tuples.  Worker processes of the parallel executor each open the same
file; the array sections are ``mmap``-backed, so the page cache shares
them across the fleet.

File layout::

    MAGIC  u32 toc_length  toc_json  section bytes...

The TOC records ``[offset, length, crc32]`` per section (offsets are
relative to the data area, so the TOC's own size never feeds back into
it).  Every section is integrity-checked on open; corruption, truncation
and format or platform mismatches raise
:class:`~repro.errors.SnapshotError` instead of producing a silently
wrong engine.

Restoration is lazy wherever queries allow it:

* the CSR ``array('i')`` buffers are zero-copy ``memoryview`` casts
  over the mapped file;
* edge-payload dicts materialise per CSR entry on first touch
  (:class:`_LazyEdgeData`);
* posting lists decode per token on first lookup
  (:class:`~repro.relational.index._LazyPostings`);
* the networkx tuple graph — only needed by the reference/fast cores
  and by joining-network metrics — is deferred entirely
  (:class:`LazyDataGraph`); a pure-CSR path query never builds it.

The snapshot stores the engine's live-update ``version``; applying
mutation batches to an opened engine bumps it through the ordinary
:class:`~repro.live.changes.ChangeSet` path, and a subsequent ``save``
persists the bumped version.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import tempfile
import zlib
from array import array
from pathlib import Path
from typing import Optional, Union

from repro.durable import fault
from repro.errors import SnapshotError
from repro.graph.csr import FrozenGraph
from repro.graph.data_graph import DataGraph, build_tuple_graph
from repro.graph.fast_traversal import TraversalCache
from repro.relational.database import Database, TupleId
from repro.relational.index import InvertedIndex, Posting, _LazyPostings
from repro.relational.io import schema_from_dict, schema_to_dict
from repro.relational.statistics import DatabaseStatistics

__all__ = ["SNAPSHOT_FORMAT", "Snapshot", "write_snapshot", "load_engine", "LazyDataGraph"]

_MAGIC = b"REPROSNP\x01"
SNAPSHOT_FORMAT = 1

_REQUIRED_SECTIONS = (
    "meta",
    "schema",
    "interning",
    "csr_offsets",
    "csr_targets",
    "edge_keys",
    "edge_ref",
    "postings",
    "tokens",
    "stats",
)


class _LazyStores(dict):
    """Per-relation tuple stores materialised from their snapshot
    sections on first access.

    Each relation's rows live in their own integrity-checked section, so
    a serving process only parses and objectifies the relations its
    queries actually render.  Once a store is built (or assigned — e.g.
    by a rollback's order restore) plain dict semantics apply.
    """

    def __init__(self, loaders: dict) -> None:
        super().__init__()
        self._pending = loaders

    def __missing__(self, name: str) -> dict:
        loader = self._pending.pop(name, None)
        if loader is None:
            raise KeyError(name)
        store = loader()
        self[name] = store
        return store

    def __setitem__(self, name, store) -> None:
        self._pending.pop(name, None)
        dict.__setitem__(self, name, store)

    def get(self, name, default=None):
        if name in self:
            return self[name]
        return default

    def __contains__(self, name) -> bool:
        return dict.__contains__(self, name) or name in self._pending

    def __iter__(self):
        yield from dict.__iter__(self)
        yield from list(self._pending)

    def __len__(self) -> int:
        return dict.__len__(self) + len(self._pending)

    def keys(self):
        return list(self)

    def values(self):
        for name in list(self):
            yield self[name]

    def items(self):
        for name in list(self):
            yield name, self[name]


class LazyDataGraph(DataGraph):
    """A :class:`DataGraph` whose networkx graph builds on first demand.

    The compiled CSR kernels answer path queries without ever touching
    the tuple multigraph, so a snapshot-opened engine defers its
    construction entirely; the first consumer that needs it (fast or
    reference core, joining-network metrics, live patching) triggers one
    ordinary :func:`~repro.graph.data_graph.build_tuple_graph` pass —
    node and edge order identical to an eager build.
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self._conceptual = None
        self.version = 0
        self._materialized = None

    @property
    def _graph(self):
        if self._materialized is None:
            self._materialized = build_tuple_graph(self.database)
        return self._materialized

    @property
    def materialized(self) -> bool:
        """True once the networkx graph was actually built."""
        return self._materialized is not None

    # ------------------------------------------------------------------
    # deferred patching
    # ------------------------------------------------------------------
    # While the multigraph is unmaterialised, mutating it is pure waste:
    # the deferred ``build_tuple_graph(self.database)`` reads the *live*
    # database, which the batch already updated, so building later
    # reaches the exact state eager patching would.  (The eager path
    # materialises mid-apply from the already-mutated database and then
    # re-adds the same nodes/edges idempotently.)  Skipping keeps WAL
    # replay and restored-engine applies from paying a full graph build;
    # the version bump and conceptual-view invalidation still happen.
    def add_tuple_node(self, record) -> None:
        if self._materialized is None:
            self.invalidate_caches()
            return
        super().add_tuple_node(record)

    def remove_tuple_node(self, tid: TupleId) -> None:
        if self._materialized is None:
            self.invalidate_caches()
            return
        super().remove_tuple_node(tid)

    def add_fk_edge(self, referencing, referenced, foreign_key) -> None:
        if self._materialized is None:
            self.invalidate_caches()
            return
        super().add_fk_edge(referencing, referenced, foreign_key)

    def remove_fk_edge(self, referencing, referenced, foreign_key_name) -> None:
        if self._materialized is None:
            self.invalidate_caches()
            return
        super().remove_fk_edge(referencing, referenced, foreign_key_name)

    def incident_entries(self, tid: TupleId):
        """Incident FK edges of one tuple, straight from the database.

        Yields ``(other_tid, edge_key, edge_data)`` exactly as iterating
        the materialised multigraph's ``edges(tid)`` would — one entry
        per stored foreign-key reference, payload dicts shaped like
        :func:`~repro.graph.data_graph.build_tuple_graph` builds them.
        CSR row patching uses this to rebuild touched rows without
        forcing the full graph build (entries are re-sorted by the
        caller, so listing order does not matter).
        """
        database = self.database
        record = database.tuple(tid)
        schema = database.schema
        for fk in schema.foreign_keys_from(tid.relation):
            target = database.referenced_tuple(record, fk)
            if target is not None:
                yield target.tid, fk.name, {
                    "foreign_key": fk, "referencing": tid,
                }
        for fk in schema.foreign_keys_to(tid.relation):
            for candidate in database.referencing_tuples(record, fk):
                if fk.source == tid.relation and candidate.tid == tid:
                    continue  # self-loop: the outgoing pass yielded it
                yield candidate.tid, fk.name, {
                    "foreign_key": fk, "referencing": candidate.tid,
                }


class _LazyTidList:
    """The interning table, decoded from JSON and into :class:`TupleId`
    objects on demand.

    Kernels touch tuple ids only at yield boundaries and the interning
    map only for a query's match tuples, so opening a snapshot should
    not construct one object per node up front.  The list supports the
    patching operations :meth:`FrozenGraph.apply_changeset` performs
    (append for new nodes, ``None`` assignment for tombstones); full
    iteration — a save, a node-map build — materialises everything once.
    """

    __slots__ = ("_load", "_raw", "_length", "_cache", "_appended")

    def __init__(self, loader, length: int) -> None:
        self._load = loader
        self._raw = None
        self._length = length
        self._cache: dict[int, Optional[TupleId]] = {}
        self._appended: list = []

    def _entries(self):
        if self._raw is None:
            self._raw = self._load()
            if len(self._raw) != self._length:
                raise SnapshotError(
                    "interning section length disagrees with the meta section",
                    expected=self._length,
                    got=len(self._raw),
                )
        return self._raw

    def __len__(self) -> int:
        return self._length + len(self._appended)

    def __getitem__(self, node: int):
        if node < 0:
            node += len(self)
        if node >= self._length:
            return self._appended[node - self._length]
        try:
            return self._cache[node]
        except KeyError:
            relation, key = self._entries()[node]
            tid = TupleId(relation, tuple(key))
            self._cache[node] = tid
            return tid

    def __setitem__(self, node: int, value) -> None:
        if node >= self._length:
            self._appended[node - self._length] = value
        else:
            self._entries()  # keep length validation even on tombstoning
            self._cache[node] = value
            self._raw[node] = None if value is None else [value.relation, list(value.key)]

    def append(self, value) -> None:
        self._appended.append(value)

    def __iter__(self):
        for node in range(len(self)):
            yield self[node]


class _LazyJsonList:
    """A JSON-array section parsed on first element access.

    The expected length comes from the meta section, so ``len()`` —
    which consistency checks and scratch-buffer sizing need at open
    time — never triggers the parse.
    """

    __slots__ = ("_load", "_data", "_length")

    def __init__(self, loader, length: int) -> None:
        self._load = loader
        self._data = None
        self._length = length

    def _items(self) -> list:
        if self._data is None:
            self._data = self._load()
            if len(self._data) != self._length:
                raise SnapshotError(
                    "section length disagrees with the meta section",
                    expected=self._length,
                    got=len(self._data),
                )
        return self._data

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, position):
        return self._items()[position]

    def __iter__(self):
        return iter(self._items())


class _LazyEdgeData:
    """Edge-payload dicts materialised per CSR entry on first access.

    A payload dict is ``{"foreign_key": fk, "referencing": tid}`` —
    derivable from the stored edge key (the FK name), the reference
    flag and the interning table, so the snapshot stores one byte per
    entry instead of a pickled dict, and opening defers all dict
    allocation to the queries that walk the edges.
    """

    __slots__ = ("_cache", "_fk_by_name", "_tid_of", "_keys", "_ref", "_owner")

    def __init__(self, fk_by_name, tid_of, keys, ref_flags, owner_of_entry):
        self._cache: dict[int, dict] = {}
        self._fk_by_name = fk_by_name
        self._tid_of = tid_of
        self._keys = keys
        self._ref = ref_flags
        #: entry index -> (row-owner node, target node)
        self._owner = owner_of_entry

    def __len__(self) -> int:
        return len(self._keys)

    def __getitem__(self, position: int) -> dict:
        cached = self._cache.get(position)
        if cached is None:
            owner, target = self._owner(position)
            referencing = owner if self._ref[position] else target
            cached = {
                "foreign_key": self._fk_by_name[self._keys[position]],
                "referencing": self._tid_of[referencing],
            }
            self._cache[position] = cached
        return cached

    def __iter__(self):
        for position in range(len(self)):
            yield self[position]


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def _statistics_doc(engine) -> dict:
    """Corpus statistics plus the engine's learned planner calibration.

    Calibration rides the stats section
    (:meth:`DatabaseStatistics.to_dict` carries the key only when
    non-empty) so learned estimates survive save/open without a snapshot
    format change — an engine that never calibrated writes the exact
    payload older snapshots had, and older snapshots restore with an
    empty table.
    """
    statistics = DatabaseStatistics(engine.database)
    calibration = getattr(engine, "calibration", None)
    if calibration is not None and len(calibration):
        statistics.calibration = calibration.to_dict()
    return statistics.to_dict()


def write_snapshot(engine, path: Union[str, Path]) -> dict:
    """Write one engine's full state to ``path``; returns the meta dict.

    The compiled graph is compacted first (patched side tables folded
    back into flat CSR form), so a snapshot always stores the clean
    array representation regardless of how many live-update batches the
    engine absorbed.
    """
    frozen = engine.traversal_cache.frozen()
    if frozen._override:
        frozen._compile()
        frozen.compactions += 1
    capacity = frozen.capacity
    node_of = frozen._node_map()

    interning = [
        [tid.relation, list(tid.key)] for tid in frozen._tid_of
    ]

    edge_ref = bytearray(len(frozen._targets))
    position = 0
    for node in range(capacity):
        owner = frozen._tid_of[node]
        start, end = frozen._offsets[node], frozen._offsets[node + 1]
        for entry in range(start, end):
            edge_ref[position] = int(
                frozen._edge_data[entry]["referencing"] == owner
            )
            position += 1

    engine.index._ensure_tokens()  # deferred token state must serialise
    postings_doc: dict[str, list] = {}
    for token, postings in engine.index._postings.items():
        postings_doc[token] = [
            [node_of[posting.tid], posting.attribute, int(posting.whole_value)]
            for posting in postings
        ]
    tokens_doc = [
        [node_of[tid], list(tokens)]
        for tid, tokens in engine.index._tokens_by_tid.items()
    ]

    shard_plan = getattr(engine, "_shard_plan", None)
    meta = {
        "format": SNAPSHOT_FORMAT,
        "engine_version": engine.version,
        "core": engine.core,
        "shard_count": shard_plan.shard_count if shard_plan is not None else (
            engine.shards or 0
        ),
        "byteorder": sys.byteorder,
        "itemsize": frozen._offsets.itemsize,
        "nodes": capacity,
        "entries": len(frozen._targets),
        "tuples": engine.database.count(),
        "schema": engine.database.schema.name,
    }

    sections: list[tuple[str, bytes]] = [
        ("meta", _json_bytes(meta)),
        ("schema", _json_bytes(schema_to_dict(engine.database.schema))),
        ("interning", _json_bytes(interning)),
        ("csr_offsets", frozen._offsets.tobytes()),
        ("csr_targets", frozen._targets.tobytes()),
        ("edge_keys", _json_bytes(list(frozen._edge_keys))),
        ("edge_ref", bytes(edge_ref)),
        ("postings", _json_bytes(postings_doc)),
        ("tokens", _json_bytes(tokens_doc)),
        ("stats", _json_bytes(_statistics_doc(engine))),
    ]
    for relation in engine.database.schema.relations:
        records = engine.database.tuples(relation.name)
        sections.append((
            f"rows:{relation.name}",
            _json_bytes({
                "rows": [record.values for record in records],
                "labels": [record.label for record in records],
            }),
        ))
    if shard_plan is not None:
        sections.append(("shard_assignment", shard_plan.assignment_bytes()))

    toc: dict[str, list] = {}
    offset = 0
    for name, blob in sections:
        toc[name] = [offset, len(blob), zlib.crc32(blob)]
        offset += len(blob)
    toc_bytes = _json_bytes({"format": SNAPSHOT_FORMAT, "sections": toc})

    # Crash-atomic replacement: stream everything into a same-directory
    # temp file, fsync it, then ``os.replace`` over the target and fsync
    # the directory.  A crash at any instant leaves either the previous
    # snapshot or the complete new one — never a torn file.
    path = Path(path)
    directory = str(path.parent) or "."
    fd, temp_name = tempfile.mkstemp(
        dir=directory, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(_MAGIC)
            handle.write(struct.pack("<I", len(toc_bytes)))
            handle.write(toc_bytes)
            fault.maybe("snapshot.mid-save")
            for __, blob in sections:
                handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        fault.maybe("snapshot.pre-replace")
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir opens
        dir_fd = None
    if dir_fd is not None:
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass
        finally:
            os.close(dir_fd)
    meta["generation"] = _generation_of(toc_bytes)
    return meta


def _generation_of(toc_bytes: bytes) -> str:
    """The snapshot's *generation*: a content hash of its table of
    contents.  The TOC carries every section's length and CRC, so any
    state change produces a new generation — the WAL handshake token."""
    return f"{zlib.crc32(toc_bytes):08x}"


def _json_bytes(document) -> bytes:
    return json.dumps(document, separators=(",", ":")).encode("utf-8")


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
class Snapshot:
    """One opened snapshot file: verified TOC plus mmap-backed sections."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.closed = False
        #: Every view handed out (sections and their casts) — released
        #: ahead of the mmap in :meth:`close`, because an mmap with live
        #: exported buffers refuses to close.
        self._exported: list = []
        try:
            with self.path.open("rb") as handle:
                self._mmap = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as error:
            raise SnapshotError(
                "cannot open snapshot file", path=str(path), problem=str(error)
            ) from None
        view = memoryview(self._mmap)
        if bytes(view[: len(_MAGIC)]) != _MAGIC:
            raise SnapshotError("not a repro snapshot (bad magic)", path=str(path))
        try:
            (toc_length,) = struct.unpack_from("<I", view, len(_MAGIC))
            toc_start = len(_MAGIC) + 4
            toc = json.loads(bytes(view[toc_start : toc_start + toc_length]))
        except (struct.error, ValueError) as error:
            raise SnapshotError(
                "snapshot table of contents is corrupt",
                path=str(path),
                problem=str(error),
            ) from None
        if toc.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                "unsupported snapshot format version",
                path=str(path),
                got=toc.get("format"),
                expected=SNAPSHOT_FORMAT,
            )
        self._data_start = toc_start + toc_length
        self._toc: dict[str, list] = toc["sections"]
        self._view = view
        #: Content hash of the raw TOC bytes — the WAL pairing token
        #: (identical to the ``generation`` in ``write_snapshot`` meta).
        self.generation = _generation_of(
            bytes(view[toc_start : toc_start + toc_length])
        )
        for name in _REQUIRED_SECTIONS:
            if name not in self._toc:
                raise SnapshotError(
                    "snapshot is missing a required section",
                    path=str(path),
                    section=name,
                )
        self.verify()
        self.meta = self.json("meta")
        if self.meta.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                "unsupported snapshot format version",
                path=str(path),
                got=self.meta.get("format"),
            )
        if (
            self.meta.get("byteorder") != sys.byteorder
            or self.meta.get("itemsize") != array("i").itemsize
        ):
            raise SnapshotError(
                "snapshot was written on an incompatible platform",
                path=str(path),
                byteorder=self.meta.get("byteorder"),
                itemsize=self.meta.get("itemsize"),
            )

    def sections(self) -> tuple[str, ...]:
        return tuple(self._toc)

    def _section(self, name: str) -> memoryview:
        """Zero-copy view of one section; the caller must release it."""
        if self.closed:
            raise SnapshotError(
                "snapshot is closed", path=str(self.path), section=name
            )
        try:
            offset, length, __ = self._toc[name]
        except KeyError:
            raise SnapshotError(
                "snapshot has no such section", path=str(self.path), section=name
            ) from None
        start = self._data_start + offset
        end = start + length
        if end > len(self._view):
            raise SnapshotError(
                "snapshot section is truncated",
                path=str(self.path),
                section=name,
            )
        return self._view[start:end]

    def section(self, name: str) -> memoryview:
        """Zero-copy view of one section's bytes.

        The view is retained until :meth:`close`; internal transient
        reads (:meth:`json`, :meth:`verify`) go through :meth:`_section`
        instead so repeated calls do not grow the exported list.
        """
        view = self._section(name)
        self._exported.append(view)
        return view

    def json(self, name: str):
        view = self._section(name)
        try:
            payload = bytes(view)
        finally:
            view.release()
        try:
            return json.loads(payload)
        except ValueError as error:
            raise SnapshotError(
                "snapshot section holds invalid JSON",
                path=str(self.path),
                section=name,
                problem=str(error),
            ) from None

    def int_array(self, name: str) -> memoryview:
        """One array section as a zero-copy ``int`` view over the mmap."""
        cast = self.section(name).cast("i")
        self._exported.append(cast)
        return cast

    def close(self) -> None:
        """Release every exported view and the mmap itself.

        Lazily restored structures still holding a released view fail
        loudly (``ValueError: operation forbidden on released
        memoryview object``) instead of silently reading unmapped pages
        — close an engine only once its queries are done.  Idempotent.
        """
        if self.closed:
            return
        self.closed = True
        for view in self._exported:
            view.release()
        self._exported.clear()
        self._view.release()
        self._mmap.close()

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def verify(self) -> None:
        """CRC-check every section; raises on any corruption."""
        for name, (__, ___, crc) in self._toc.items():
            view = self._section(name)
            try:
                matches = zlib.crc32(view) == crc
            finally:
                view.release()
            if not matches:
                raise SnapshotError(
                    "snapshot section failed its integrity check",
                    path=str(self.path),
                    section=name,
                )

    def statistics(self, database: Database) -> DatabaseStatistics:
        """The stored corpus statistics, bound to a restored database."""
        return DatabaseStatistics.from_dict(database, self.json("stats"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Snapshot({str(self.path)!r}, v{self.meta.get('engine_version')}, "
            f"{self.meta.get('nodes')} nodes)"
        )


def load_engine(
    path: Union[str, Path],
    *,
    core: Optional[str] = None,
    shards: Optional[int] = None,
    **engine_options,
):
    """Open a snapshot into a ready :class:`KeywordSearchEngine`.

    The restored engine is bit-identical in query behaviour to the one
    that wrote the snapshot: same database store order, same posting
    order, same compiled CSR expansion order.  ``core`` and ``shards``
    default to the writer's settings; any other
    :class:`KeywordSearchEngine` construction options pass through.

    Observability: emits a ``snapshot.open`` span (on the ambient trace
    unless a query trace is active) and bumps ``snapshot.opens`` when
    the obs layer is enabled — pool workers inherit the same site, so
    ``repro stats`` shows coordinator and worker opens alike.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    with obs_trace.span("snapshot.open", path=str(path)) as open_span:
        engine = _load_engine(
            path, core=core, shards=shards, **engine_options
        )
        if open_span is not None:
            open_span.tag(
                nodes=engine._snapshot.meta.get("nodes"),
                version=engine.version,
            )
    if obs_metrics.ENABLED:
        obs_metrics.REGISTRY.inc("snapshot.opens")
    return engine


def _load_engine(
    path: Union[str, Path],
    *,
    core: Optional[str] = None,
    shards: Optional[int] = None,
    **engine_options,
):
    from repro.core.engine import KeywordSearchEngine

    snapshot = Snapshot(path)
    meta = snapshot.meta

    schema = schema_from_dict(snapshot.json("schema"))
    database = Database(schema, enforce_foreign_keys=True)

    def store_loader(relation_name: str):
        def load() -> dict:
            doc = snapshot.json(f"rows:{relation_name}")
            rows = doc["rows"]
            labels = doc.get("labels") or [None] * len(rows)
            return Database.build_store(schema, relation_name, zip(rows, labels))

        return load

    database._tuples = _LazyStores(
        {relation.name: store_loader(relation.name)
         for relation in schema.relations}
    )

    data_graph = LazyDataGraph(database)

    tid_of = _LazyTidList(
        lambda: snapshot.json("interning"), meta.get("nodes", 0)
    )
    offsets = snapshot.int_array("csr_offsets")
    targets = snapshot.int_array("csr_targets")
    edge_ref = snapshot.section("edge_ref")
    if len(offsets) != len(tid_of) + 1 or len(targets) != meta.get(
        "entries", -1
    ) or len(edge_ref) != len(targets):
        raise SnapshotError(
            "snapshot CSR sections are inconsistent",
            path=str(path),
            nodes=len(tid_of),
            offsets=len(offsets),
            entries=len(targets),
        )
    fk_by_name = {fk.name: fk for fk in schema.foreign_keys}

    def load_edge_keys() -> list:
        keys = snapshot.json("edge_keys")
        missing = set(keys) - set(fk_by_name)
        if missing:
            raise SnapshotError(
                "snapshot edges reference unknown foreign keys",
                path=str(path),
                missing=sorted(missing)[:5],
            )
        return keys

    edge_keys = _LazyJsonList(load_edge_keys, len(targets))

    # Rows the snapshot itself stores.  Live appends grow ``tid_of``
    # past this, but appended nodes keep their edges in override side
    # tables — a stored CSR entry is always owned by a stored row, so
    # the binary search must not wander into offsets the mmap lacks.
    stored_nodes = len(tid_of)

    def owner_of_entry(position: int) -> tuple[int, int]:
        # Binary search the offsets for the row owning a CSR entry.
        low, high = 0, stored_nodes
        while low + 1 < high:
            middle = (low + high) // 2
            if offsets[middle] <= position:
                low = middle
            else:
                high = middle
        return low, targets[position]

    edge_data = _LazyEdgeData(fk_by_name, tid_of, edge_keys, edge_ref, owner_of_entry)
    # The vector backend wraps the mmap-backed CSR sections in zero-copy
    # numpy views (engine.close() drops them before the mmap closes).
    vector = engine_options.get("vector")
    frozen = FrozenGraph.from_parts(
        data_graph, tid_of, offsets, targets, edge_keys, edge_data,
        vector=vector,
    )
    cache = TraversalCache(data_graph, vector=vector)
    cache._frozen = frozen
    frozen._counters = cache

    def decode_postings(entries):
        return [
            Posting(tid_of[node], attribute, bool(whole))
            for node, attribute, whole in entries
        ]

    postings = _LazyPostings(lambda: snapshot.json("postings"), decode_postings)

    def load_tokens():
        return {
            tid_of[node]: tuple(tokens)
            for node, tokens in snapshot.json("tokens")
        }

    index = InvertedIndex.from_state(database, postings, load_tokens)

    engine = KeywordSearchEngine._from_parts(
        database=database,
        data_graph=data_graph,
        index=index,
        traversal_cache=cache,
        core=core if core is not None else meta.get("core"),
        shards=shards if shards is not None else (meta.get("shard_count") or None),
        version=meta.get("engine_version", 0),
        **engine_options,
    )
    engine._statistics_loader = lambda: snapshot.statistics(database)
    # Planner calibration rides the stats section; deferred like every
    # other section until the first cost estimate needs it.
    engine._calibration_loader = (
        lambda: snapshot.json("stats").get("calibration")
    )
    engine.snapshot_path = str(path)
    engine._snapshot_version = engine.version
    engine._snapshot_generation = snapshot.generation
    engine._snapshot = snapshot

    if engine.shards and "shard_assignment" in snapshot.sections():
        from repro.scale.shards import ShardPlan

        if meta.get("shard_count") == engine.shards:
            engine._shard_plan = ShardPlan.from_state(
                cache, engine.shards, snapshot.int_array("shard_assignment")
            )
    return engine
