"""Component-based sharding of the compiled graph.

Every answer the engine can produce — a path, a joining network, a
single tuple — lives entirely inside one connected component of the
data graph: a path cannot jump between components and a joining tree is
connected by definition.  Partitioning the graph along component
boundaries is therefore *lossless*: executing a query shard by shard
enumerates exactly the global answer set, and a (source, target) pair
or required-tuple assignment whose tuples sit in different shards can
be skipped without touching the graph at all.  That skip is the serving
win: with matches spread over K shards, a pair source drops from
``|A|·|B|`` enumeration set-ups to the same-shard subset, and an
N-keyword assignment product shrinks geometrically.

:class:`ShardPlan` owns the partition: a dense ``array('i')`` mapping
every interned node to its shard, built by greedily packing connected
components (largest first) onto the lightest shard — deterministic and
balanced within one component's size.  Each shard lazily compiles its
own :class:`~repro.graph.csr.FrozenGraph` with *local* dense interning
(global↔local maps via the shared :class:`TupleId` objects), so
per-query scratch state — BFS distance rows, visited bytes — is
proportional to the shard, not the database.  :class:`KeywordRouter`
answers "which shards can this query touch" straight from inverted-
index postings.

Plans survive live updates: :meth:`ShardPlan.apply_changeset` reassigns
exactly the components a changeset touched (new components go to the
lightest shard, merged components keep the lowest previous shard id)
and drops only the affected shard graphs.  A compaction of the global
graph renumbers the interning; the plan detects the stamp change and
rebuilds itself.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Optional, Sequence

from repro.errors import QueryError
from repro.graph.csr import FrozenGraph
from repro.graph.fast_traversal import TraversalCache
from repro.relational.database import TupleId
from repro.relational.index import InvertedIndex

__all__ = ["CROSS_SHARD", "ShardPlan", "ShardCache", "KeywordRouter"]

#: Sentinel returned by :meth:`ShardPlan.shard_of_all` when the tuples
#: provably lie in different shards — the enumeration unit can be
#: skipped because no connected answer can cover them.
CROSS_SHARD = object()


class ShardCache:
    """A :class:`TraversalCache`-shaped adapter serving one shard.

    The CSR kernels take a cache, read its ``data_graph`` (identity
    check), call ``frozen()`` and bump its enumeration counters.  This
    adapter hands them the shard's compiled graph while forwarding every
    counter to the engine's real cache, so observability stays global.
    """

    __slots__ = ("_plan", "_shard_id", "_parent")

    def __init__(self, plan: "ShardPlan", shard_id: int, parent: TraversalCache):
        self._plan = plan
        self._shard_id = shard_id
        self._parent = parent

    @property
    def data_graph(self):
        return self._parent.data_graph

    def frozen(self) -> FrozenGraph:
        return self._plan.graph_for(self._shard_id)

    @property
    def paths_enumerated(self) -> int:
        return self._parent.paths_enumerated

    @paths_enumerated.setter
    def paths_enumerated(self, value: int) -> None:
        self._parent.paths_enumerated = value

    @property
    def trees_enumerated(self) -> int:
        return self._parent.trees_enumerated

    @trees_enumerated.setter
    def trees_enumerated(self, value: int) -> None:
        self._parent.trees_enumerated = value


class ShardPlan:
    """Partition of one compiled graph into K component-aligned shards."""

    def __init__(self, cache: TraversalCache, shard_count: int) -> None:
        if shard_count < 1:
            raise QueryError("shard_count must be positive", got=shard_count)
        self.cache = cache
        self.shard_count = shard_count
        #: Bumped whenever the assignment changes (partition, patch,
        #: rebuild) — snapshot/parallel state can key on it.
        self.version = 0
        self._assignment = array("i")
        self._stamp = -1
        self._graphs: dict[int, FrozenGraph] = {}
        self._caches: dict[int, ShardCache] = {}
        self._partition()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_state(
        cls, cache: TraversalCache, shard_count: int, assignment: Iterable[int]
    ) -> "ShardPlan":
        """Rebuild a plan from a snapshot's assignment section.

        The assignment indexes the snapshot's interning, so it is only
        valid against the freshly restored graph; a length mismatch
        falls back to re-partitioning.
        """
        plan = cls.__new__(cls)
        plan.cache = cache
        plan.shard_count = max(1, shard_count)
        plan.version = 0
        plan._graphs = {}
        plan._caches = {}
        frozen = cache.frozen()
        restored = array("i", assignment)
        if len(restored) == frozen.capacity:
            plan._assignment = restored
            plan._stamp = frozen.compile_stamp
        else:  # stale section: interning moved on — rebuild
            plan._assignment = array("i")
            plan._stamp = -1
            plan._partition()
        return plan

    def _partition(self) -> None:
        """(Re)assign every component, largest first onto the lightest shard."""
        frozen = self.cache.frozen()
        components = frozen.components()
        alive = frozen._alive
        sizes: dict[int, int] = {}
        for node in range(frozen.capacity):
            if alive[node]:
                sizes[components[node]] = sizes.get(components[node], 0) + 1
        loads = [0] * self.shard_count
        shard_of_component: dict[int, int] = {}
        for component, size in sorted(
            sizes.items(), key=lambda item: (-item[1], item[0])
        ):
            target = min(range(self.shard_count), key=lambda s: (loads[s], s))
            shard_of_component[component] = target
            loads[target] += size
        assignment = array("i", [-1]) * frozen.capacity
        for node in range(frozen.capacity):
            if alive[node]:
                assignment[node] = shard_of_component[components[node]]
        self._assignment = assignment
        self._stamp = frozen.compile_stamp
        self._graphs.clear()
        self._caches.clear()
        self.version += 1

    def _refresh_if_stale(self) -> None:
        """Re-partition after the global graph was recompiled (compaction
        renumbers the interning, invalidating the whole assignment)."""
        frozen = self.cache.frozen()
        if frozen.compile_stamp != self._stamp:
            self._partition()

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def shard_of(self, tid: TupleId) -> Optional[int]:
        """Shard of one tuple; ``None`` when it is not in the plan."""
        self._refresh_if_stale()
        node = self.cache.frozen().node_of(tid)
        if node is None or node >= len(self._assignment):
            return None
        shard = self._assignment[node]
        return shard if shard >= 0 else None

    def shard_of_all(self, tids: Iterable[TupleId]):
        """Shared shard of a tuple group.

        Returns the shard id when every tuple maps to the same shard,
        ``None`` when any tuple is unknown to the plan (callers must
        fall back to global execution — never skip), and
        :data:`CROSS_SHARD` when two tuples provably live in different
        shards (no connected answer can cover the group).
        """
        shard: Optional[int] = None
        for tid in tids:
            current = self.shard_of(tid)
            if current is None:
                return None
            if shard is None:
                shard = current
            elif current != shard:
                return CROSS_SHARD
        return shard

    def sizes(self) -> list[int]:
        """Live tuple count per shard (balance diagnostic)."""
        self._refresh_if_stale()
        frozen = self.cache.frozen()
        alive = frozen._alive
        counts = [0] * self.shard_count
        for node, shard in enumerate(self._assignment):
            if shard >= 0 and node < len(alive) and alive[node]:
                counts[shard] += 1
        return counts

    def assignment_bytes(self) -> bytes:
        """Raw assignment array (the snapshot's shard section)."""
        self._refresh_if_stale()
        return self._assignment.tobytes()

    def describe(self) -> str:
        sizes = self.sizes()
        rendered = ", ".join(f"s{index}={size}" for index, size in enumerate(sizes))
        return f"{self.shard_count} shards ({rendered})"

    # ------------------------------------------------------------------
    # shard graphs
    # ------------------------------------------------------------------
    def graph_for(self, shard_id: int) -> FrozenGraph:
        """The shard's compiled graph with local dense interning.

        Extracted lazily from the global graph's rows: local ints keep
        the global ``_sort_key`` order (so expansion order is
        unchanged), and every CSR target stays inside the shard because
        components are never split.  Distance rows and visited scratch
        on this graph are O(shard), the locality that makes a serving
        worker's per-query state independent of total database size.
        """
        self._refresh_if_stale()
        cached = self._graphs.get(shard_id)
        if cached is not None:
            return cached
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        with obs_trace.span("shards.extract", shard=shard_id) as extract_span:
            shard_graph = self._extract_graph(shard_id)
            if extract_span is not None:
                extract_span.add(nodes=shard_graph.capacity)
        if obs_metrics.ENABLED:
            obs_metrics.REGISTRY.inc("shards.extracted")
        self._graphs[shard_id] = shard_graph
        return shard_graph

    def _extract_graph(self, shard_id: int) -> FrozenGraph:
        frozen = self.cache.frozen()
        assignment = self._assignment
        alive = frozen._alive
        members = frozen._sort_ints(
            node
            for node in range(frozen.capacity)
            if node < len(assignment)
            and assignment[node] == shard_id
            and alive[node]
        )
        local_of = {node: local for local, node in enumerate(members)}
        tids = [frozen.tid_of(node) for node in members]
        offsets = array("i", [0])
        targets = array("i")
        edge_keys: list[str] = []
        edge_data: list[dict] = []
        for node in members:
            row_targets, row_keys, row_datas, start, end = frozen._row(node)
            for position in range(start, end):
                targets.append(local_of[row_targets[position]])
                edge_keys.append(row_keys[position])
                edge_data.append(row_datas[position])
            offsets.append(len(targets))
        shard_graph = FrozenGraph.from_parts(
            self.cache.data_graph,
            tids,
            offsets,
            targets,
            edge_keys,
            edge_data,
            counters=self.cache,
            vector=self.cache.vector,
        )
        return shard_graph

    def cache_for(self, shard_id: int) -> ShardCache:
        """Kernel-facing cache adapter for one shard (memoised)."""
        cached = self._caches.get(shard_id)
        if cached is None:
            cached = ShardCache(self, shard_id, self.cache)
            self._caches[shard_id] = cached
        return cached

    # ------------------------------------------------------------------
    # live maintenance
    # ------------------------------------------------------------------
    def apply_changeset(self, changeset) -> None:
        """Patch the assignment in place from one applied changeset.

        Call after the compiled graph itself was patched.  Appended
        nodes extend the assignment; every component containing a
        structurally changed tuple is reassigned as a whole — to the
        lowest shard its members previously occupied (merge keeps data
        where most of it was routable before) or, for brand-new
        components, to the currently lightest shard.  Only the touched
        shards' extracted graphs are dropped.
        """
        frozen = self.cache.frozen()
        if frozen.compile_stamp != self._stamp:
            # The patch triggered a compaction: interning was renumbered,
            # so targeted repair is impossible — rebuild wholesale.
            self._partition()
            return
        assignment = self._assignment
        while len(assignment) < frozen.capacity:
            assignment.append(-1)
        alive = frozen._alive
        removed_shards: set[int] = set()
        if changeset.tuples_removed:
            # Removed tuples are already tombstoned (their node_of entry
            # is gone), so sweep stale assignments out by liveness — a
            # dead slot left assigned would leak into its shard's next
            # extraction.
            for node in range(frozen.capacity):
                if assignment[node] >= 0 and not alive[node]:
                    removed_shards.add(assignment[node])
                    assignment[node] = -1
        changed_nodes = [
            node
            for tid in changeset.structural_tuples()
            if (node := frozen.node_of(tid)) is not None
        ]
        if not changed_nodes and not removed_shards:
            return
        if not changed_nodes:
            for shard in removed_shards:
                self._graphs.pop(shard, None)
            self.version += 1
            return
        components = frozen.components()
        affected = {components[node] for node in changed_nodes}
        members_of: dict[int, list[int]] = {component: [] for component in affected}
        loads = [0] * self.shard_count
        for node in range(frozen.capacity):
            if not alive[node]:
                continue
            component = components[node]
            if component in members_of:
                members_of[component].append(node)
            elif assignment[node] >= 0:
                loads[assignment[node]] += 1
        touched_shards: set[int] = set(removed_shards)
        for component in sorted(
            affected, key=lambda c: (-len(members_of[c]), c)
        ):
            members = members_of[component]
            previous = {
                assignment[node] for node in members if assignment[node] >= 0
            }
            if previous:
                target = min(previous)
            else:
                target = min(range(self.shard_count), key=lambda s: (loads[s], s))
            for node in members:
                if assignment[node] != target and assignment[node] >= 0:
                    touched_shards.add(assignment[node])
                assignment[node] = target
            touched_shards.add(target)
            loads[target] += len(members)
        for shard in touched_shards:
            self._graphs.pop(shard, None)
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardPlan({self.describe()})"


class KeywordRouter:
    """Route keywords to the shards holding their matches.

    Built straight from inverted-index postings: a keyword's shard set
    is the set of shards containing its matching tuples.  Under AND
    semantics a shard can only produce answers when *every* keyword has
    a match in it (connected answers cover all keywords inside one
    component), so the route is the intersection; under OR semantics any
    covered subset qualifies, so it is the union.
    """

    def __init__(self, plan: ShardPlan, index: InvertedIndex) -> None:
        self.plan = plan
        self.index = index

    def shards_for(self, keyword: str) -> frozenset[int]:
        """Shards containing at least one match of one keyword."""
        shards = set()
        for tid in self.index.matching_tuples(keyword):
            shard = self.plan.shard_of(tid)
            if shard is not None:
                shards.add(shard)
        return frozenset(shards)

    def route(
        self, keywords: Sequence[str], semantics: str = "and"
    ) -> frozenset[int]:
        """Shards a query must touch; empty means no shard can answer."""
        if semantics not in ("and", "or"):
            raise QueryError("semantics must be 'and' or 'or'", got=semantics)
        sets = [self.shards_for(keyword) for keyword in keywords]
        if not sets:
            return frozenset()
        if semantics == "and":
            routed = set(sets[0])
            for shard_set in sets[1:]:
                routed &= shard_set
            return frozenset(routed)
        routed = set()
        for shard_set in sets:
            routed |= shard_set
        return frozenset(routed)

    def cost_weight(
        self, keywords: Sequence[str], semantics: str = "and"
    ) -> float:
        """Fraction of the graph the routed shards cover, in (0, 1].

        A dispatch weight for the cost-routed batch scheduler: a query
        whose keywords route to one small shard does proportionally
        less enumeration work than one touching the whole graph.  An
        empty route (no shard can answer) weighs as one tuple — the
        query is provably near-free, but never exactly zero so LPT
        tie-breaking stays well-defined.
        """
        sizes = self.plan.sizes()
        total = sum(sizes) or 1
        routed = self.route(keywords, semantics)
        if not routed:
            return 1.0 / total
        covered = sum(sizes[shard] for shard in sorted(routed))
        return covered / total
