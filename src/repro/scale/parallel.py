"""Process-pool batch execution over snapshot-opened shard engines.

``KeywordSearchEngine.search_batch(jobs=N)`` routes here: the batch is
deduplicated, answered query-by-query on a pool of worker processes and
reassembled in input order.  Each worker opens the coordinator's
snapshot **once** (in the pool initializer) into its own engine with the
same core and shard configuration — the snapshot's array sections are
``mmap``-backed, so the workers share page-cache pages instead of
copying the compiled graph N times.

Bit-identity with the serial path is structural, not hoped-for:

* a worker answers a query with exactly the code ``engine.search`` runs
  serially (sharded unit filtering included), so per-query results,
  order and any :class:`~repro.errors.SearchLimitError` are the serial
  ones;
* the coordinator raises the error of the *earliest* failing query in
  input order — the one serial ``search_batch`` would have hit first —
  after committing the results of the queries before it;
* worker counters fold through the commutative
  :meth:`~repro.core.executor.ExecutionStats.merge`, so out-of-order
  pool completion cannot change the aggregated stats.

Results cross the process boundary in a *portable* form (tuple ids,
path steps, keyword bindings, scores) and are revived against the
coordinator's data graph; revival is allocation-cheap because
connection metrics and network spanning trees are computed lazily.

Transport is a ``multiprocessing.shared_memory`` arena when available:
the coordinator creates one arena with a fixed-size region per worker,
workers serialise their chunk outcomes as length-prefixed records
(``<u32 length><pickle bytes>`` each) straight into their own region
and send only ``("shm", (record_count, total_bytes))`` over the pipe —
the pipe never carries answer payloads.  Regions are disjoint and each
worker has at most one outstanding chunk, so the pipe message *is* the
write barrier.  A chunk that outgrows its region (or an arena that
could not be created) falls back to the classic pickled-pipe message
``("ok", outcomes)`` — byte-identical outcomes either way, so the
fallback is invisible above this module.
"""

from __future__ import annotations

import multiprocessing
import pickle
import struct
from dataclasses import replace
from typing import Optional, Sequence

from repro.core.executor import ExecutionStats, SearchResult, SharedEnumerations
from repro.core.search import JoiningNetwork, SingleTupleAnswer
from repro.core.connections import Connection
from repro.durable import fault
from repro.errors import ReproError
from repro.graph.traversal import TuplePathStep
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["ParallelSearcher", "run_batch"]

#: The worker process's engine, opened once per pool worker.
_WORKER_ENGINE = None


def _pool_context():
    """Prefer fork (cheap, snapshot pages shared immediately); fall back
    to spawn where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _init_worker(
    snapshot_path: str,
    core: Optional[str],
    shards: Optional[int],
    result_cache_entries: int,
    adaptive: Optional[bool] = None,
):
    global _WORKER_ENGINE
    from repro.core.engine import KeywordSearchEngine

    _WORKER_ENGINE = KeywordSearchEngine.open(
        snapshot_path,
        core=core,
        shards=shards,
        result_cache_entries=result_cache_entries,
        adaptive=adaptive,
    )


def _portable_answer(answer):
    """Encode one answer for the trip back to the coordinator."""
    if isinstance(answer, SingleTupleAnswer):
        return ("single", answer.tid, answer.covered_keywords)
    if isinstance(answer, Connection):
        steps = tuple(
            (step.source, step.target, step.edge_key, step.edge_data)
            for step in answer.steps
        )
        return ("connection", steps, dict(answer.keyword_matches))
    if isinstance(answer, JoiningNetwork):
        return ("network", answer.tuples, dict(answer.keyword_tuples))
    raise TypeError(f"unportable answer type: {type(answer).__name__}")


def revive_result(data_graph, portable, score, rank) -> SearchResult:
    """Rebuild one :class:`SearchResult` against the coordinator's graph.

    Edge payload dicts travel by value; they compare equal to the
    coordinator's own (payloads are ``{foreign_key, referencing}``
    dataclass/tuple-id values), which is the contract everything
    downstream relies on.  Network spanning trees and connection
    conceptual views stay lazy, so revival is allocation only.
    """
    kind = portable[0]
    if kind == "single":
        answer = SingleTupleAnswer(data_graph, portable[1], portable[2])
    elif kind == "connection":
        steps = [TuplePathStep(*step) for step in portable[1]]
        answer = Connection(data_graph, steps, portable[2])
    else:
        answer = JoiningNetwork(data_graph, portable[1], portable[2])
    return SearchResult(answer=answer, score=score, rank=rank)


def _run_chunk(chunk, engine=None):
    """Answer one contiguous slice of the batch inside a worker.

    A failing query aborts the rest of its chunk (the coordinator never
    uses outcomes past the first batch error anyway) but keeps the
    chunk's earlier successes, mirroring the serial loop.

    Observability rides the same outcome stream: the coordinator's
    enablement travels in ``options["observe"]`` (explicit so spawned
    workers match forked ones), the worker's per-query trace roots and
    its metrics *delta* for the chunk come back as one trailing
    ``(None, "obs", (trace_root, metrics_delta), None)`` pseudo-record
    — identical bytes through the shm and pipe transports, because both
    pickle the same records.

    ``engine`` defaults to the worker's pool engine; the coordinator's
    degraded in-process fallback passes its own.
    """
    fault.maybe("pool.chunk")
    positions, queries, options = chunk
    if engine is None:
        engine = _WORKER_ENGINE
    trace_on, metrics_on = options.get("observe", (False, False))
    # The coordinator's setting is authoritative each chunk — a forked
    # worker may have inherited flags the coordinator has since flipped.
    obs_trace.set_enabled(trace_on)
    obs_metrics.set_enabled(metrics_on)
    metrics_before = obs_metrics.REGISTRY.snapshot() if metrics_on else None
    chunk_trace = (
        obs_trace.begin_trace("worker.batch", queries=len(queries))
        if trace_on
        else None
    )
    outcomes = []
    for position, query in zip(positions, queries):
        try:
            results = engine.search(
                query,
                ranker=options.get("ranker"),
                limits=options.get("limits"),
                top_k=options.get("top_k"),
                semantics=options.get("semantics", "and"),
                pushdown=options.get("pushdown"),
            )
        except ReproError as error:
            outcomes.append((position, "error", error, None))
            break
        finally:
            if chunk_trace is not None and engine.last_trace is not None:
                # engine.search ran its own query trace; re-root it
                # under the chunk so one span tree ships back.
                root = engine.last_trace.root
                root.tag(position=position)
                chunk_trace.adopt(root)
                engine.last_trace = None
        portable = [
            (_portable_answer(result.answer), result.score) for result in results
        ]
        outcomes.append((position, "ok", portable, replace(engine.last_stats)))
    if trace_on or metrics_on:
        delta = (
            obs_metrics.diff_snapshots(
                metrics_before, obs_metrics.REGISTRY.snapshot()
            )
            if metrics_on
            else None
        )
        root = None
        if chunk_trace is not None:
            obs_trace.end_trace(chunk_trace)
            root = chunk_trace.root
        outcomes.append((None, "obs", (root, delta), None))
    return outcomes


def _encode_outcomes(outcomes) -> tuple[list[bytes], int]:
    """Length-prefixed records for one chunk's outcomes.

    Returns ``(parts, total_bytes)``; each outcome contributes a 4-byte
    little-endian length followed by its pickle — the same pickle the
    pipe transport would have sent, so both transports carry identical
    bytes per outcome.
    """
    parts: list[bytes] = []
    total = 0
    for outcome in outcomes:
        blob = pickle.dumps(outcome, pickle.HIGHEST_PROTOCOL)
        parts.append(struct.pack("<I", len(blob)))
        parts.append(blob)
        total += 4 + len(blob)
    return parts, total


def _attach_arena(arena_name: Optional[str]):
    """Map the coordinator's answer arena inside a worker, or ``None``.

    The attach re-registers the segment with the resource tracker
    (bpo-38119), but workers inherit the *coordinator's* tracker — the
    registry is one shared set, so the duplicate registration is a
    no-op and the coordinator's ``unlink()`` remains the single cleanup
    point.  (Unregistering here would delete the coordinator's entry.)
    """
    if arena_name is None:
        return None
    try:
        from multiprocessing import shared_memory

        return shared_memory.SharedMemory(name=arena_name)
    except (ImportError, OSError, ValueError):  # pragma: no cover - no shm
        return None


def _worker_loop(
    connection,
    snapshot_path: str,
    core: Optional[str],
    shards: Optional[int],
    result_cache_entries: int,
    arena_name: Optional[str] = None,
    region_start: int = 0,
    region_size: int = 0,
    adaptive: Optional[bool] = None,
) -> None:
    """One dedicated worker: open the snapshot once, serve chunks forever.

    Besides batch chunks the pipe carries one control message:
    ``("__reopen__", path)`` — part of the zero-downtime snapshot swap.
    The worker finishes whatever chunk preceded the message (pipe
    ordering), opens the new snapshot, closes the old engine and acks;
    if the reopen fails it keeps serving its previous (state-identical)
    engine and reports ``reopen-failed`` so the coordinator can respawn
    it instead.
    """
    try:
        _init_worker(snapshot_path, core, shards, result_cache_entries, adaptive)
    except BaseException as error:  # surface startup failures, don't hang
        connection.send(("crashed", repr(error)))
        return
    arena = _attach_arena(arena_name)
    connection.send(("ready", None))
    try:
        while True:
            try:
                chunk = connection.recv()
            except EOFError:
                return
            if chunk is None:
                return
            if (
                isinstance(chunk, tuple)
                and len(chunk) == 2
                and chunk[0] == "__reopen__"
            ):
                global _WORKER_ENGINE
                old_engine = _WORKER_ENGINE
                try:
                    _init_worker(
                        chunk[1], core, shards, result_cache_entries, adaptive
                    )
                except BaseException as error:
                    connection.send(("reopen-failed", repr(error)))
                else:
                    if old_engine is not None:
                        old_engine.close()
                    connection.send(("reopened", None))
                continue
            try:
                outcomes = _run_chunk(chunk)
                if arena is not None:
                    parts, total = _encode_outcomes(outcomes)
                    if total <= region_size:
                        offset = region_start
                        for part in parts:
                            arena.buf[offset : offset + len(part)] = part
                            offset += len(part)
                        connection.send(("shm", (len(outcomes), total)))
                        continue
                connection.send(("ok", outcomes))
            except BaseException as error:  # pragma: no cover - worker bug guard
                connection.send(("crashed", repr(error)))
                return
    finally:
        if arena is not None:
            arena.close()


class ParallelSearcher:
    """A pool of dedicated snapshot workers, one pipe per worker.

    Unlike a task-stealing pool, chunk *i* of every batch goes to worker
    *i*: repeated batches of a serving loop land on the worker whose
    traversal/answer caches already hold their state, so steady-state
    latency is the warm cost.  Workers are daemonic and die with the
    coordinator; :meth:`close` shuts them down explicitly.

    Answers travel through a shared-memory arena (one
    :attr:`region_bytes` region per worker) when the platform provides
    one; the pipe then carries only ``(record_count, total_bytes)``.
    Oversized chunks and arena-less platforms fall back to pipe
    pickling per chunk — :attr:`shm_batches` / :attr:`pipe_batches`
    count which transport served each chunk.
    """

    #: Shared-memory bytes reserved per worker for one chunk's answers.
    region_bytes = 1 << 20

    def __init__(
        self,
        snapshot_path: str,
        jobs: int,
        *,
        core: Optional[str] = None,
        shards: Optional[int] = None,
        result_cache_entries: int = 256,
        adaptive: Optional[bool] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be positive")
        self.snapshot_path = str(snapshot_path)
        self.jobs = jobs
        self.core = core
        self.shards = shards
        self.result_cache_entries = result_cache_entries
        #: Adaptive-planner flag every worker engine opens with, so a
        #: coordinator running static (``REPRO_STATIC_PLAN`` travels via
        #: the environment, ``adaptive=False`` via this field) never
        #: pairs with adaptive workers.
        self.adaptive = adaptive
        self._workers: Optional[list] = None
        self._arena = None
        self.shm_batches = 0
        self.pipe_batches = 0
        #: Self-healing counters: workers respawned after dying
        #: mid-batch, and chunks degraded to in-process execution after
        #: a respawn (or its retry) failed too.
        self.respawns = 0
        self.inline_chunks = 0
        self._inline_engine = None
        #: Per-chunk observability payloads from the most recent
        #: :meth:`run` — ``(worker_index, transport, (trace_root,
        #: metrics_delta))`` tuples, coordinator-ordered.
        self.last_obs: list = []
        #: Per-worker position lists of the most recent :meth:`run` —
        #: how the batch was actually cut (cost-routed or contiguous).
        self.last_assignment: list = []

    def _ensure_arena(self):
        if self._arena is None:
            try:
                from multiprocessing import shared_memory

                self._arena = shared_memory.SharedMemory(
                    create=True, size=self.jobs * self.region_bytes
                )
            except (ImportError, OSError, ValueError):  # pragma: no cover
                return None  # no shm on this platform: pipe transport only
        return self._arena

    def _spawn_worker(self, index: int, arena) -> tuple:
        """Start worker ``index`` against the current snapshot path."""
        context = _pool_context()
        parent_end, worker_end = context.Pipe()
        process = context.Process(
            target=_worker_loop,
            args=(
                worker_end,
                self.snapshot_path,
                self.core,
                self.shards,
                self.result_cache_entries,
                arena.name if arena is not None else None,
                index * self.region_bytes,
                self.region_bytes,
                self.adaptive,
            ),
            daemon=True,
        )
        process.start()
        worker_end.close()
        return (process, parent_end)

    def _ensure_workers(self) -> list:
        if self._workers is None:
            arena = self._ensure_arena()
            workers = [
                self._spawn_worker(index, arena)
                for index in range(self.jobs)
            ]
            for process, connection in workers:
                status, detail = connection.recv()
                if status != "ready":
                    self._shutdown(workers)
                    raise RuntimeError(f"snapshot worker failed to start: {detail}")
            self._workers = workers
        return self._workers

    def _retire_worker(self, index: int) -> None:
        """Reap a dead (or dying) worker's process and pipe end."""
        process, connection = self._workers[index]
        try:
            connection.close()
        except OSError:  # pragma: no cover - already closed
            pass
        process.join(timeout=2)
        if process.is_alive():  # pragma: no cover - stuck worker guard
            process.terminate()
            process.join(timeout=2)

    def _respawn(self, index: int) -> bool:
        """Replace a dead worker with a fresh one on the current snapshot."""
        self.respawns += 1
        if obs_metrics.ENABLED:
            obs_metrics.REGISTRY.inc("pool.respawns")
        self._retire_worker(index)
        try:
            worker = self._spawn_worker(index, self._arena)
            status, detail = worker[1].recv()
        except (OSError, EOFError):  # pragma: no cover - spawn failed
            return False
        if status != "ready":
            try:
                worker[1].close()
            except OSError:  # pragma: no cover
                pass
            worker[0].join(timeout=2)
            return False
        self._workers[index] = worker
        return True

    def run(
        self,
        queries: Sequence[str],
        options: dict,
        costs: Optional[Sequence[float]] = None,
    ) -> dict:
        """Answer distinct queries on the pool; returns per-query outcomes.

        The batch is cut into one chunk per worker — a single IPC round
        trip each.  Without ``costs`` the cut is contiguous round-robin;
        with ``costs`` (one predicted cost per query, see
        ``KeywordSearchEngine.query_cost``) queries are assigned by
        deterministic LPT scheduling so every worker carries a similar
        predicted load (:func:`repro.planner.dispatch.route_by_cost`).
        Either way each chunk's positions stay ascending.  Each outcome
        is ``("ok", portable_results, stats)`` or ``("error", error,
        None)``; a chunk stops at its first error, which is safe because
        the coordinator never consumes outcomes past the batch's first
        failure — every position before the first failing one lives in
        some chunk whose own error cutoff (input order within the chunk)
        cannot precede it.

        The pool self-heals: a worker that died mid-chunk (EOF or broken
        pipe on the coordinator side) is respawned against the current
        snapshot and its lost chunk retried exactly once; if the respawn
        or the retry fails too, the chunk degrades to in-process
        execution on a coordinator-side engine — the batch completes
        either way, with bit-identical results.
        """
        self.last_obs = []
        self.last_assignment = []
        if not queries:
            return {}
        workers = self._ensure_workers()
        if costs is not None and len(costs) == len(queries):
            from repro.planner.dispatch import route_by_cost

            assignment = route_by_cost(costs, self.jobs)
        else:
            chunk_count = min(self.jobs, len(queries))
            size = (len(queries) + chunk_count - 1) // chunk_count
            assignment = [
                list(range(start, min(start + size, len(queries))))
                for start in range(0, len(queries), size)
            ]
        self.last_assignment = assignment
        busy = []
        for index, positions in enumerate(assignment):
            if not positions:  # pragma: no cover - router never emits empties
                continue
            chunk = (positions, [queries[p] for p in positions], options)
            __, connection = workers[index]
            try:
                connection.send(chunk)
            except (BrokenPipeError, OSError):
                pass  # dead already; the receive loop heals it
            busy.append((index, chunk))
        outcomes: dict[str, tuple] = {}
        for index, chunk in busy:
            status, chunk_payload = self._receive(index, chunk)
            if status == "shm":
                # The recv() *is* the barrier: the worker wrote its
                # region before sending, and no other worker shares it.
                count, total = chunk_payload
                chunk_outcomes = self._read_region(index, count, total)
                self.shm_batches += 1
            elif status in ("ok", "inline"):
                chunk_outcomes = chunk_payload
                if status == "ok":
                    self.pipe_batches += 1
            else:
                self.close()
                raise RuntimeError(f"snapshot worker crashed: {chunk_payload}")
            transport = "shm" if status == "shm" else "pipe"
            if status != "inline" and obs_metrics.ENABLED:
                obs_metrics.REGISTRY.inc(f"pool.{transport}_batches")
            for position, result_status, payload, stats in chunk_outcomes:
                if result_status == "obs":
                    # Trailing worker-observability record, not a query.
                    self.last_obs.append((index, transport, payload))
                    continue
                outcomes[queries[position]] = (result_status, payload, stats)
        return outcomes

    def _receive(self, index: int, chunk) -> tuple:
        """One chunk's reply, healing a dead worker along the way."""
        __, connection = self._workers[index]
        try:
            return connection.recv()
        except (EOFError, OSError):
            pass
        # The worker died before replying. Respawn it on the current
        # snapshot and retry the lost chunk exactly once.
        if self._respawn(index):
            __, connection = self._workers[index]
            try:
                connection.send(chunk)
                return connection.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass  # died again: fall through to in-process execution
        self.inline_chunks += 1
        if obs_metrics.ENABLED:
            obs_metrics.REGISTRY.inc("pool.inline_chunks")
        return ("inline", self._run_inline(chunk))

    def _ensure_inline_engine(self):
        if self._inline_engine is None:
            from repro.core.engine import KeywordSearchEngine

            self._inline_engine = KeywordSearchEngine.open(
                self.snapshot_path,
                core=self.core,
                shards=self.shards,
                result_cache_entries=self.result_cache_entries,
                adaptive=self.adaptive,
            )
        return self._inline_engine

    def _run_inline(self, chunk):
        """Degraded mode: answer a chunk in the coordinator process.

        Runs the exact worker code over a lazily opened coordinator-side
        snapshot engine, so results stay bit-identical.  Observability
        is disabled for the chunk — its increments would land directly
        in the coordinator registry and then be double-counted by the
        delta merge — and the process-global flags are restored
        afterwards (``_run_chunk`` flips them to the chunk's setting).
        """
        positions, queries, options = chunk
        quiet = dict(options)
        quiet["observe"] = (False, False)
        saved_trace, saved_metrics = obs_trace.ENABLED, obs_metrics.ENABLED
        try:
            return _run_chunk(
                (positions, queries, quiet),
                engine=self._ensure_inline_engine(),
            )
        finally:
            obs_trace.set_enabled(saved_trace)
            obs_metrics.set_enabled(saved_metrics)

    def reopen(self, snapshot_path) -> int:
        """Hot-swap the pool onto a new snapshot, one worker at a time.

        Sends each worker a ``__reopen__`` control message in turn: the
        message queues behind the worker's in-flight chunk, so nothing
        is drained and the other workers keep serving while each one
        reopens.  A worker whose reopen fails (or that died) is
        respawned against the new snapshot instead.  Returns the number
        of workers now serving the new snapshot.
        """
        self.snapshot_path = str(snapshot_path)
        if self._inline_engine is not None:
            self._inline_engine.close()
            self._inline_engine = None
        if self._workers is None:
            return 0
        swapped = 0
        for index in range(len(self._workers)):
            __, connection = self._workers[index]
            reopened = False
            try:
                connection.send(("__reopen__", self.snapshot_path))
                status, __detail = connection.recv()
                reopened = status == "reopened"
            except (BrokenPipeError, EOFError, OSError):
                reopened = False
            if not reopened:
                reopened = self._respawn(index)
            if reopened:
                swapped += 1
        return swapped

    def _read_region(self, index: int, count: int, total: int) -> list:
        """Decode one worker's length-prefixed records from its region."""
        start = index * self.region_bytes
        view = bytes(self._arena.buf[start : start + total])
        outcomes = []
        offset = 0
        for __ in range(count):
            (length,) = struct.unpack_from("<I", view, offset)
            offset += 4
            outcomes.append(pickle.loads(view[offset : offset + length]))
            offset += length
        return outcomes

    def _shutdown(self, workers) -> None:
        for process, connection in workers:
            try:
                connection.send(None)
            except (BrokenPipeError, OSError):
                pass
            connection.close()
        for process, __ in workers:
            process.join(timeout=2)
            if process.is_alive():  # pragma: no cover - stuck worker guard
                process.terminate()
                process.join(timeout=2)

    def close(self) -> None:
        if self._workers is not None:
            self._shutdown(self._workers)
            self._workers = None
        if self._inline_engine is not None:
            self._inline_engine.close()
            self._inline_engine = None
        if self._arena is not None:
            self._arena.close()
            try:
                self._arena.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._arena = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._workers is not None else "idle"
        return (
            f"ParallelSearcher({self.snapshot_path!r}, jobs={self.jobs}, {state})"
        )


def run_batch(
    engine,
    queries: Sequence[str],
    *,
    jobs: int,
    ranker,
    limits,
    top_k: Optional[int],
    semantics: str,
    pushdown: Optional[bool],
) -> list:
    """Parallel twin of the serial ``search_batch`` body.

    Coordinator-side answer-cache hits never leave the process; the
    remaining distinct queries fan out to the pool.  Successes are
    revived and cached exactly as a serial run would have cached them;
    the first failing query (in input order) re-raises its worker error
    after the queries before it committed.
    """
    tracing = obs_trace.ENABLED
    metered = obs_metrics.ENABLED
    qtrace = None
    if tracing:
        qtrace = obs_trace.begin_trace(
            "query.batch", queries=len(queries), jobs=jobs, parallel=True
        )
        engine.last_trace = qtrace
    try:
        return _run_batch_traced(
            engine,
            queries,
            jobs=jobs,
            ranker=ranker,
            limits=limits,
            top_k=top_k,
            semantics=semantics,
            pushdown=pushdown,
            qtrace=qtrace,
            tracing=tracing,
            metered=metered,
        )
    finally:
        if qtrace is not None:
            obs_trace.end_trace(qtrace)


def _run_batch_traced(
    engine,
    queries: Sequence[str],
    *,
    jobs: int,
    ranker,
    limits,
    top_k: Optional[int],
    semantics: str,
    pushdown: Optional[bool],
    qtrace,
    tracing: bool,
    metered: bool,
) -> list:
    searcher = engine._ensure_searcher(jobs)
    stats = ExecutionStats()
    resolved: dict[str, list] = {}
    keys: dict[str, object] = {}
    pending: list[str] = []
    for query in dict.fromkeys(queries):
        key = engine._cache_key(query, ranker, limits, top_k, semantics, pushdown)
        keys[query] = key
        entry = engine.result_cache.lookup(key) if key is not None else None
        if entry is not None:
            resolved[query] = list(entry.results)
            stats.merge(entry.stats)
        else:
            pending.append(query)

    options = {
        "ranker": ranker,
        "limits": limits,
        "top_k": top_k,
        "semantics": semantics,
        "pushdown": pushdown,
        "observe": (tracing, metered),
    }
    costs = None
    if getattr(engine, "adaptive", False) and len(pending) > 1 and jobs > 1:
        # Cost-routed dispatch: one cheap posting-length estimate per
        # pending query balances the workers' predicted load.  Purely a
        # scheduling hint — outcomes are keyed by query, so results and
        # error order are identical to contiguous chunking.
        costs = [
            engine.query_cost(query, semantics=semantics)
            for query in pending
        ]
    outcomes = searcher.run(pending, options, costs=costs)
    if tracing or metered:
        # Worker-index order, not arrival order, so the merged trace and
        # registry are identical however the OS scheduled the chunks —
        # and the metric merge itself is commutative (sums and maxima).
        for worker, transport, (root, delta) in sorted(
            searcher.last_obs, key=lambda record: record[0]
        ):
            if qtrace is not None and root is not None:
                root.tag(worker=worker, transport=transport)
                qtrace.adopt(root)
            if metered and delta:
                obs_metrics.REGISTRY.merge_snapshot(delta)

    for query in pending:
        status, payload, worker_stats = outcomes[query]
        if status == "error":
            # The serial loop would have raised here, with every earlier
            # query already answered (and cached) — which just happened.
            engine.last_stats = stats
            raise payload
        results = [
            revive_result(engine.data_graph, portable, score, rank + 1)
            for rank, (portable, score) in enumerate(payload)
        ]
        resolved[query] = results
        stats.merge(worker_stats)
        key = keys[query]
        if key is not None:
            __, matches = engine._plan(query, top_k, semantics)
            engine._cache_store(key, ranker, matches, results, worker_stats)

    engine.last_stats = stats
    engine.last_shared = SharedEnumerations()
    return [resolved[query] for query in queries]
