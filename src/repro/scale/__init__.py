"""Horizontal-scale serving layer: shards, snapshots, parallel execution.

Three cooperating pieces turn the single-process engine into something a
serving fleet can run:

* :mod:`repro.scale.shards` — partitions the compiled
  :class:`~repro.graph.csr.FrozenGraph` by connected component into K
  balanced shard graphs with their own dense interning, plus a
  keyword→shard router.  Every answer lives inside one connected
  component, so shard-local execution is lossless by construction.
* :mod:`repro.scale.snapshot` — a versioned binary snapshot of the full
  engine state (CSR buffers, interning, index postings, corpus
  statistics, shard assignment) whose array sections load via ``mmap``;
  opening a snapshot is an order of magnitude cheaper than a cold
  build, and page-cache sharing makes per-process opens nearly free.
* :mod:`repro.scale.parallel` — a process-pool batch executor: each
  worker opens the snapshot once and answers whole queries with the
  sharded engine; the coordinator reassembles results (and the first
  error) in input order, bit-identical to the serial path.
"""

from repro.scale.parallel import ParallelSearcher
from repro.scale.shards import KeywordRouter, ShardPlan
from repro.scale.snapshot import Snapshot, load_engine, write_snapshot

__all__ = [
    "ShardPlan",
    "KeywordRouter",
    "Snapshot",
    "write_snapshot",
    "load_engine",
    "ParallelSearcher",
]
