"""Process-wide metrics registry: counters, gauges, fixed-bucket
histograms.

The same instrumentation sites that emit spans feed this registry; it
aggregates across queries where a :class:`~repro.obs.trace.QueryTrace`
describes exactly one.  Everything is chosen for the repo's two
standing contracts:

* **Deterministic.**  Counter and gauge values on a fixed-seed workload
  are byte-reproducible across runs and ``PYTHONHASHSEED`` values.
  Histograms store *bucket counts only* against fixed power-of-two
  bounds — no floating-point sums whose value depends on observation
  order — so merging worker snapshots is commutative and associative,
  matching ``ExecutionStats.merge``.  Duration-valued metrics are
  reproducible in shape (which buckets exist) but not in count; the
  determinism tests skip names ending in ``_ms``.
* **Pay-for-what-you-use.**  Sites guard on :data:`ENABLED` before
  calling into the registry; a disabled registry costs one attribute
  load and a branch.  ``ops`` counts every mutation so ``bench_obs``
  can convert "guarded sites hit" into an overhead bound.

Snapshots are plain dicts (sorted keys) that travel through the worker
transports; :func:`MetricsRegistry.merge_snapshot` folds a worker's
delta into the coordinator registry.
"""

from __future__ import annotations

__all__ = [
    "ENABLED",
    "set_enabled",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "diff_snapshots",
    "render_report",
]

#: Master switch, mirrored by ``repro.obs.set_enabled``.  Sites check
#: this once before touching :data:`REGISTRY`.
ENABLED = False


def set_enabled(on: bool = True) -> None:
    global ENABLED
    ENABLED = bool(on)


class Histogram:
    """Fixed-bucket histogram holding counts only.

    Bounds are powers of two from 1 up to ``2**max_exp`` plus an
    overflow bucket, fixed at construction — observation order can
    never change the stored state, so merge is plain per-bucket
    addition.  Values are scaled by the caller (durations arrive as
    microseconds, sizes as raw counts).
    """

    __slots__ = ("bounds", "counts", "observations")

    def __init__(self, max_exp: int = 24) -> None:
        self.bounds = tuple(1 << exp for exp in range(max_exp + 1))
        self.counts = [0] * (len(self.bounds) + 1)
        self.observations = 0

    def observe(self, value: float) -> None:
        self.observations += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def merge_counts(self, counts) -> None:
        own = self.counts
        for index, count in enumerate(counts):
            if count:
                own[index] += count
        self.observations += sum(counts)

    def nonzero(self) -> dict:
        """``{"<=bound" | ">max": count}`` for populated buckets only."""
        out = {}
        for index, count in enumerate(self.counts[:-1]):
            if count:
                out[f"<={self.bounds[index]}"] = count
        if self.counts[-1]:
            out[f">{self.bounds[-1]}"] = self.counts[-1]
        return out


class MetricsRegistry:
    """Named counters / gauges / histograms behind one mutation gate.

    ``ops`` counts every mutation that got past the :data:`ENABLED`
    guard; ``bench_obs`` multiplies it by a microbenchmarked per-site
    cost to bound the disabled-mode overhead of the whole workload.
    """

    __slots__ = ("counters", "gauges", "histograms", "ops")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.ops = 0

    # -- recording ------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        self.ops += 1
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.ops += 1
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        self.ops += 1
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # -- export / merge -------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict view with sorted keys (picklable, JSON-safe)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                name: list(self.histograms[name].counts)
                for name in sorted(self.histograms)
            },
            "ops": self.ops,
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a worker-side snapshot (or delta) into this registry.

        Counters and histogram buckets add, gauges take the max —
        all commutative and associative, so the coordinator may fold
        worker deltas in any chunk-completion order and still end at
        the same state (mirrors ``ExecutionStats.merge``).
        """
        for name in sorted(snapshot.get("counters", {})):
            value = snapshot["counters"][name]
            if value:
                self.counters[name] = self.counters.get(name, 0) + value
        for name in sorted(snapshot.get("gauges", {})):
            value = snapshot["gauges"][name]
            if name not in self.gauges or value > self.gauges[name]:
                self.gauges[name] = value
        for name in sorted(snapshot.get("histograms", {})):
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.merge_counts(snapshot["histograms"][name])
        self.ops += snapshot.get("ops", 0)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.ops = 0


#: The process registry every instrumentation site records into.
REGISTRY = MetricsRegistry()


def diff_snapshots(before: dict, after: dict) -> dict:
    """The workload delta between two :meth:`snapshot` calls.

    Counters and histogram buckets subtract, gauges keep their final
    value.  The result is itself a valid snapshot — feeding it to
    :meth:`MetricsRegistry.merge_snapshot` replays exactly the
    workload's contribution, which is how worker deltas travel to the
    coordinator.
    """
    counters = {}
    for name in sorted(after.get("counters", {})):
        delta = after["counters"][name] - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    histograms = {}
    for name in sorted(after.get("histograms", {})):
        after_counts = after["histograms"][name]
        before_counts = before.get("histograms", {}).get(name)
        if before_counts is None:
            deltas = list(after_counts)
        else:
            deltas = [a - b for a, b in zip(after_counts, before_counts)]
        if any(deltas):
            histograms[name] = deltas
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
        "ops": after.get("ops", 0) - before.get("ops", 0),
    }


def render_report(snapshot: dict, title: str = "metrics") -> str:
    """Human-readable workload report for ``repro stats``."""
    lines = [f"== {title} =="]
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]:g}")
    histograms = snapshot.get("histograms", {})
    shown = False
    for name in sorted(histograms):
        histogram = Histogram()
        histogram.merge_counts(histograms[name])
        buckets = histogram.nonzero()
        if not buckets:
            continue
        if not shown:
            lines.append("histograms:")
            shown = True
        rendered = "  ".join(f"{k}:{v}" for k, v in buckets.items())
        lines.append(f"  {name}  n={histogram.observations}  {rendered}")
    if len(lines) == 1:
        lines.append("(empty)")
    return "\n".join(lines)
