"""EXPLAIN ANALYZE: fuse the plan IR with a collected query trace.

:func:`analyze` runs one query with tracing forced on — bypassing the
answer cache so the executor actually executes — and folds the plan's
stages together with the spans the execution emitted into a per-node
table: wall time, candidates enumerated, answers produced, shard skips,
traversal-cache hits, the backend that ran the kernels.  The engine
exposes it as ``engine.explain_analyze(query)`` and the CLI as
``search --analyze``.

The analysed run is a real run: same plan, same executor, same
bit-identical answers (tracing is observe-only, see
:mod:`repro.obs.trace`).  Only the answer-cache *lookup* is skipped;
the run still stores its results, so a subsequent ``search`` hits the
cache as usual.
"""

from __future__ import annotations

from typing import Optional

from repro.core.plan import NetworkGrowth, PairPaths, QueryPlan, SingleScan
from repro.obs import trace as trace_mod

__all__ = ["ExplainRow", "ExplainReport", "analyze"]


class ExplainRow:
    """One rendered line of the per-node table."""

    __slots__ = ("node", "detail", "time_ms", "counters")

    def __init__(
        self,
        node: str,
        detail: str,
        time_ms: Optional[float] = None,
        counters: Optional[dict] = None,
    ) -> None:
        self.node = node
        self.detail = detail
        self.time_ms = time_ms
        self.counters = counters or {}

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "detail": self.detail,
            "time_ms": self.time_ms,
            "counters": dict(self.counters),
        }


class ExplainReport:
    """The analysed query: plan, trace, stats and the fused table."""

    __slots__ = (
        "query",
        "semantics",
        "plan",
        "trace",
        "stats",
        "results",
        "rows",
        "mode",
        "core",
        "backend",
        "pool_trace",
    )

    def __init__(
        self,
        *,
        query: str,
        semantics: str,
        plan: QueryPlan,
        trace: trace_mod.QueryTrace,
        stats,
        results,
        mode: str,
        core: str,
        backend: str,
        pool_trace: Optional[trace_mod.QueryTrace] = None,
    ) -> None:
        self.query = query
        self.semantics = semantics
        self.plan = plan
        self.trace = trace
        self.stats = stats
        self.results = results
        self.mode = mode
        self.core = core
        self.backend = backend
        self.pool_trace = pool_trace
        self.rows = _build_rows(plan, trace, stats)

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "semantics": self.semantics,
            "mode": self.mode,
            "core": self.core,
            "backend": self.backend,
            "stats": self.stats.to_dict(),
            "rows": [row.to_dict() for row in self.rows],
        }

    def estimate_error(self) -> Optional[dict]:
        """Planner estimate vs. observed candidates for the analysed run.

        Returns ``None`` when the plan carries no cost estimates (static
        planning, or a plan with no sources).  Otherwise a dict with the
        summed ``est_candidates``, the observed ``stats.candidates``, the
        absolute error and the signed percentage error (positive means
        the planner over-estimated).
        """
        estimates = getattr(self.plan, "estimates", ())
        if not estimates:
            return None
        estimated = sum(entry.est_candidates for entry in estimates)
        actual = self.stats.candidates
        error = estimated - actual
        baseline = actual if actual > 0 else 1
        return {
            "estimated": round(estimated, 3),
            "actual": actual,
            "error": round(error, 3),
            "error_pct": round(100.0 * error / baseline, 1),
        }

    def render(self) -> str:
        """The per-node table, one row per plan stage."""
        header = (
            f"EXPLAIN ANALYZE  query={self.query!r}  "
            f"semantics={self.semantics}  core={self.core}  "
            f"backend={self.backend}  mode={self.mode}"
        )
        columns = ("node", "detail", "time_ms", "counters")
        table = [columns]
        for row in self.rows:
            time_text = "" if row.time_ms is None else f"{row.time_ms:.3f}"
            counter_text = "  ".join(
                f"{name}={row.counters[name]}" for name in sorted(row.counters)
            )
            table.append((row.node, row.detail, time_text, counter_text))
        widths = [
            max(len(line[column]) for line in table)
            for column in range(len(columns))
        ]
        lines = [header]
        for index, line in enumerate(table):
            lines.append(
                "  ".join(
                    cell.ljust(width) for cell, width in zip(line, widths)
                ).rstrip()
            )
            if index == 0:
                lines.append("-" * len(lines[-1]))
        if self.pool_trace is not None:
            workers = sum(
                1 for node in self.pool_trace.walk() if node.name == "worker.batch"
            )
            lines.append(
                f"pool: {workers} worker batch trace(s) merged "
                f"(engine.last_trace of the pooled pass)"
            )
        return "\n".join(lines)


def _op_name(op) -> str:
    if isinstance(op, SingleScan):
        return "scan"
    if isinstance(op, PairPaths):
        return "paths"
    return "networks"


def _op_detail(op, plan: QueryPlan) -> str:
    if isinstance(op, SingleScan):
        return f"singles over matches {op.indices}"
    if isinstance(op, PairPaths):
        singles = " +singles" if op.include_single_tuples else ""
        return f"matches ({op.first}, {op.second}){singles}"
    return f"networks over matches {op.indices}"


def _span_ms(span: Optional[trace_mod.Span]) -> Optional[float]:
    if span is None:
        return None
    return round(span.duration * 1000.0, 3)


def _build_rows(plan: QueryPlan, trace, stats) -> list[ExplainRow]:
    exec_span = next(trace.find("executor.execute"), None)
    plan_span = next(trace.find("plan.compile"), None)

    rows = [
        ExplainRow(
            "match",
            f"{', '.join(plan.keywords)} [{plan.semantics}] -> "
            + "+".join(str(len(match)) for match in plan.matches)
            + " tuples",
            _span_ms(plan_span),
        )
    ]

    op_spans: dict[int, trace_mod.Span] = {}
    prefetch_span = None
    rank_span = None
    if exec_span is not None:
        for child in exec_span.children:
            if child.name == "prefetch":
                prefetch_span = child
            elif child.name == "rank_cut":
                rank_span = child
            elif "op" in child.tags:
                op_spans[child.tags["op"]] = child
    if prefetch_span is not None:
        counters = dict(prefetch_span.counters)
        rows.append(
            ExplainRow("prefetch", "multi-source distance blocks",
                       _span_ms(prefetch_span), counters)
        )
    estimates = getattr(plan, "estimates", ())
    for position, op in enumerate(plan.sources):
        span = op_spans.get(position)
        counters = dict(span.counters) if span is not None else {}
        if position < len(estimates):
            entry = estimates[position]
            counters["est_candidates"] = round(entry.est_candidates, 1)
            counters["est_cost"] = round(entry.est_cost, 1)
        rows.append(
            ExplainRow(
                _op_name(op), _op_detail(op, plan), _span_ms(span), counters
            )
        )
    if not plan.sources:
        rows.append(ExplainRow("(empty)", "plan has no sources", None))

    merge_mode = "coverage-major" if plan.merge.coverage_major else "score"
    cut_text = f"top-{plan.cut.k}" if plan.cut.k is not None else "no cut"
    rows.append(
        ExplainRow(
            "rank/cut",
            f"merge {merge_mode}, {cut_text}",
            _span_ms(rank_span),
            {"emitted": stats.emitted},
        )
    )

    total_counters = {
        "candidates": stats.candidates,
        "emitted": stats.emitted,
        "shard_skips": stats.shard_skips,
    }
    if estimates:
        total_counters["est_candidates"] = round(
            sum(entry.est_candidates for entry in estimates), 1
        )
    if stats.pruned:
        total_counters["pruned"] = stats.pruned
    if exec_span is not None:
        for name in ("cache_hits", "cache_misses"):
            if name in exec_span.counters:
                total_counters[name] = exec_span.counters[name]
    rows.append(
        ExplainRow("total", "", _span_ms(exec_span), total_counters)
    )
    return rows


def analyze(
    engine,
    query: str,
    *,
    ranker=None,
    limits=None,
    top_k: Optional[int] = None,
    semantics: str = "and",
    pushdown: Optional[bool] = None,
    jobs: Optional[int] = None,
) -> ExplainReport:
    """Run ``query`` with tracing forced on and build the fused report.

    ``jobs > 1`` first runs the query through the worker pool (so the
    report can attach the pooled pass's merged trace — transport used,
    per-worker batches), then performs the serially-traced run the
    per-node table is built from.  Answers of both passes are
    bit-identical to a plain ``engine.search``.
    """
    ranker = ranker or engine.ranker
    limits = limits or engine.limits
    previous = trace_mod.ENABLED
    trace_mod.set_enabled(True)
    try:
        pool_trace = None
        if jobs is not None and jobs > 1:
            engine.search_batch(
                [query],
                ranker=ranker,
                limits=limits,
                top_k=top_k,
                semantics=semantics,
                pushdown=pushdown,
                jobs=jobs,
            )
            pool_trace = engine.last_trace
        qtrace = trace_mod.begin_trace(
            "explain_analyze", query=query, semantics=semantics
        )
        try:
            with trace_mod.span("plan.compile"):
                plan, matches = engine._plan(query, top_k, semantics)
            version = engine.version
            executor = engine._executor()
            results = executor.run(plan, ranker, limits, pushdown=pushdown)
        finally:
            trace_mod.end_trace(qtrace)
        engine.last_stats = executor.stats
        engine.last_trace = qtrace
        if getattr(engine, "adaptive", False):
            engine._observe_run(plan, executor.stats)
        key = engine._cache_key(query, ranker, limits, top_k, semantics, pushdown)
        if key is not None and engine.version == version:
            engine._cache_store(key, ranker, matches, results, executor.stats)
    finally:
        trace_mod.set_enabled(previous)
    exec_span = next(qtrace.find("executor.execute"), None)
    mode = exec_span.tags.get("mode", "?") if exec_span is not None else "?"
    backend = (
        exec_span.tags.get("backend", "-") if exec_span is not None else "-"
    )
    return ExplainReport(
        query=query,
        semantics=semantics,
        plan=plan,
        trace=qtrace,
        stats=executor.stats,
        results=results,
        mode=mode,
        core=engine.core,
        backend=backend,
        pool_trace=pool_trace,
    )
