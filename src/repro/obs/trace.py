"""Hierarchical query spans: zero-dependency, pay-for-what-you-use.

A :class:`Span` records one named region of work — monotonic start and
duration, free-form tags, accumulated integer counters and child spans.
Spans are collected into a :class:`QueryTrace`; the engine starts one
per query (``engine.last_trace``) and every instrumented layer below it
(executor stages, CSR/vector kernels, caches, the scale layer) attaches
children to whichever trace is *active* in the process.

The contract that keeps tracing safe to leave compiled in everywhere:

* **Disabled is free.**  Every instrumentation site guards on the
  module-level :data:`ENABLED` flag (or on a local ``span is None``
  derived from it) before touching anything else; ``bench_obs.py``
  gates the disabled-mode overhead at <= 2% of the standard workload.
* **Tracing never changes answers.**  Spans only *observe*: no
  enumeration order, budget check or score passes through this module,
  and the differential tests run every workload traced and untraced
  expecting bit-identical results, order and budget-error points.
* **Shapes are deterministic, timings are not.**  :meth:`Span.shape`
  strips ``start``/``duration``; a fixed-seed workload produces the
  same shape (names, tags, counters, child order) on every run and
  under every ``PYTHONHASHSEED`` — that is what the determinism tests
  compare.  Durations are measured with :func:`time.perf_counter` and
  are reporting-only.
* **Spans pickle.**  Worker processes ship whole traces back through
  the :mod:`repro.scale.parallel` transports (shm and pipe alike), so
  spans hold only plain picklable values.

Spans recorded while no query trace is active (snapshot opens, live
changesets, pool chunk service inside a worker) attach to a process
*ambient* trace, capped so an unconsumed ambient trace cannot grow
without bound.
"""

from __future__ import annotations

import json
import time
from typing import Iterator, Optional

__all__ = [
    "ENABLED",
    "Span",
    "QueryTrace",
    "set_enabled",
    "span",
    "begin_trace",
    "end_trace",
    "current_trace",
    "ambient_trace",
    "reset",
]

#: Module-level master switch.  Instrumentation sites check this (once
#: per site) before doing any tracing work; the engine snapshots it per
#: query.  Flip through :func:`set_enabled` (or ``repro.obs
#: .set_enabled``, which flips the metrics registry too).
ENABLED = False


def set_enabled(on: bool = True) -> None:
    """Turn span collection on or off process-wide."""
    global ENABLED
    ENABLED = bool(on)


class Span:
    """One named region of work inside a trace.

    ``tags`` describe the region (query text, op index, backend name);
    ``counters`` accumulate integers (candidates produced, shard skips);
    ``duration`` accumulates seconds — interleaved stages (pushdown
    merge pulls) add slices of time to one span instead of opening a
    span per slice, which keeps trace shapes deterministic.
    """

    __slots__ = ("name", "tags", "counters", "start", "duration", "children")

    def __init__(self, name: str, tags: Optional[dict] = None) -> None:
        self.name = name
        self.tags = dict(tags) if tags else {}
        self.counters: dict[str, int] = {}
        self.start = 0.0
        self.duration = 0.0
        self.children: list[Span] = []

    # -- building ------------------------------------------------------
    def child(self, name: str, **tags) -> "Span":
        """Attach and return a new child span (no stack involvement)."""
        child = Span(name, tags)
        self.children.append(child)
        return child

    def tag(self, **tags) -> None:
        self.tags.update(tags)

    def add(self, **counters: int) -> None:
        """Accumulate integer counters onto this span."""
        own = self.counters
        for key, value in counters.items():
            own[key] = own.get(key, 0) + value

    def add_time(self, seconds: float) -> None:
        self.duration += seconds

    # -- reading -------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first in record order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Iterator["Span"]:
        for node in self.walk():
            if node.name == name:
                yield node

    def total(self, counter: str) -> int:
        """One counter summed over this span and every descendant."""
        return sum(node.counters.get(counter, 0) for node in self.walk())

    def shape(self) -> tuple:
        """Deterministic structure: everything except the timings.

        Two runs of the same fixed-seed workload produce equal shapes
        (the determinism tests compare exactly this), while ``start`` /
        ``duration`` are free to differ.
        """
        return (
            self.name,
            tuple(sorted(self.tags.items())),
            tuple(sorted(self.counters.items())),
            tuple(child.shape() for child in self.children),
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tags": dict(self.tags),
            "counters": dict(self.counters),
            "duration_ms": round(self.duration * 1000.0, 3),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1000.0:.2f}ms, "
            f"tags={self.tags}, counters={self.counters}, "
            f"children={len(self.children)})"
        )


class QueryTrace:
    """All spans of one query (or batch, or the process ambient work).

    Owns a root :class:`Span` plus the stack the :func:`span` context
    manager pushes onto; instrumentation that cannot use a ``with``
    block (generators, interleaved pushdown states) attaches
    accumulating children directly via :meth:`Span.child`.
    """

    __slots__ = ("root", "child_cap", "_stack")

    def __init__(self, name: str, child_cap: Optional[int] = None, **tags) -> None:
        self.root = Span(name, tags)
        self.root.start = time.perf_counter()
        #: Most children any one span may accumulate (``None`` = no
        #: cap).  The ambient trace uses this so long-lived processes
        #: that never drain it stay bounded; dropped spans are counted
        #: in the root's ``dropped_spans``.
        self.child_cap = child_cap
        self._stack: list[Span] = [self.root]

    # -- span stack ----------------------------------------------------
    def current(self) -> Span:
        return self._stack[-1]

    def push(self, name: str, tags: Optional[dict] = None) -> Span:
        parent = self._stack[-1]
        if self.child_cap is not None and len(parent.children) >= self.child_cap:
            self.root.add(dropped_spans=1)
            span = Span(name, tags)  # recorded nowhere, but balances pop()
        else:
            span = Span(name, tags)
            parent.children.append(span)
        span.start = time.perf_counter()
        self._stack.append(span)
        return span

    def pop(self, span: Span) -> None:
        span.duration += time.perf_counter() - span.start
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def finish(self) -> None:
        self.root.duration = time.perf_counter() - self.root.start

    def adopt(self, span: Span) -> None:
        """Attach an externally built span tree (a worker's trace root)."""
        self.root.children.append(span)

    # -- reading / export ----------------------------------------------
    def walk(self) -> Iterator[Span]:
        return self.root.walk()

    def find(self, name: str) -> Iterator[Span]:
        return self.root.find(name)

    def span_count(self) -> int:
        return sum(1 for __ in self.walk())

    def shape(self) -> tuple:
        return self.root.shape()

    def to_jsonl(self) -> str:
        """One JSON object per span, depth-first, ``path``-qualified."""
        lines = []

        def emit(span: Span, path: str) -> None:
            record = {
                "path": path,
                "name": span.name,
                "tags": span.tags,
                "counters": span.counters,
                "duration_ms": round(span.duration * 1000.0, 3),
            }
            lines.append(json.dumps(record, sort_keys=True, default=str))
            for child in span.children:
                emit(child, f"{path}/{child.name}")

        emit(self.root, self.root.name)
        return "\n".join(lines) + "\n"

    def save_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryTrace({self.root.name!r}, spans={self.span_count()})"


#: Stack of active traces (innermost last).  Single-threaded per
#: process by design — the engine and its workers each run queries
#: sequentially, so a plain module global is race-free.
_ACTIVE: list[QueryTrace] = []
_AMBIENT: Optional[QueryTrace] = None

#: Child cap of the process ambient trace (see :class:`QueryTrace`).
AMBIENT_CHILD_CAP = 256


def begin_trace(name: str, **tags) -> QueryTrace:
    """Open a trace and make it the span-collection target."""
    trace = QueryTrace(name, **tags)
    _ACTIVE.append(trace)
    return trace


def end_trace(trace: QueryTrace) -> None:
    """Finish a trace and restore the previous collection target."""
    trace.finish()
    if trace in _ACTIVE:
        _ACTIVE.remove(trace)


def current_trace() -> Optional[QueryTrace]:
    """The innermost active trace, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


def ambient_trace() -> QueryTrace:
    """The process trace spans fall back to outside any query.

    Snapshot opens, live changesets and worker-side chunk service all
    happen with no query trace active; their spans land here (capped)
    so ``repro stats`` can still show them.
    """
    global _AMBIENT
    if _AMBIENT is None:
        _AMBIENT = QueryTrace("ambient", child_cap=AMBIENT_CHILD_CAP)
    return _AMBIENT


class _NullSpan:
    """The disabled-path context manager: enters to ``None``, free."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL = _NullSpan()


class _SpanContext:
    __slots__ = ("_trace", "_span")

    def __init__(self, trace: QueryTrace, name: str, tags: dict) -> None:
        self._trace = trace
        self._span = trace.push(name, tags)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info):
        self._trace.pop(self._span)
        return False


def span(name: str, **tags):
    """Context manager recording one span on the active (or ambient)
    trace; a shared no-op when tracing is disabled.

    ``with span("csr.components") as s:`` — ``s`` is the live
    :class:`Span` (tag/count through it) or ``None`` when disabled, so
    span-local bookkeeping guards on ``if s is not None``.
    """
    if not ENABLED:
        return _NULL
    trace = _ACTIVE[-1] if _ACTIVE else ambient_trace()
    return _SpanContext(trace, name, tags)


def reset() -> None:
    """Drop all collection state (tests and the CLI report use this)."""
    global _AMBIENT
    _ACTIVE.clear()
    _AMBIENT = None
