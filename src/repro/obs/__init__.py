"""repro.obs — query-span tracing, metrics, EXPLAIN ANALYZE.

The observability layer over the whole stack (planner → executor →
CSR/vector kernels → shards/snapshot → worker pool):

* :mod:`repro.obs.trace` — hierarchical per-query spans collected into
  a :class:`~repro.obs.trace.QueryTrace` (``engine.last_trace``,
  JSONL-exportable).
* :mod:`repro.obs.metrics` — a process-wide registry of deterministic
  counters/gauges/histograms (``engine.metrics_snapshot()``, the
  ``repro stats`` CLI).
* :mod:`repro.obs.explain` — ``engine.explain_analyze(query)`` /
  ``search --analyze``: the plan IR fused with the trace into a
  per-node table.

Everything is off by default and pay-for-what-you-use: call
:func:`set_enabled` (flips tracing *and* metrics) or the per-module
``set_enabled`` for one of the two; a disabled site costs one module
attribute load and a branch (gated ≤2% on the standard workload by
``benchmarks/bench_obs.py``).  Enabling observability never changes
answers, order or budget-error points — that is a tested contract, not
an aspiration.
"""

from __future__ import annotations

from repro.obs import metrics, trace
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    diff_snapshots,
    render_report,
)
from repro.obs.trace import (
    QueryTrace,
    Span,
    ambient_trace,
    begin_trace,
    current_trace,
    end_trace,
    span,
)

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "QueryTrace",
    "Span",
    "ambient_trace",
    "begin_trace",
    "current_trace",
    "diff_snapshots",
    "enabled",
    "end_trace",
    "metrics",
    "render_report",
    "reset",
    "set_enabled",
    "span",
    "trace",
]


def set_enabled(on: bool = True) -> None:
    """Flip span tracing and the metrics registry together."""
    trace.set_enabled(on)
    metrics.set_enabled(on)


def enabled() -> bool:
    """True when any part of the observability layer is collecting."""
    return trace.ENABLED or metrics.ENABLED


def reset() -> None:
    """Drop all collected state (traces and registry contents)."""
    trace.reset()
    REGISTRY.reset()
