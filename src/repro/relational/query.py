"""Minimal query operators over a :class:`~repro.relational.database.Database`.

Keyword search needs three relational capabilities: selection (filter a
relation by a predicate), foreign-key joins between adjacent relations, and
materialising the join network a set of connected tuples forms.  This module
provides them as plain functions so baselines (DISCOVER's candidate network
evaluation in particular) can be written against a conventional interface.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import QueryError
from repro.relational.database import Database, Tuple
from repro.relational.schema import ForeignKey

__all__ = ["select", "fk_join", "join_pairs", "joinable", "project"]

Predicate = Callable[[Tuple], bool]


def select(
    database: Database,
    relation_name: str,
    predicate: Optional[Predicate] = None,
    **equals: object,
) -> list[Tuple]:
    """Filter a relation by a predicate and/or attribute equalities.

    >>> select(db, "EMPLOYEE", L_NAME="Smith")            # doctest: +SKIP
    """
    relation = database.schema.relation(relation_name)
    for attribute in equals:
        if not relation.has_attribute(attribute):
            raise QueryError(
                "selection on unknown attribute",
                relation=relation_name,
                attribute=attribute,
            )
    results = []
    for record in database.tuples(relation_name):
        if predicate is not None and not predicate(record):
            continue
        if any(record.values.get(k) != v for k, v in equals.items()):
            continue
        results.append(record)
    return results


def joinable(database: Database, left: Tuple, right: Tuple) -> Optional[ForeignKey]:
    """The foreign key joining two tuples, or None.

    Checks both directions: ``left`` referencing ``right`` and vice versa.
    When several foreign keys connect the pair the first declared one wins
    (deterministic because schema FK order is declaration order).
    """
    for fk in database.schema.foreign_keys_from(left.relation):
        if fk.target == right.relation and database.referenced_tuple(left, fk) == right:
            return fk
    for fk in database.schema.foreign_keys_from(right.relation):
        if fk.target == left.relation and database.referenced_tuple(right, fk) == left:
            return fk
    return None


def fk_join(
    database: Database,
    left_tuples: Iterable[Tuple],
    foreign_key: ForeignKey,
) -> Iterator[tuple[Tuple, Tuple]]:
    """Join tuples along one foreign key, yielding ``(source, target)`` pairs.

    ``left_tuples`` must belong to the FK's source relation; tuples with a
    NULL reference produce no pair (inner-join semantics).
    """
    for record in left_tuples:
        if record.relation != foreign_key.source:
            raise QueryError(
                "tuple does not belong to join source",
                relation=record.relation,
                foreign_key=foreign_key.name,
            )
        target = database.referenced_tuple(record, foreign_key)
        if target is not None:
            yield record, target


def join_pairs(
    database: Database,
    left_relation: str,
    right_relation: str,
) -> Iterator[tuple[Tuple, Tuple, ForeignKey]]:
    """All joined tuple pairs between two adjacent relations.

    Yields ``(left, right, fk)`` where ``left`` belongs to ``left_relation``
    regardless of the FK direction.
    """
    emitted = False
    for fk in database.schema.foreign_keys_from(left_relation):
        if fk.target != right_relation:
            continue
        emitted = True
        for source, target in fk_join(database, database.tuples(left_relation), fk):
            yield source, target, fk
    for fk in database.schema.foreign_keys_from(right_relation):
        if fk.target != left_relation:
            continue
        emitted = True
        for source, target in fk_join(database, database.tuples(right_relation), fk):
            yield target, source, fk
    if not emitted and left_relation != right_relation:
        # Not an error per se; adjacent check is the caller's business.  We
        # still validate the relation names for early failure.
        database.schema.relation(left_relation)
        database.schema.relation(right_relation)


def project(
    records: Iterable[Tuple], attributes: Sequence[str]
) -> list[Mapping[str, object]]:
    """Project tuples onto a list of attributes (as plain dicts)."""
    projected = []
    for record in records:
        row = {}
        for attribute in attributes:
            if attribute not in record.values:
                raise QueryError(
                    "projection on unknown attribute",
                    relation=record.relation,
                    attribute=attribute,
                )
            row[attribute] = record.values[attribute]
        projected.append(row)
    return projected
