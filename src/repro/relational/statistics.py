"""Instance statistics: foreign-key fan-outs and relation cardinalities.

The paper's §4 suggests refining looseness "by analyzing the actual number
of participating entities (tuples) in a database instance".  The exact
per-joint analysis lives in :mod:`repro.core.ambiguity`; this module
provides the *aggregate* statistics that make a cheaper, schema-driven
approximation possible (see
:class:`repro.core.ranking_stats.StatisticalAmbiguityRanker`):

* per foreign key: how many source tuples reference an average / maximal
  target tuple (the fan-out a ``1:N`` edge contributes);
* per middle relation: the average fan-outs of its two legs (what an
  ``N:M`` conceptual step contributes on each side);
* relation cardinalities.

Statistics are computed once per database snapshot; recompute after bulk
mutations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.relational.database import Database
from repro.relational.schema import ForeignKey

__all__ = ["FanOut", "DatabaseStatistics"]


@dataclass(frozen=True)
class FanOut:
    """Fan-out distribution summary of one foreign key.

    ``mean`` and ``maximum`` are over *referenced* tuples that have at
    least one referencing tuple; ``coverage`` is the fraction of target
    tuples referenced at all.  An unreferenced foreign key reports zeros.
    """

    foreign_key: str
    mean: float
    maximum: int
    coverage: float

    @property
    def is_effectively_functional(self) -> bool:
        """True when no target tuple has more than one referencing tuple."""
        return self.maximum <= 1


class DatabaseStatistics:
    """Aggregate instance statistics over one database snapshot."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._fanouts: dict[str, FanOut] = {}
        self._cardinalities: dict[str, int] = {}
        #: Planner calibration payload (see ``repro.planner.cost``).
        #: Not computed from the instance — attached by the engine at
        #: snapshot time so learned estimates survive restarts.
        self.calibration: dict = {}
        self._compute()

    def _compute(self) -> None:
        for relation in self.database.schema.relations:
            self._cardinalities[relation.name] = self.database.count(
                relation.name
            )
        for fk in self.database.schema.foreign_keys:
            counts: Counter = Counter()
            for record in self.database.tuples(fk.source):
                key = tuple(record.values[c] for c in fk.source_columns)
                if any(part is None for part in key):
                    continue
                counts[key] += 1
            target_count = self._cardinalities[fk.target]
            if counts:
                mean = sum(counts.values()) / len(counts)
                maximum = max(counts.values())
            else:
                mean = 0.0
                maximum = 0
            coverage = len(counts) / target_count if target_count else 0.0
            self._fanouts[fk.name] = FanOut(
                foreign_key=fk.name,
                mean=mean,
                maximum=maximum,
                coverage=coverage,
            )

    # ------------------------------------------------------------------
    # (de)serialisation — the snapshot's corpus-statistics section
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain JSON-compatible form of the computed statistics."""
        data = {
            "cardinalities": dict(self._cardinalities),
            "fanouts": {
                name: {
                    "mean": fanout.mean,
                    "maximum": fanout.maximum,
                    "coverage": fanout.coverage,
                }
                for name, fanout in self._fanouts.items()
            },
        }
        if self.calibration:
            data["calibration"] = dict(self.calibration)
        return data

    @classmethod
    def from_dict(cls, database: Database, data: dict) -> "DatabaseStatistics":
        """Rebuild statistics without re-scanning the instance."""
        statistics = cls.__new__(cls)
        statistics.database = database
        statistics._cardinalities = dict(data["cardinalities"])
        statistics._fanouts = {
            name: FanOut(
                foreign_key=name,
                mean=entry["mean"],
                maximum=entry["maximum"],
                coverage=entry["coverage"],
            )
            for name, entry in data["fanouts"].items()
        }
        statistics.calibration = dict(data.get("calibration", {}))
        return statistics

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def cardinality(self, relation_name: str) -> int:
        """Tuple count of one relation (0 for unknown names is an error)."""
        return self._cardinalities[relation_name]

    def fanout(self, foreign_key: ForeignKey | str) -> FanOut:
        """Fan-out summary of one foreign key."""
        name = foreign_key if isinstance(foreign_key, str) else foreign_key.name
        return self._fanouts[name]

    def fanouts(self) -> dict[str, FanOut]:
        """All fan-out summaries keyed by foreign-key name (a copy)."""
        return dict(self._fanouts)

    def expected_joint_ambiguity(
        self, fk_in: ForeignKey | str, fk_out: ForeignKey | str
    ) -> float:
        """Expected ``fan_in * fan_out`` of a joint between two FK edges.

        This is the statistical stand-in for
        :func:`repro.core.ambiguity.joint_fan_counts`: instead of counting
        the actual tuples around one specific joint entity, multiply the
        average fan-outs of the two edges meeting there.
        """
        fan_in = max(1.0, self.fanout(fk_in).mean)
        fan_out = max(1.0, self.fanout(fk_out).mean)
        return fan_in * fan_out

    def describe(self) -> str:
        """Printable statistics report."""
        lines = [f"statistics for {self.database.schema.name}"]
        for name, count in sorted(self._cardinalities.items()):
            lines.append(f"  |{name}| = {count}")
        for name, fanout in sorted(self._fanouts.items()):
            lines.append(
                f"  {name}: mean fan-out {fanout.mean:.2f}, "
                f"max {fanout.maximum}, coverage {fanout.coverage:.0%}"
            )
        return "\n".join(lines)
