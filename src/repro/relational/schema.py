"""Relational schemas: relations, keys and foreign keys.

Foreign keys carry two pieces of metadata beyond the referencing/referenced
columns that the paper's analysis depends on:

* ``cardinality_hint`` — whether the reference implements a ``1:N``
  relationship (plain FK) or one leg of an ``N:M`` middle relation; the
  reverse-engineering code fills this in automatically;
* each relation records whether it is a **middle relation** (the relational
  implementation of an ``N:M`` relationship), because middle relations do
  not count toward the conceptual length of a connection (paper section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import (
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.relational.types import SUPPORTED_TYPES, is_text_type

__all__ = ["AttributeDef", "ForeignKey", "Relation", "DatabaseSchema"]


@dataclass(frozen=True)
class AttributeDef:
    """A column definition.

    ``data_type`` must be one of :data:`repro.relational.types.SUPPORTED_TYPES`.
    ``nullable`` defaults to True except for key columns (enforced by
    :class:`Relation`).
    """

    name: str
    data_type: str = "str"
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.data_type not in SUPPORTED_TYPES:
            raise SchemaError(
                "unsupported attribute type",
                attribute=self.name,
                data_type=self.data_type,
            )

    @property
    def is_text(self) -> bool:
        """True when values of this column join word-level matching."""
        return is_text_type(self.data_type)


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key from ``source`` columns to ``target`` key columns.

    The constraint means: every non-NULL combination of ``source_columns``
    in relation ``source`` must equal the primary key of some tuple of
    ``target``.  A plain foreign key implements a conceptual ``N:1``
    reference from the source relation to the target relation; a *unique*
    foreign key (``unique=True``) implements ``1:1``.
    """

    name: str
    source: str
    source_columns: tuple[str, ...]
    target: str
    target_columns: tuple[str, ...]
    unique: bool = False

    def __post_init__(self) -> None:
        if not self.source_columns or len(self.source_columns) != len(
            self.target_columns
        ):
            raise SchemaError(
                "foreign key column lists must be non-empty and aligned",
                foreign_key=self.name,
            )

    def __str__(self) -> str:
        src = ", ".join(self.source_columns)
        dst = ", ".join(self.target_columns)
        return f"{self.source}({src}) -> {self.target}({dst})"


class Relation:
    """A relation definition: name, columns, primary key, middle-ness."""

    def __init__(
        self,
        name: str,
        attributes: Sequence[AttributeDef],
        primary_key: Sequence[str],
        is_middle: bool = False,
        implements_relationship: Optional[str] = None,
    ) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        if not attributes:
            raise SchemaError("relation needs at least one attribute", relation=name)
        self.name = name
        self._attributes: dict[str, AttributeDef] = {}
        for attribute in attributes:
            if attribute.name in self._attributes:
                raise SchemaError(
                    "duplicate attribute", relation=name, attribute=attribute.name
                )
            self._attributes[attribute.name] = attribute
        if not primary_key:
            raise SchemaError("relation needs a primary key", relation=name)
        for column in primary_key:
            if column not in self._attributes:
                raise UnknownAttributeError(
                    "primary key column is not an attribute",
                    relation=name,
                    column=column,
                )
        self.primary_key = tuple(primary_key)
        #: True when this relation implements an ``N:M`` relationship and
        #: should be skipped when measuring conceptual connection length.
        self.is_middle = is_middle
        #: Name of the ER relationship this relation implements (middle
        #: relations) or ``None`` for entity relations.
        self.implements_relationship = implements_relationship

    @property
    def attributes(self) -> tuple[AttributeDef, ...]:
        return tuple(self._attributes.values())

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self._attributes)

    @property
    def text_attributes(self) -> tuple[AttributeDef, ...]:
        """Columns participating in word-level keyword matching."""
        return tuple(a for a in self._attributes.values() if a.is_text)

    def attribute(self, name: str) -> AttributeDef:
        try:
            return self._attributes[name]
        except KeyError:
            raise UnknownAttributeError(
                "no such attribute", relation=self.name, attribute=name
            ) from None

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "middle relation" if self.is_middle else "relation"
        return f"Relation({self.name!r}, {kind})"


class DatabaseSchema:
    """A relational schema: relations plus foreign keys.

    The schema exposes the adjacency needed to build schema and data graphs:
    :meth:`foreign_keys_from`, :meth:`foreign_keys_to` and
    :meth:`adjacent_relations`.
    """

    def __init__(
        self,
        name: str = "db",
        relations: Iterable[Relation] = (),
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        self.name = name
        self._relations: dict[str, Relation] = {}
        self._foreign_keys: dict[str, ForeignKey] = {}
        for relation in relations:
            self.add_relation(relation)
        for foreign_key in foreign_keys:
            self.add_foreign_key(foreign_key)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation) -> Relation:
        if relation.name in self._relations:
            raise SchemaError("duplicate relation", relation=relation.name)
        self._relations[relation.name] = relation
        return relation

    def replace_relation(self, relation: Relation) -> Relation:
        """Replace an existing relation definition (same name) in place.

        Foreign keys pointing at the relation are re-validated.  This exists
        for schema builders (the ER mapper extends relations with generated
        FK columns); instance data is not migrated — replace before loading.
        """
        if relation.name not in self._relations:
            raise UnknownRelationError("no such relation", relation=relation.name)
        previous = self._relations[relation.name]
        self._relations[relation.name] = relation
        try:
            for fk in list(self._foreign_keys.values()):
                if fk.target == relation.name and tuple(fk.target_columns) != relation.primary_key:
                    raise SchemaError(
                        "replacement breaks referencing foreign key",
                        relation=relation.name,
                        foreign_key=fk.name,
                    )
                if fk.source == relation.name:
                    for column in fk.source_columns:
                        if not relation.has_attribute(column):
                            raise SchemaError(
                                "replacement drops a foreign key column",
                                relation=relation.name,
                                foreign_key=fk.name,
                                column=column,
                            )
        except SchemaError:
            self._relations[relation.name] = previous
            raise
        return relation

    def add_foreign_key(self, foreign_key: ForeignKey) -> ForeignKey:
        if foreign_key.name in self._foreign_keys:
            raise SchemaError("duplicate foreign key", foreign_key=foreign_key.name)
        source = self.relation(foreign_key.source)
        target = self.relation(foreign_key.target)
        for column in foreign_key.source_columns:
            if not source.has_attribute(column):
                raise UnknownAttributeError(
                    "foreign key source column missing",
                    foreign_key=foreign_key.name,
                    column=column,
                )
        if tuple(foreign_key.target_columns) != target.primary_key:
            raise SchemaError(
                "foreign key must reference the full primary key",
                foreign_key=foreign_key.name,
                expected=target.primary_key,
                got=foreign_key.target_columns,
            )
        self._foreign_keys[foreign_key.name] = foreign_key
        return foreign_key

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def relations(self) -> tuple[Relation, ...]:
        return tuple(self._relations.values())

    @property
    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        return tuple(self._foreign_keys.values())

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError("no such relation", relation=name) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def foreign_key(self, name: str) -> ForeignKey:
        try:
            return self._foreign_keys[name]
        except KeyError:
            raise SchemaError("no such foreign key", foreign_key=name) from None

    def foreign_keys_from(self, relation_name: str) -> tuple[ForeignKey, ...]:
        """Foreign keys whose *source* is ``relation_name``."""
        self.relation(relation_name)
        return tuple(
            fk for fk in self._foreign_keys.values() if fk.source == relation_name
        )

    def foreign_keys_to(self, relation_name: str) -> tuple[ForeignKey, ...]:
        """Foreign keys whose *target* is ``relation_name``."""
        self.relation(relation_name)
        return tuple(
            fk for fk in self._foreign_keys.values() if fk.target == relation_name
        )

    def adjacent_relations(self, relation_name: str) -> tuple[str, ...]:
        """Relations connected to ``relation_name`` by any FK, either way."""
        names = {
            fk.target for fk in self.foreign_keys_from(relation_name)
        } | {fk.source for fk in self.foreign_keys_to(relation_name)}
        return tuple(sorted(names))

    def middle_relations(self) -> tuple[Relation, ...]:
        return tuple(r for r in self._relations.values() if r.is_middle)

    # ------------------------------------------------------------------
    # validation / description
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check middle relations really look like middle relations.

        A middle relation must carry at least two outgoing foreign keys —
        one per leg of the ``N:M`` relationship it implements.
        """
        for relation in self._relations.values():
            if relation.is_middle and len(self.foreign_keys_from(relation.name)) < 2:
                raise SchemaError(
                    "middle relation needs two outgoing foreign keys",
                    relation=relation.name,
                )

    def describe(self) -> str:
        """Printable, deterministic description."""
        lines = [f"database schema {self.name}"]
        for relation in self._relations.values():
            cols = ", ".join(
                f"{a.name}:{a.data_type}" for a in relation.attributes
            )
            middle = " [middle]" if relation.is_middle else ""
            key = ", ".join(relation.primary_key)
            lines.append(f"  {relation.name}({cols}) key({key}){middle}")
        for foreign_key in self._foreign_keys.values():
            lines.append(f"  fk {foreign_key.name}: {foreign_key}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DatabaseSchema({self.name!r}, relations={len(self._relations)}, "
            f"foreign_keys={len(self._foreign_keys)})"
        )
