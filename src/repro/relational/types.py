"""Attribute domains and value coercion for the relational layer.

The engine supports a deliberately small set of domains — enough to model
the paper's schemas and the synthetic workloads:

``str``
    arbitrary short strings (names, identifiers);
``text``
    long strings that participate in word-level keyword matching;
``int`` / ``float``
    numbers;
``bool``
    booleans.

Values are coerced on insert so that instances loaded from CSV (all strings)
behave identically to programmatically constructed ones.  ``None`` is always
accepted and denotes SQL ``NULL``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import TypeCoercionError

__all__ = ["SUPPORTED_TYPES", "coerce_value", "is_text_type"]

_TRUE_TOKENS = frozenset(("true", "t", "yes", "y", "1"))
_FALSE_TOKENS = frozenset(("false", "f", "no", "n", "0"))


def _coerce_bool(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        token = value.strip().lower()
        if token in _TRUE_TOKENS:
            return True
        if token in _FALSE_TOKENS:
            return False
    raise TypeCoercionError("cannot coerce to bool", value=value)


def _coerce_int(value: object) -> int:
    if isinstance(value, bool):
        raise TypeCoercionError("bool is not an int", value=value)
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, str):
        try:
            return int(value.strip())
        except ValueError:
            pass
    raise TypeCoercionError("cannot coerce to int", value=value)


def _coerce_float(value: object) -> float:
    if isinstance(value, bool):
        raise TypeCoercionError("bool is not a float", value=value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            pass
    raise TypeCoercionError("cannot coerce to float", value=value)


def _coerce_str(value: object) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float, bool)):
        return str(value)
    raise TypeCoercionError("cannot coerce to str", value=value)


_COERCERS: dict[str, Callable[[object], object]] = {
    "str": _coerce_str,
    "text": _coerce_str,
    "int": _coerce_int,
    "float": _coerce_float,
    "bool": _coerce_bool,
}

SUPPORTED_TYPES = frozenset(_COERCERS)


def coerce_value(value: object, data_type: str) -> Optional[object]:
    """Coerce ``value`` to ``data_type``; ``None`` passes through as NULL.

    Raises :class:`~repro.errors.TypeCoercionError` for unsupported types or
    unconvertible values.
    """
    if value is None:
        return None
    try:
        coercer = _COERCERS[data_type]
    except KeyError:
        raise TypeCoercionError("unsupported data type", data_type=data_type) from None
    return coercer(value)


def is_text_type(data_type: str) -> bool:
    """True for domains whose values join word-level keyword matching."""
    return data_type == "text"
