"""In-memory relational database substrate.

This package implements just enough of a relational engine for keyword
search over structural data: typed relations with primary and foreign keys
(:mod:`repro.relational.schema`), an instance store with integrity
enforcement (:mod:`repro.relational.database`), an inverted index over text
attributes (:mod:`repro.relational.index`), simple query operators
(:mod:`repro.relational.query`) and CSV/JSON persistence
(:mod:`repro.relational.io`).
"""

from repro.relational.schema import AttributeDef, DatabaseSchema, ForeignKey, Relation
from repro.relational.database import Database, Tuple
from repro.relational.index import InvertedIndex, tokenize
from repro.relational.types import coerce_value

__all__ = [
    "AttributeDef",
    "Database",
    "DatabaseSchema",
    "ForeignKey",
    "InvertedIndex",
    "Relation",
    "Tuple",
    "coerce_value",
    "tokenize",
]
