"""Loading and dumping database instances (JSON and CSV directories).

The JSON format captures schema and instance in one document and is the
round-trip format used in tests:

.. code-block:: json

    {
      "schema": {
        "name": "company",
        "relations": [
          {"name": "DEPARTMENT",
           "attributes": [{"name": "ID", "type": "str"}, ...],
           "primary_key": ["ID"],
           "is_middle": false}
        ],
        "foreign_keys": [
          {"name": "fk", "source": "PROJECT", "source_columns": ["D_ID"],
           "target": "DEPARTMENT", "target_columns": ["ID"]}
        ]
      },
      "tuples": {"DEPARTMENT": [{"ID": "d1", ...}, ...]}
    }

The CSV form writes one ``<relation>.csv`` per relation into a directory and
requires the schema to be supplied separately when loading.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Union

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.schema import (
    AttributeDef,
    DatabaseSchema,
    ForeignKey,
    Relation,
)

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "database_to_dict",
    "database_from_dict",
    "dump_json",
    "load_json",
    "dump_csv_dir",
    "load_csv_dir",
]


def schema_to_dict(schema: DatabaseSchema) -> dict:
    """Serialise a schema into plain JSON-compatible data."""
    return {
        "name": schema.name,
        "relations": [
            {
                "name": relation.name,
                "attributes": [
                    {
                        "name": attribute.name,
                        "type": attribute.data_type,
                        "nullable": attribute.nullable,
                    }
                    for attribute in relation.attributes
                ],
                "primary_key": list(relation.primary_key),
                "is_middle": relation.is_middle,
                "implements_relationship": relation.implements_relationship,
            }
            for relation in schema.relations
        ],
        "foreign_keys": [
            {
                "name": fk.name,
                "source": fk.source,
                "source_columns": list(fk.source_columns),
                "target": fk.target,
                "target_columns": list(fk.target_columns),
                "unique": fk.unique,
            }
            for fk in schema.foreign_keys
        ],
    }


def schema_from_dict(data: Mapping) -> DatabaseSchema:
    """Inverse of :func:`schema_to_dict`."""
    try:
        relations = [
            Relation(
                name=entry["name"],
                attributes=[
                    AttributeDef(
                        name=attribute["name"],
                        data_type=attribute.get("type", "str"),
                        nullable=attribute.get("nullable", True),
                    )
                    for attribute in entry["attributes"]
                ],
                primary_key=entry["primary_key"],
                is_middle=entry.get("is_middle", False),
                implements_relationship=entry.get("implements_relationship"),
            )
            for entry in data["relations"]
        ]
        foreign_keys = [
            ForeignKey(
                name=entry["name"],
                source=entry["source"],
                source_columns=tuple(entry["source_columns"]),
                target=entry["target"],
                target_columns=tuple(entry["target_columns"]),
                unique=entry.get("unique", False),
            )
            for entry in data.get("foreign_keys", ())
        ]
    except KeyError as missing:
        raise SchemaError("malformed schema document", missing=str(missing)) from None
    return DatabaseSchema(
        name=data.get("name", "db"), relations=relations, foreign_keys=foreign_keys
    )


def database_to_dict(database: Database) -> dict:
    """Serialise schema plus instance."""
    return {
        "schema": schema_to_dict(database.schema),
        "tuples": {
            relation.name: [dict(record.values) for record in database.tuples(relation.name)]
            for relation in database.schema.relations
        },
        "labels": {
            relation.name: [record.label for record in database.tuples(relation.name)]
            for relation in database.schema.relations
        },
    }


def database_from_dict(data: Mapping) -> Database:
    """Inverse of :func:`database_to_dict`.

    Loads with deferred integrity checking (instances may list relations in
    any order), then verifies every foreign key.
    """
    schema = schema_from_dict(data["schema"])
    database = Database(schema, enforce_foreign_keys=False)
    labels = data.get("labels", {})
    for relation_name, rows in data.get("tuples", {}).items():
        relation_labels = labels.get(relation_name, [None] * len(rows))
        for row, label in zip(rows, relation_labels):
            database.insert(relation_name, row, label=label)
    database.check_integrity()
    database.enforce_foreign_keys = True
    return database


def dump_json(database: Database, path: Union[str, Path]) -> None:
    """Write schema and instance to one JSON file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(database_to_dict(database), handle, indent=2, default=str)


def load_json(path: Union[str, Path]) -> Database:
    """Load a database written by :func:`dump_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return database_from_dict(json.load(handle))


def dump_csv_dir(database: Database, directory: Union[str, Path]) -> None:
    """Write one ``<relation>.csv`` per relation into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for relation in database.schema.relations:
        with (directory / f"{relation.name}.csv").open(
            "w", encoding="utf-8", newline=""
        ) as handle:
            writer = csv.DictWriter(handle, fieldnames=relation.attribute_names)
            writer.writeheader()
            for record in database.tuples(relation.name):
                writer.writerow(
                    {k: "" if v is None else v for k, v in record.values.items()}
                )


def load_csv_dir(schema: DatabaseSchema, directory: Union[str, Path]) -> Database:
    """Load a directory written by :func:`dump_csv_dir` against a schema.

    Empty CSV cells load as NULL.  Integrity is checked after the full load
    so relation file order does not matter.
    """
    directory = Path(directory)
    database = Database(schema, enforce_foreign_keys=False)
    for relation in schema.relations:
        csv_path = directory / f"{relation.name}.csv"
        if not csv_path.exists():
            continue
        with csv_path.open("r", encoding="utf-8", newline="") as handle:
            for row in csv.DictReader(handle):
                cleaned = {k: (None if v == "" else v) for k, v in row.items()}
                database.insert(relation.name, cleaned)
    database.check_integrity()
    database.enforce_foreign_keys = True
    return database
