"""Inverted index over attribute values for keyword matching.

Keyword search over structural data matches a keyword either against a
whole attribute value (``Smith`` matching ``L_NAME = 'Smith'``) or against a
word inside a text attribute (``XML`` matching a department description).
The paper relies on both modes; :class:`InvertedIndex` supports them through
a single posting structure that records, per keyword, the matching tuples
and the attributes they matched in.

The index is maintained incrementally: :meth:`InvertedIndex.add_tuple` /
:meth:`InvertedIndex.remove_tuple` keep it consistent with a mutating
database, and :meth:`InvertedIndex.build` performs a full (re)build.
"""

from __future__ import annotations

import re
from bisect import insort
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.relational.database import Database, Tuple, TupleId

__all__ = ["tokenize", "Posting", "InvertedIndex"]

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9]+(?:[-_][A-Za-z0-9]+)*")


def tokenize(text: str) -> list[str]:
    """Split a value into lower-cased word tokens.

    Hyphenated compounds stay together *and* contribute their parts, so the
    paper's ``DB-project`` matches the keywords ``db-project``, ``db`` and
    ``project``.

    >>> tokenize("Different data models, such as XML")
    ['different', 'data', 'models', 'such', 'as', 'xml']
    """
    tokens: list[str] = []
    for match in _TOKEN_PATTERN.finditer(text):
        token = match.group(0).lower()
        tokens.append(token)
        if "-" in token or "_" in token:
            tokens.extend(part for part in re.split(r"[-_]", token) if part)
    return tokens


@dataclass(frozen=True)
class Posting:
    """One keyword occurrence: which tuple, which attribute, how it matched.

    ``whole_value`` is True when the keyword equals the entire attribute
    value (case insensitively), the strongest form of match.
    """

    tid: TupleId
    attribute: str
    whole_value: bool


class _LazyPostings(dict):
    """Posting lists decoded from their snapshot encoding on first touch.

    Behaves like the ``defaultdict(list)`` a built index uses: a missing
    token decodes its pending raw entries (or starts an empty list) and
    stores the result, after which plain dict semantics apply.  Pending
    and materialised keys are disjoint — decoding *moves* a token out of
    the raw table — so iteration, membership and length see each token
    exactly once.  Most queries touch a handful of tokens, so restoring
    an index never pays for the vocabulary it does not use.
    """

    def __init__(self, raw, decode) -> None:
        super().__init__()
        # ``raw`` may be the encoded table itself or a zero-argument
        # loader for it (a snapshot defers even parsing the section
        # until the first keyword lookup needs it).
        if callable(raw):
            self._raw_loader = raw
            self._raw_data = None
        else:
            self._raw_loader = None
            self._raw_data = raw
        self._decode = decode

    @property
    def _raw(self) -> dict:
        if self._raw_data is None:
            self._raw_data = self._raw_loader()
        return self._raw_data

    def __missing__(self, token: str) -> list:
        entries = self._raw.pop(token, None)
        value = self._decode(entries) if entries is not None else []
        self[token] = value
        return value

    def get(self, token, default=None):
        if dict.__contains__(self, token) or token in self._raw:
            return self[token]
        return default

    def __contains__(self, token) -> bool:
        return dict.__contains__(self, token) or token in self._raw

    def __iter__(self):
        yield from dict.__iter__(self)
        yield from self._raw

    def __len__(self) -> int:
        return dict.__len__(self) + len(self._raw)

    def keys(self):
        return list(self)

    def items(self):
        for token in list(self):
            yield token, self[token]

    def values(self):
        for token in list(self):
            yield self[token]

    def clear(self) -> None:
        dict.clear(self)
        self._raw_loader = None
        self._raw_data = {}

    def length_of(self, token: str) -> int:
        """Posting count of a token without decoding it.

        Raw snapshot entries are lists of encoded postings, so their
        length is the posting count — the planner's cost model can size
        a keyword without materialising (and paying to decode) tuples
        the query may never touch.
        """
        if dict.__contains__(self, token):
            return len(dict.__getitem__(self, token))
        entries = self._raw.get(token)
        return len(entries) if entries is not None else 0


class _LazyOrder(dict):
    """Database-order keys that re-derive one relation on first demand.

    A restored index defers its order table entirely: ``insort`` only
    compares postings inside the mutated tokens' lists, so the first
    incremental mutation needs order keys for *those* tuples' relations
    — not a full-database scan.  A missing key triggers one
    ``_refresh_order`` pass over the owning relation; re-anchoring never
    changes the relative order of surviving tuples, so posting lists
    stay sorted no matter when a relation materialises.  A key that is
    still absent after the refresh is a genuine error (a posting for a
    tuple the store does not hold) and raises ``KeyError`` loudly.
    """

    __slots__ = ("_refresh",)

    def __init__(self, refresh) -> None:
        super().__init__()
        self._refresh = refresh

    def __missing__(self, tid):
        self._refresh(tid.relation)
        if tid in self:
            return dict.__getitem__(self, tid)
        raise KeyError(tid)


class InvertedIndex:
    """Word-level inverted index over a database instance."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._postings: dict[str, list[Posting]] = defaultdict(list)
        self._indexed: set[TupleId] = set()
        self._tokens_loader = None
        #: Database order of every indexed tuple: (relation position in the
        #: schema, position in the relation's store).  Posting lists are
        #: kept sorted by this key, which is exactly the order a fresh
        #: ``build()`` appends in — so incremental ``add_tuple`` /
        #: ``remove_tuple`` leave the index bit-identical (posting order
        #: included) to a from-scratch build over the same database.
        self._order: dict[TupleId, tuple[int, int]] = {}
        self._relation_position = {
            relation.name: position
            for position, relation in enumerate(database.schema.relations)
        }
        #: Next order position per relation — lets an appended tuple get
        #: its key in O(1); anything else falls back to a relation scan.
        self._relation_tail: dict[str, int] = {}
        self._tokens_by_tid: dict[TupleId, tuple[str, ...]] = {}
        self.build()

    @classmethod
    def from_state(
        cls,
        database: Database,
        postings: dict,
        tokens_by_tid,
    ) -> "InvertedIndex":
        """Rebuild an index from previously exported posting state.

        ``postings`` is any dict-like mapping token -> posting list that
        yields a fresh list for missing tokens (a plain dict of decoded
        lists, or a :class:`_LazyPostings` deferring decoding); posting
        lists must already be in database order — the order a fresh
        :meth:`build` over the same database produces.
        ``tokens_by_tid`` maps each indexed tuple to its tokens, either
        as a dict or as a zero-argument loader returning one — pure
        lookups never need it, so a snapshot restore defers it together
        with the database-order keys until the first mutation.
        """
        index = cls.__new__(cls)
        index._database = database
        index._postings = postings
        index._order = _LazyOrder(index._refresh_order)
        index._relation_position = {
            relation.name: position
            for position, relation in enumerate(database.schema.relations)
        }
        index._relation_tail = {}
        if callable(tokens_by_tid):
            index._tokens_loader = tokens_by_tid
            index._tokens_by_tid = None
            index._indexed = None
        else:
            index._tokens_loader = None
            index._tokens_by_tid = dict(tokens_by_tid)
            index._indexed = set(tokens_by_tid)
        return index

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _ensure_tokens(self) -> None:
        """Materialise the per-tuple token table on a restored index."""
        if self._tokens_by_tid is None:
            self._tokens_by_tid = dict(self._tokens_loader())
            self._indexed = set(self._tokens_by_tid)
            self._tokens_loader = None

    def build(self) -> None:
        """Discard and rebuild the whole index from the database."""
        self._tokens_loader = None
        self._postings.clear()
        if self._indexed is None:
            self._indexed = set()
            self._tokens_by_tid = {}
        self._indexed.clear()
        self._order.clear()
        self._relation_tail.clear()
        self._tokens_by_tid.clear()
        for relation in self._database.schema.relations:
            self._refresh_order(relation.name)
            for record in self._database.tuples(relation.name):
                self._index_record(record)

    def _refresh_order(self, relation_name: str) -> None:
        """Re-derive database order for one relation's tuples.

        Store positions shift when earlier tuples are deleted, but the
        *relative* order of survivors never changes, so posting lists stay
        sorted; refreshing here re-anchors absolute positions before an
        insertion needs to compare against them.
        """
        position = self._relation_position[relation_name]
        store_position = -1
        for store_position, record in enumerate(
            self._database.tuples(relation_name)
        ):
            self._order[record.tid] = (position, store_position)
        self._relation_tail[relation_name] = store_position + 1

    def _index_record(self, record: Tuple) -> None:
        relation = self._database.schema.relation(record.relation)
        order = self._order.get(record.tid)
        if order is None:
            # Tuple not (yet) in the database store: place it after every
            # stored tuple of its relation.
            position = self._relation_position[record.relation]
            tail = self._relation_tail.get(
                record.relation, self._database.count(record.relation)
            )
            order = (position, tail)
            self._order[record.tid] = order
            self._relation_tail[record.relation] = tail + 1
        tokens: dict[str, None] = {}
        for attribute in relation.attributes:
            value = record.values.get(attribute.name)
            if value is None:
                continue
            text = str(value)
            whole = text.lower()
            seen: set[str] = set()
            for token in tokenize(text):
                if token in seen:
                    continue
                seen.add(token)
                tokens.setdefault(token, None)
                self._insert_posting(
                    token,
                    Posting(record.tid, attribute.name, whole_value=(token == whole)),
                )
            if whole and whole not in seen:
                # Values that tokenise away entirely (e.g. punctuation-only)
                # are still matchable as whole values.
                tokens.setdefault(whole, None)
                self._insert_posting(
                    whole, Posting(record.tid, attribute.name, whole_value=True)
                )
        self._tokens_by_tid[record.tid] = tuple(tokens)
        self._indexed.add(record.tid)

    def _insert_posting(self, token: str, posting: Posting) -> None:
        # insort places equal keys to the right, so the several postings of
        # one tuple keep their attribute order.
        insort(self._postings[token], posting, key=lambda p: self._order[p.tid])

    def add_tuple(self, record: Tuple) -> None:
        """Index one tuple (no-op if already indexed).

        Postings land at the tuple's database-order position, so the index
        stays equal to a fresh :meth:`build` over the current database.
        A tuple sitting at the end of its relation's store — the normal
        insert-then-index flow — gets its position in O(1); re-adding a
        tuple from the middle of the store (the remove/re-add round trip)
        re-derives the relation's order with one scan.
        """
        self._ensure_tokens()
        if record.tid in self._indexed:
            return
        if record.tid not in self._order:
            # A cached order key (from a refresh, or preserved across a
            # value-update reindex) is still relatively correct — only a
            # keyless mid-store tuple needs the relation rescanned.
            last = self._database.last_tuple(record.relation)
            if last is None or last.tid != record.tid:
                self._refresh_order(record.relation)
            # else: _index_record appends at the relation tail in O(1).
        self._index_record(record)

    def reindex_tuple(self, record: Tuple) -> None:
        """Refresh one tuple's postings after a value update.

        The tuple's store position is unchanged by an update, so its
        order key is preserved across the remove/re-add — no relation
        scan, and posting order stays equal to a fresh build.
        """
        order = self._order.get(record.tid)
        self.remove_tuple(record.tid)
        if order is not None:
            self._order[record.tid] = order
        self.add_tuple(record)

    def remove_tuple(self, tid: TupleId) -> None:
        """Drop all postings of one tuple."""
        self._ensure_tokens()
        if tid not in self._indexed:
            return
        for token in self._tokens_by_tid.pop(tid, ()):
            postings = self._postings.get(token)
            if postings is None:
                continue
            postings[:] = [p for p in postings if p.tid != tid]
            if not postings:
                del self._postings[token]
        self._indexed.discard(tid)
        self._order.pop(tid, None)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def postings(self, keyword: str) -> tuple[Posting, ...]:
        """All postings of a keyword (word-level match), lower-cased."""
        return tuple(self._postings.get(keyword.strip().lower(), ()))

    def posting_length(self, keyword: str) -> int:
        """Posting count of a keyword without materialising postings.

        The planner's cost model calls this per batch query, so it must
        stay cheap: on a snapshot-restored index it counts the
        still-encoded raw entries instead of decoding them.  Counts
        *postings* (word occurrences), not distinct tuples — an upper
        bound on :meth:`document_frequency`, which is what an ordering
        or routing weight needs.
        """
        token = keyword.strip().lower()
        postings = self._postings
        length_of = getattr(postings, "length_of", None)
        if length_of is not None:
            return length_of(token)
        entries = postings.get(token)
        return len(entries) if entries else 0

    def matching_tuples(self, keyword: str) -> tuple[TupleId, ...]:
        """Distinct tuples containing the keyword, in first-posting order."""
        seen: dict[TupleId, None] = {}
        for posting in self.postings(keyword):
            seen.setdefault(posting.tid, None)
        return tuple(seen)

    def vocabulary(self) -> tuple[str, ...]:
        """Every indexed token, sorted (mainly for tests and diagnostics)."""
        return tuple(sorted(self._postings))

    def document_frequency(self, keyword: str) -> int:
        """Number of distinct tuples matching the keyword."""
        return len(self.matching_tuples(keyword))

    def indexed_count(self) -> int:
        """Number of tuples currently indexed (the IR collection size)."""
        self._ensure_tokens()
        return len(self._indexed)

    def __contains__(self, keyword: str) -> bool:
        return keyword.strip().lower() in self._postings

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InvertedIndex(tokens={len(self._postings)}, tuples={len(self._indexed)})"
