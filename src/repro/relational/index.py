"""Inverted index over attribute values for keyword matching.

Keyword search over structural data matches a keyword either against a
whole attribute value (``Smith`` matching ``L_NAME = 'Smith'``) or against a
word inside a text attribute (``XML`` matching a department description).
The paper relies on both modes; :class:`InvertedIndex` supports them through
a single posting structure that records, per keyword, the matching tuples
and the attributes they matched in.

The index is maintained incrementally: :meth:`InvertedIndex.add_tuple` /
:meth:`InvertedIndex.remove_tuple` keep it consistent with a mutating
database, and :meth:`InvertedIndex.build` performs a full (re)build.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.relational.database import Database, Tuple, TupleId

__all__ = ["tokenize", "Posting", "InvertedIndex"]

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9]+(?:[-_][A-Za-z0-9]+)*")


def tokenize(text: str) -> list[str]:
    """Split a value into lower-cased word tokens.

    Hyphenated compounds stay together *and* contribute their parts, so the
    paper's ``DB-project`` matches the keywords ``db-project``, ``db`` and
    ``project``.

    >>> tokenize("Different data models, such as XML")
    ['different', 'data', 'models', 'such', 'as', 'xml']
    """
    tokens: list[str] = []
    for match in _TOKEN_PATTERN.finditer(text):
        token = match.group(0).lower()
        tokens.append(token)
        if "-" in token or "_" in token:
            tokens.extend(part for part in re.split(r"[-_]", token) if part)
    return tokens


@dataclass(frozen=True)
class Posting:
    """One keyword occurrence: which tuple, which attribute, how it matched.

    ``whole_value`` is True when the keyword equals the entire attribute
    value (case insensitively), the strongest form of match.
    """

    tid: TupleId
    attribute: str
    whole_value: bool


class InvertedIndex:
    """Word-level inverted index over a database instance."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._postings: dict[str, list[Posting]] = defaultdict(list)
        self._indexed: set[TupleId] = set()
        self.build()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Discard and rebuild the whole index from the database."""
        self._postings.clear()
        self._indexed.clear()
        for record in self._database.all_tuples():
            self.add_tuple(record)

    def add_tuple(self, record: Tuple) -> None:
        """Index one tuple (no-op if already indexed)."""
        if record.tid in self._indexed:
            return
        relation = self._database.schema.relation(record.relation)
        for attribute in relation.attributes:
            value = record.values.get(attribute.name)
            if value is None:
                continue
            text = str(value)
            whole = text.lower()
            seen: set[str] = set()
            for token in tokenize(text):
                if token in seen:
                    continue
                seen.add(token)
                self._postings[token].append(
                    Posting(record.tid, attribute.name, whole_value=(token == whole))
                )
            if whole and whole not in seen:
                # Values that tokenise away entirely (e.g. punctuation-only)
                # are still matchable as whole values.
                self._postings[whole].append(
                    Posting(record.tid, attribute.name, whole_value=True)
                )
        self._indexed.add(record.tid)

    def remove_tuple(self, tid: TupleId) -> None:
        """Drop all postings of one tuple."""
        if tid not in self._indexed:
            return
        empty_keys = []
        for token, postings in self._postings.items():
            postings[:] = [p for p in postings if p.tid != tid]
            if not postings:
                empty_keys.append(token)
        for token in empty_keys:
            del self._postings[token]
        self._indexed.discard(tid)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def postings(self, keyword: str) -> tuple[Posting, ...]:
        """All postings of a keyword (word-level match), lower-cased."""
        return tuple(self._postings.get(keyword.strip().lower(), ()))

    def matching_tuples(self, keyword: str) -> tuple[TupleId, ...]:
        """Distinct tuples containing the keyword, in first-posting order."""
        seen: dict[TupleId, None] = {}
        for posting in self.postings(keyword):
            seen.setdefault(posting.tid, None)
        return tuple(seen)

    def vocabulary(self) -> tuple[str, ...]:
        """Every indexed token, sorted (mainly for tests and diagnostics)."""
        return tuple(sorted(self._postings))

    def document_frequency(self, keyword: str) -> int:
        """Number of distinct tuples matching the keyword."""
        return len(self.matching_tuples(keyword))

    def indexed_count(self) -> int:
        """Number of tuples currently indexed (the IR collection size)."""
        return len(self._indexed)

    def __contains__(self, keyword: str) -> bool:
        return keyword.strip().lower() in self._postings

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InvertedIndex(tokens={len(self._postings)}, tuples={len(self._indexed)})"
