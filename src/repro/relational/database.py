"""Database instances: tuples, integrity enforcement, navigation.

A :class:`Database` stores tuples per relation, keyed by primary key, and
enforces primary-key uniqueness on insert.  Foreign-key integrity can be
checked immediately (default) or deferred to :meth:`Database.check_integrity`
for bulk loads with forward references.

Tuples are identified by :class:`TupleId` — ``(relation, primary key
values)`` — and may additionally carry a human-readable *label* (``d1``,
``w_f1``) so that reproduced tables render exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import (
    ForeignKeyError,
    IntegrityError,
    PrimaryKeyError,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.relational.schema import DatabaseSchema, ForeignKey, Relation
from repro.relational.types import coerce_value

__all__ = ["TupleId", "Tuple", "Database"]


@dataclass(frozen=True)
class TupleId:
    """Stable identity of a tuple: relation name plus primary key values."""

    relation: str
    key: tuple[object, ...]

    def __str__(self) -> str:
        rendered = ",".join(str(part) for part in self.key)
        return f"{self.relation}({rendered})"


class Tuple:
    """One stored tuple.

    ``values`` maps attribute name to (coerced) value.  ``label`` is a short
    display name; it defaults to the primary key rendered as a string, which
    for the paper's data (single ``ID`` columns holding ``d1``, ``e1``, ...)
    already matches the notation used in its tables.
    """

    __slots__ = ("tid", "values", "label")

    def __init__(
        self,
        tid: TupleId,
        values: Mapping[str, object],
        label: Optional[str] = None,
    ) -> None:
        self.tid = tid
        self.values = dict(values)
        if label is None:
            label = ",".join(str(part) for part in tid.key)
        self.label = label

    @property
    def relation(self) -> str:
        return self.tid.relation

    def __getitem__(self, attribute: str) -> object:
        return self.values[attribute]

    def get(self, attribute: str, default: object = None) -> object:
        return self.values.get(attribute, default)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Tuple) and other.tid == self.tid

    def __hash__(self) -> int:
        return hash(self.tid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tuple({self.label!r} in {self.relation})"


class Database:
    """An in-memory relational database instance.

    Parameters
    ----------
    schema:
        The relational schema the instance must conform to.
    enforce_foreign_keys:
        When True (default) every insert validates its outgoing foreign
        keys immediately; deletes reject when referencing tuples remain.
        When False, integrity is only checked by :meth:`check_integrity`.
    """

    def __init__(self, schema: DatabaseSchema, enforce_foreign_keys: bool = True) -> None:
        self.schema = schema
        self.enforce_foreign_keys = enforce_foreign_keys
        self._tuples: dict[str, dict[tuple[object, ...], Tuple]] = {
            relation.name: {} for relation in schema.relations
        }

    @staticmethod
    def build_store(
        schema: DatabaseSchema,
        relation_name: str,
        rows: Iterable[tuple[Mapping[str, object], Optional[str]]],
    ) -> dict:
        """One relation's store dict from validated ``(values, label)`` rows.

        Slot-level construction: this loop dominates snapshot-open time,
        and Tuple.__init__'s defensive values copy is pointless here (the
        parsed row dicts are exclusively the caller's).
        """
        relation = schema.relation(relation_name)
        key_columns = list(relation.primary_key)
        store: dict = {}
        for values, label in rows:
            key = tuple([values[column] for column in key_columns])
            record = Tuple.__new__(Tuple)
            record.tid = TupleId(relation_name, key)
            record.values = values
            record.label = (
                label
                if label is not None
                else ",".join(str(part) for part in key)
            )
            store[key] = record
        return store

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(
        self,
        relation_name: str,
        values: Mapping[str, object],
        label: Optional[str] = None,
    ) -> Tuple:
        """Insert one tuple and return it.

        Values are coerced to their declared types; unknown attributes
        raise; missing attributes become NULL (rejected for key columns).
        """
        relation = self.schema.relation(relation_name)
        store = self._tuples[relation_name]

        coerced: dict[str, object] = {}
        for name in values:
            if not relation.has_attribute(name):
                raise UnknownAttributeError(
                    "insert uses unknown attribute",
                    relation=relation_name,
                    attribute=name,
                )
        for attribute in relation.attributes:
            value = coerce_value(values.get(attribute.name), attribute.data_type)
            coerced[attribute.name] = value

        key = tuple(coerced[column] for column in relation.primary_key)
        if any(part is None for part in key):
            raise PrimaryKeyError(
                "primary key may not be NULL", relation=relation_name, key=key
            )
        if key in store:
            raise PrimaryKeyError(
                "duplicate primary key", relation=relation_name, key=key
            )

        record = Tuple(TupleId(relation_name, key), coerced, label=label)
        if self.enforce_foreign_keys:
            for foreign_key in self.schema.foreign_keys_from(relation_name):
                self._check_reference(record, foreign_key)
        store[key] = record
        return record

    def insert_many(
        self, relation_name: str, rows: Iterable[Mapping[str, object]]
    ) -> list[Tuple]:
        """Insert several tuples; convenience for loaders and generators."""
        return [self.insert(relation_name, row) for row in rows]

    def update(self, tid: TupleId, values: Mapping[str, object]) -> Tuple:
        """Update attribute values of one tuple in place and return it.

        Only the given attributes change; they are coerced to their
        declared types.  Primary-key columns may not change (delete and
        re-insert instead — the tuple's identity is its key).  Changed
        foreign-key columns are validated immediately when the database
        enforces foreign keys.
        """
        record = self.tuple(tid)
        relation = self.schema.relation(tid.relation)
        coerced: dict[str, object] = {}
        for name in values:
            if not relation.has_attribute(name):
                raise UnknownAttributeError(
                    "update uses unknown attribute",
                    relation=tid.relation,
                    attribute=name,
                )
            coerced[name] = coerce_value(
                values[name], relation.attribute(name).data_type
            )
        for column in relation.primary_key:
            if column in coerced and coerced[column] != record.values[column]:
                raise PrimaryKeyError(
                    "primary key columns cannot be updated",
                    relation=tid.relation,
                    attribute=column,
                )
        if self.enforce_foreign_keys:
            candidate = Tuple(tid, {**record.values, **coerced})
            for foreign_key in self.schema.foreign_keys_from(tid.relation):
                if any(c in coerced for c in foreign_key.source_columns):
                    self._check_reference(candidate, foreign_key)
        record.values.update(coerced)
        return record

    def delete(self, tid: TupleId) -> None:
        """Delete a tuple; rejects when other tuples still reference it."""
        record = self.tuple(tid)
        if self.enforce_foreign_keys:
            referencing = list(self.referencing_tuples(record))
            if referencing:
                raise IntegrityError(
                    "tuple is still referenced",
                    tid=str(tid),
                    referencing=[str(t.tid) for t in referencing[:5]],
                )
        del self._tuples[tid.relation][tid.key]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def tuple(self, tid: TupleId) -> Tuple:
        try:
            return self._tuples[tid.relation][tid.key]
        except KeyError:
            if tid.relation not in self._tuples:
                raise UnknownRelationError(
                    "no such relation", relation=tid.relation
                ) from None
            raise IntegrityError("no such tuple", tid=str(tid)) from None

    def get(self, relation_name: str, *key: object) -> Optional[Tuple]:
        """Fetch by primary key values; None when absent."""
        store = self._tuples.get(relation_name)
        if store is None:
            raise UnknownRelationError("no such relation", relation=relation_name)
        return store.get(tuple(key))

    def tuples(self, relation_name: str) -> tuple[Tuple, ...]:
        """All tuples of a relation, in insertion order."""
        store = self._tuples.get(relation_name)
        if store is None:
            raise UnknownRelationError("no such relation", relation=relation_name)
        return tuple(store.values())

    def relation_key_order(self, relation_name: str) -> tuple[tuple, ...]:
        """The relation's primary keys in store order (rollback bookkeeping)."""
        store = self._tuples.get(relation_name)
        if store is None:
            raise UnknownRelationError("no such relation", relation=relation_name)
        return tuple(store)

    def restore_key_order(self, relation_name: str, keys: Sequence[tuple]) -> None:
        """Reorder a relation's store to a recorded key sequence.

        Store order is observable (``tuples``/``all_tuples`` feed index
        posting order and answer enumeration), so a transaction rollback
        must restore it, not just the tuple set.  Keys absent from the
        store are skipped; keys not in the recording keep their relative
        order at the end.
        """
        store = self._tuples.get(relation_name)
        if store is None:
            raise UnknownRelationError("no such relation", relation=relation_name)
        ordered = {key: store[key] for key in keys if key in store}
        for key, record in store.items():
            if key not in ordered:
                ordered[key] = record
        self._tuples[relation_name] = ordered

    def last_tuple(self, relation_name: str) -> Optional[Tuple]:
        """The relation's last tuple in store order (None when empty).

        O(1); incremental index maintenance uses it to recognise
        appended tuples without scanning the relation.
        """
        store = self._tuples.get(relation_name)
        if store is None:
            raise UnknownRelationError("no such relation", relation=relation_name)
        if not store:
            return None
        return store[next(reversed(store))]

    def all_tuples(self) -> Iterator[Tuple]:
        """Every tuple in the database, relation by relation."""
        for store in self._tuples.values():
            yield from store.values()

    def count(self, relation_name: Optional[str] = None) -> int:
        """Number of tuples in one relation, or in the whole database."""
        if relation_name is not None:
            return len(self.tuples(relation_name))
        return sum(len(store) for store in self._tuples.values())

    def by_label(self, label: str) -> Tuple:
        """Find a tuple by its display label (unique labels assumed)."""
        matches = [t for t in self.all_tuples() if t.label == label]
        if len(matches) != 1:
            raise IntegrityError(
                "label does not identify exactly one tuple",
                label=label,
                matches=len(matches),
            )
        return matches[0]

    # ------------------------------------------------------------------
    # navigation along foreign keys
    # ------------------------------------------------------------------
    def referenced_tuple(
        self, record: Tuple, foreign_key: ForeignKey
    ) -> Optional[Tuple]:
        """The tuple ``record`` points at via ``foreign_key`` (None if NULL)."""
        if foreign_key.source != record.relation:
            raise IntegrityError(
                "foreign key does not start at tuple's relation",
                foreign_key=foreign_key.name,
                relation=record.relation,
            )
        key = tuple(record.values[column] for column in foreign_key.source_columns)
        if any(part is None for part in key):
            return None
        return self._tuples[foreign_key.target].get(key)

    def referencing_tuples(
        self, record: Tuple, foreign_key: Optional[ForeignKey] = None
    ) -> Iterator[Tuple]:
        """Tuples pointing at ``record`` (via one FK, or via any FK)."""
        if foreign_key is not None:
            candidates = [foreign_key]
        else:
            candidates = list(self.schema.foreign_keys_to(record.relation))
        for fk in candidates:
            if fk.target != record.relation:
                raise IntegrityError(
                    "foreign key does not point at tuple's relation",
                    foreign_key=fk.name,
                    relation=record.relation,
                )
            for candidate in self._tuples[fk.source].values():
                key = tuple(candidate.values[c] for c in fk.source_columns)
                if key == record.tid.key:
                    yield candidate

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def _check_reference(self, record: Tuple, foreign_key: ForeignKey) -> None:
        key = tuple(record.values[column] for column in foreign_key.source_columns)
        if any(part is None for part in key):
            return
        if key not in self._tuples[foreign_key.target]:
            raise ForeignKeyError(
                "dangling foreign key",
                foreign_key=foreign_key.name,
                source=str(record.tid),
                missing_key=key,
            )

    def check_integrity(self) -> None:
        """Validate every foreign key of every tuple (for deferred mode)."""
        for foreign_key in self.schema.foreign_keys:
            for record in self._tuples[foreign_key.source].values():
                self._check_reference(record, foreign_key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.schema.name!r}, tuples={self.count()})"
