"""Close and Loose Associations in Keyword Search from Structural Data.

A full reproduction of Vainio, Junkkari and Kekäläinen (EDBT/ICDT 2017
workshops): keyword search over relational data with ranking driven by the
*closeness* of the conceptual association between the matched tuples.

Quickstart::

    from repro import KeywordSearchEngine, build_company_database

    engine = KeywordSearchEngine(build_company_database())
    for result in engine.search("Smith XML"):
        print(engine.explain(result))

Package map
-----------
``repro.er``          cardinality algebra, ER model, mapping
``repro.relational``  in-memory relational engine with keyword index
``repro.graph``       schema and data (tuple) graphs
``repro.core``        association classification, search, ranking
``repro.baselines``   DISCOVER (MTJNT), BANKS, bidirectional search
``repro.datasets``    the paper's example plus synthetic generators
``repro.experiments`` regeneration of every table, figure and claim
"""

from repro.core.engine import KeywordSearchEngine, SearchResult
from repro.core.associations import (
    AssociationKind,
    AssociationVerdict,
    classify_cardinalities,
    classify_er_path,
)
from repro.core.connections import Connection
from repro.core.ranking import (
    ClosenessRanker,
    ErLengthRanker,
    InstanceAmbiguityRanker,
    RdbLengthRanker,
    WeightedRanker,
)
from repro.core.presentation import group_results, larger_context
from repro.core.schema_analysis import SchemaAnalyzer, analyze_relational_schema
from repro.core.scoring import CombinedRanker, TfIdfScorer
from repro.core.search import SearchLimits
from repro.core.topk import top_k_connections
from repro.datasets.company import (
    build_company_database,
    build_company_er_schema,
    build_company_schema,
)
from repro.er.cardinality import Cardinality
from repro.graph.fast_traversal import TraversalCache
from repro.live.changes import ChangeSet, Delete, Insert, Update
from repro.live.result_cache import ResultCache
from repro.relational.database import Database
from repro.relational.statistics import DatabaseStatistics
from repro.scale.shards import KeywordRouter, ShardPlan
from repro.scale.snapshot import Snapshot

__version__ = "1.0.0"

__all__ = [
    "AssociationKind",
    "AssociationVerdict",
    "Cardinality",
    "ChangeSet",
    "ClosenessRanker",
    "CombinedRanker",
    "Connection",
    "Database",
    "DatabaseStatistics",
    "Delete",
    "ErLengthRanker",
    "InstanceAmbiguityRanker",
    "Insert",
    "KeywordRouter",
    "KeywordSearchEngine",
    "RdbLengthRanker",
    "ResultCache",
    "SchemaAnalyzer",
    "SearchLimits",
    "SearchResult",
    "ShardPlan",
    "Snapshot",
    "TfIdfScorer",
    "TraversalCache",
    "Update",
    "WeightedRanker",
    "analyze_relational_schema",
    "build_company_database",
    "build_company_er_schema",
    "build_company_schema",
    "classify_cardinalities",
    "classify_er_path",
    "group_results",
    "larger_context",
    "top_k_connections",
    "__version__",
]
