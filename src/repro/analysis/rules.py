"""The invariant rule battery.

Each rule is grounded in a bug this codebase actually shipped (or a
class of bug one layer away from one):

* **DET01** — the PR 4 incident: ``JoiningNetwork._spanning_tree``
  handed a ``frozenset`` straight to networkx, whose MST tie-break
  follows node insertion order, so answers depended on the process
  hash seed.  The rule flags iteration over unordered containers that
  feeds order-sensitive accumulation without ``sorted(...)``.
* **DET02** — ``id()``/seeded ``hash()`` values are process-dependent;
  anything they influence cannot be bit-identical across runs.
* **PKL01** — the PR 5 incident: ``ReproError`` context was lost when
  errors crossed worker pipes, because pickling re-ran ``__init__``
  with the already-rendered message.  The rule flags error subclasses
  that store state in ``__init__`` without a matching ``__reduce__``.
* **FRZ01** — ``FrozenGraph``/``ShardPlan``/lazy snapshot stores are
  patchable only through their own modules' entry points; ad-hoc
  mutation elsewhere silently desynchronises compiled state.
* **RES01** — mmap/file/pipe/shared-memory acquisition must have a
  paired ``close()`` on some path (``with``, ``try/finally``, or an
  owning ``close`` method); a served engine leaks one handle per
  forgotten pair.  ``SharedMemory(create=True, ...)`` additionally
  owns the *segment name*, so the creator must also ``unlink()`` —
  close alone leaves the segment in ``/dev/shm`` forever.
* **API01** — a broad handler that swallows without re-raising or
  recording turns invariant violations into silent wrong answers.
* **SLOT01** — dataclasses on hot paths pay a per-instance ``__dict__``
  unless they declare ``__slots__``.
* **DUR01** — the PR 9 contract: snapshot and WAL files in the durable
  and scale layers are published crash-atomically (same-directory temp
  file, ``fsync``, one ``os.replace``); a direct write-mode ``open``
  outside that protocol leaves a torn artefact a later open trusts.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.framework import FileContext, Finding, Rule, register

__all__ = [
    "Det01UnorderedIteration",
    "Det02ProcessDependentValues",
    "Pkl01StatefulErrorWithoutReduce",
    "Frz01FrozenMutation",
    "Res01UnpairedResource",
    "Api01SwallowedException",
    "Slot01DataclassWithoutSlots",
    "Dur01NonAtomicDurableWrite",
]


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _func_name(node: ast.Call) -> str:
    """Trailing name of a call target (``sorted``, ``append``, ...)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_TYPE_NAMES
    return isinstance(node, ast.Name) and node.id in _SET_TYPE_NAMES


_SET_TYPE_NAMES = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
_SET_BUILTINS = {"set", "frozenset"}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


class _SetTypes:
    """Light syntactic inference of set-valued names for one file.

    Tracks, per function, local names bound to set-producing
    expressions (including set-annotated parameters) and, per class,
    ``self.X`` attributes every assignment binds to a set-producing
    value.  This is deliberately shallow — no dataflow across calls —
    but it covers the shapes the invariant bugs actually had.
    """

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.locals: dict[ast.AST, set[str]] = {}
        self.attrs: dict[ast.ClassDef, set[str]] = {}
        for cls in ctx.classes():
            self.attrs[cls] = set()
        # Two passes: names feed attribute inference and vice versa.
        for __ in range(2):
            for func in ctx.functions():
                self.locals[func] = self._function_locals(func)
            for cls in list(self.attrs):
                self.attrs[cls] = self._class_attrs(cls)

    def _function_locals(self, func) -> set[str]:
        names: set[str] = set()
        args = func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if _annotation_is_set(arg.annotation):
                names.add(arg.arg)
        for __ in range(2):  # let chained assignments converge
            for node in ast.walk(func):
                if isinstance(node, ast.Assign) and self.is_set_expr(
                    node.value, func
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if _annotation_is_set(node.annotation):
                        names.add(node.target.id)
            self.locals[func] = names
        return names

    def _class_attrs(self, cls: ast.ClassDef) -> set[str]:
        attrs: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            func = self.ctx.enclosing_function(node)
            if func is None or self.ctx.enclosing_class(node) is not cls:
                continue
            if self.is_set_expr(node.value, func):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        return attrs

    def is_set_expr(self, node: ast.expr, func=None) -> bool:
        """Best-effort: does this expression produce a set/frozenset?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _func_name(node)
            if isinstance(node.func, ast.Name) and name in _SET_BUILTINS:
                return True
            if isinstance(node.func, ast.Attribute) and name in _SET_METHODS:
                return self.is_set_expr(node.func.value, func)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_set_expr(node.left, func) or self.is_set_expr(
                node.right, func
            )
        if isinstance(node, ast.Name):
            if func is None:
                func = self.ctx.enclosing_function(node)
            return func is not None and node.id in self.locals.get(func, ())
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            cls = self.ctx.enclosing_class(node)
            return cls is not None and node.attr in self.attrs.get(cls, ())
        return False

    def describe(self, node: ast.expr) -> str:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            return f"{_func_name(node)}(...)"
        if isinstance(node, ast.Name):
            return f"set-typed name '{node.id}'"
        if isinstance(node, ast.Attribute):
            return f"set-typed attribute 'self.{node.attr}'"
        return "a set expression"


# ----------------------------------------------------------------------
# DET01
# ----------------------------------------------------------------------
#: Calls that freeze their argument's iteration order into an ordered
#: result (or an ordered side effect).
_ORDER_FREEZING_CALLS = {"list", "tuple", "enumerate", "reversed"}
#: Method sinks whose argument order becomes observable output order.
_ORDER_SENSITIVE_METHODS = {
    "add_nodes_from",
    "add_edges_from",
    "induced_subgraph",
    "subgraph",
    "fromkeys",
    "join",
    "extend",
}
#: Consumers for which unordered input is harmless.
_ORDER_NEUTRAL_CALLS = {
    "sorted",
    "len",
    "sum",
    "any",
    "all",
    "set",
    "frozenset",
    "bool",
    "iter",
}


@register
class Det01UnorderedIteration(Rule):
    id = "DET01"
    title = "unordered iteration feeds order-sensitive accumulation"
    rationale = (
        "PR 4: the spanning-tree tie-break followed frozenset iteration "
        "order, so answers depended on PYTHONHASHSEED"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        types = _SetTypes(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                yield from self._check_for(ctx, types, node)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                yield from self._check_comprehension(ctx, types, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, types, node)

    # -- helpers -------------------------------------------------------
    def _inside_sorted(self, ctx: FileContext, node: ast.AST) -> bool:
        """True when the node sits inside ``sorted(...)`` arguments."""
        current = node
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.stmt):
                return False
            if (
                isinstance(ancestor, ast.Call)
                and _func_name(ancestor) == "sorted"
                and current is not ancestor.func
            ):
                return True
            current = ancestor
        return False

    def _order_escapes(self, ctx: FileContext, call: ast.Call) -> bool:
        """An order-freezing conversion whose result order never shows.

        ``frontier = list(pending)`` is fine when every later read of
        ``frontier`` is order-neutral (``sorted``, ``len``, truth tests,
        membership) — the conversion exists for mutability, not order.
        """
        parent = ctx.parent(call)
        if not (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            return False
        func = ctx.enclosing_function(call)
        if func is None:
            return False
        name = parent.targets[0].id
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Name)
                and node.id == name
                and isinstance(node.ctx, ast.Load)
            ):
                continue
            use = ctx.parent(node)
            if isinstance(use, ast.Call) and _func_name(use) in _ORDER_NEUTRAL_CALLS:
                continue
            if isinstance(use, (ast.While, ast.If, ast.BoolOp, ast.UnaryOp)):
                continue
            if isinstance(use, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in use.ops
            ):
                continue
            return False
        return True

    def _flag(
        self, ctx: FileContext, types: _SetTypes, node: ast.AST, iterable, sink: str
    ):
        return self.finding(
            ctx,
            node,
            f"iteration over unordered {types.describe(iterable)} feeds "
            f"{sink} without sorted(...)",
        )

    # -- sink checks ---------------------------------------------------
    def _check_for(self, ctx, types, node: ast.For) -> Iterator[Finding]:
        if not types.is_set_expr(node.iter):
            return
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in ("append", "extend", "insert")
            ):
                yield self._flag(
                    ctx, types, node, node.iter, f"{inner.func.attr}() accumulation"
                )
                return
            if isinstance(inner, (ast.Yield, ast.YieldFrom)):
                yield self._flag(ctx, types, node, node.iter, "yielded output order")
                return

    def _check_comprehension(self, ctx, types, node) -> Iterator[Finding]:
        if not node.generators:
            return
        iterable = node.generators[0].iter
        if not types.is_set_expr(iterable):
            return
        if self._inside_sorted(ctx, node):
            return
        if isinstance(node, ast.ListComp):
            yield self._flag(ctx, types, node, iterable, "an ordered list")
            return
        # A generator expression leaks order only through an
        # order-sensitive consumer.
        parent = ctx.parent(node)
        if isinstance(parent, ast.Call):
            name = _func_name(parent)
            if name in _ORDER_FREEZING_CALLS or name in _ORDER_SENSITIVE_METHODS:
                yield self._flag(ctx, types, node, iterable, f"{name}(...)")

    def _check_call(self, ctx, types, node: ast.Call) -> Iterator[Finding]:
        name = _func_name(node)
        if (
            isinstance(node.func, ast.Name)
            and name in _ORDER_FREEZING_CALLS
            and node.args
            and types.is_set_expr(node.args[0])
        ):
            if not self._inside_sorted(ctx, node) and not self._order_escapes(
                ctx, node
            ):
                yield self._flag(ctx, types, node, node.args[0], f"{name}(...)")
        elif (
            isinstance(node.func, ast.Name)
            and name in ("min", "max")
            and node.args
            and types.is_set_expr(node.args[0])
            and any(kw.arg == "key" for kw in node.keywords)
        ):
            # min/max *by value* over a set is deterministic; a key
            # function reintroduces iteration order on ties.
            yield self._flag(
                ctx, types, node, node.args[0], f"{name}(..., key=...) tie-breaking"
            )
        elif isinstance(node.func, ast.Attribute) and name in _ORDER_SENSITIVE_METHODS:
            for arg in node.args:
                if types.is_set_expr(arg) and not self._inside_sorted(ctx, node):
                    yield self._flag(ctx, types, node, arg, f".{name}(...)")
                    break


# ----------------------------------------------------------------------
# DET02
# ----------------------------------------------------------------------
@register
class Det02ProcessDependentValues(Rule):
    id = "DET02"
    title = "process-dependent id()/hash() values"
    rationale = (
        "id() and seeded str hashes differ between processes and runs; "
        "anything they influence cannot be bit-identical"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _func_name(node)
            if isinstance(node.func, ast.Name) and name == "id" and node.args:
                yield self.finding(
                    ctx,
                    node,
                    "id() is process-dependent; it must not influence "
                    "answers or snapshot bytes",
                )
            elif isinstance(node.func, ast.Name) and name == "hash" and node.args:
                if self._inside_dunder_hash(ctx, node):
                    continue
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    "hash() of non-int values is seed-dependent outside "
                    "__hash__; it must not influence answers or snapshot bytes",
                )
            elif name in ("sorted", "min", "max"):
                for keyword in node.keywords:
                    if (
                        keyword.arg == "key"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id in ("id", "hash")
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"key={keyword.value.id} orders by a "
                            "process-dependent value",
                        )

    def _inside_dunder_hash(self, ctx: FileContext, node: ast.AST) -> bool:
        func = ctx.enclosing_function(node)
        return func is not None and func.name == "__hash__"


# ----------------------------------------------------------------------
# PKL01
# ----------------------------------------------------------------------
_PICKLE_HOOKS = {"__reduce__", "__reduce_ex__", "__getstate__"}


@register
class Pkl01StatefulErrorWithoutReduce(Rule):
    id = "PKL01"
    title = "stateful ReproError subclass without __reduce__"
    rationale = (
        "PR 5: ReproError context vanished when errors crossed worker "
        "pipes — pickling re-ran __init__ on the rendered message"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        error_names = {"ReproError"}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "repro.errors",
                "errors",
            ):
                for alias in node.names:
                    error_names.add(alias.asname or alias.name)
        classes = {cls.name: cls for cls in ctx.classes()}
        error_classes: set[str] = set()
        changed = True
        while changed:  # transitive bases within the file
            changed = False
            for name, cls in classes.items():
                if name in error_classes:
                    continue
                for base in cls.bases:
                    base_name = (
                        base.id
                        if isinstance(base, ast.Name)
                        else base.attr
                        if isinstance(base, ast.Attribute)
                        else ""
                    )
                    if base_name in error_names or base_name in error_classes:
                        error_classes.add(name)
                        changed = True
                        break

        for name in sorted(error_classes):
            cls = classes[name]
            methods = {
                stmt.name
                for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "__init__" not in methods or methods & _PICKLE_HOOKS:
                continue
            init = next(
                stmt
                for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__init__"
            )
            if self._stores_state(init):
                yield self.finding(
                    ctx,
                    cls,
                    f"error subclass {name} stores state in __init__ without "
                    "__reduce__ — the state is lost when the error crosses "
                    "a worker pipe",
                )

    def _stores_state(self, init: ast.FunctionDef) -> bool:
        for node in ast.walk(init):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return True
        return False


# ----------------------------------------------------------------------
# FRZ01
# ----------------------------------------------------------------------
#: Modules allowed to mutate their own frozen structures.
_FROZEN_HOME_MODULES = (
    "graph/csr.py",
    "scale/shards.py",
    "scale/snapshot.py",
)
#: Patch entry points allowed to mutate frozen structures anywhere.
_SANCTIONED_FUNCTIONS = {
    "apply_changeset",
    "from_parts",
    "from_state",
    "_compact",
    "_compile",
    "_partition",
}
_FROZEN_CONSTRUCTORS = {"FrozenGraph", "ShardPlan", "LazyDataGraph"}
_FROZEN_FACTORY_METHODS = {"frozen", "graph_for"}
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "pop",
    "popitem",
    "update",
    "clear",
    "remove",
    "discard",
    "add",
    "setdefault",
    "sort",
    "reverse",
}


class _FrozenTypes:
    """Names/attributes bound to frozen structures, per function/class."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.locals: dict[ast.AST, set[str]] = {}
        self.attrs: dict[ast.ClassDef, set[str]] = {}
        for func in ctx.functions():
            self.locals[func] = self._function_locals(func)
        for cls in ctx.classes():
            self.attrs[cls] = self._class_attrs(cls)

    def _is_frozen_producer(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in _FROZEN_CONSTRUCTORS or func.id.startswith("_Lazy")
        if isinstance(func, ast.Attribute):
            if func.attr in _FROZEN_FACTORY_METHODS:
                return True
            # FrozenGraph.from_parts(...) / ShardPlan.from_state(...)
            if func.attr in ("from_parts", "from_state") and isinstance(
                func.value, ast.Name
            ):
                return func.value.id in _FROZEN_CONSTRUCTORS
        return False

    def _function_locals(self, func) -> set[str]:
        names: set[str] = set()
        args = func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            annotation = arg.annotation
            if isinstance(annotation, ast.Constant):
                text = str(annotation.value)
                if any(name in text for name in _FROZEN_CONSTRUCTORS):
                    names.add(arg.arg)
            node = annotation
            if isinstance(node, ast.Subscript):
                node = node.value
            if isinstance(node, ast.Name) and node.id in _FROZEN_CONSTRUCTORS:
                names.add(arg.arg)
            elif isinstance(node, ast.Attribute) and node.attr in _FROZEN_CONSTRUCTORS:
                names.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and self._is_frozen_producer(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _class_attrs(self, cls: ast.ClassDef) -> set[str]:
        attrs: set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and self._is_frozen_producer(node.value):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        return attrs

    def is_frozen(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            func = self.ctx.enclosing_function(node)
            return func is not None and node.id in self.locals.get(func, ())
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            cls = self.ctx.enclosing_class(node)
            return cls is not None and node.attr in self.attrs.get(cls, ())
        return self._is_frozen_producer(node)

    def describe(self, node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return f"'{node.id}'"
        if isinstance(node, ast.Attribute):
            return f"'self.{node.attr}'"
        return "a frozen structure"


@register
class Frz01FrozenMutation(Rule):
    id = "FRZ01"
    title = "mutation of a frozen structure outside its module"
    rationale = (
        "FrozenGraph/ShardPlan/lazy stores are patched only through "
        "their modules' sanctioned entry points; ad-hoc mutation "
        "desynchronises compiled state from the data graph"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel_path.endswith(_FROZEN_HOME_MODULES):
            return
        types = _FrozenTypes(ctx)
        for node in ast.walk(ctx.tree):
            if self._sanctioned(ctx, node):
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    owner = self._mutated_owner(types, target)
                    if owner is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"assignment into frozen {types.describe(owner)} "
                            "outside its module's patch entry points",
                        )
                        break
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    owner = self._mutated_owner(types, target)
                    if owner is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"deletion from frozen {types.describe(owner)} "
                            "outside its module's patch entry points",
                        )
                        break
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                owner = self._call_owner(types, node.func.value)
                if owner is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f".{node.func.attr}() mutates frozen "
                        f"{types.describe(owner)} outside its module's "
                        "patch entry points",
                    )

    def _sanctioned(self, ctx: FileContext, node: ast.AST) -> bool:
        func = ctx.enclosing_function(node)
        return func is not None and func.name in _SANCTIONED_FUNCTIONS

    def _mutated_owner(self, types: _FrozenTypes, target: ast.expr):
        """The frozen object a store/delete target mutates, if any."""
        if isinstance(target, ast.Attribute) and types.is_frozen(target.value):
            return target.value
        if isinstance(target, ast.Subscript):
            value = target.value
            if types.is_frozen(value):
                return value
            if isinstance(value, ast.Attribute) and types.is_frozen(value.value):
                return value.value
        return None

    def _call_owner(self, types: _FrozenTypes, value: ast.expr):
        """The frozen object behind ``owner.attr.mutator(...)``, if any."""
        if types.is_frozen(value):
            return value
        if isinstance(value, ast.Attribute) and types.is_frozen(value.value):
            return value.value
        return None


# ----------------------------------------------------------------------
# RES01
# ----------------------------------------------------------------------
_ACQUIRE_ATTRS = {"open", "mmap", "Pipe", "SharedMemory"}
_RELEASE_ATTRS = {"close", "release", "terminate", "shutdown"}
#: ``SharedMemory(create=True)`` owns the segment *name*, not just the
#: local mapping: ``close()`` drops the mapping, only ``unlink()``
#: removes the segment from ``/dev/shm``.  Attachers must not unlink —
#: that is the creator's job (and, with a shared resource tracker,
#: unregistering from an attacher deletes the creator's entry).
_UNLINK_ATTRS = {"unlink"}


@register
class Res01UnpairedResource(Rule):
    id = "RES01"
    title = "resource acquired without a paired close()"
    rationale = (
        "a served engine leaks one handle per forgotten pair; mmap, "
        "pipe, and shared-memory handles especially must have a "
        "deterministic release path (segment creators must unlink too)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            what = self._acquisition(node)
            if what is None:
                continue
            parent = ctx.parent(node)
            if isinstance(parent, ast.withitem):
                continue
            if isinstance(parent, (ast.Return, ast.Yield)):
                # a freshly acquired handle returned verbatim belongs
                # to the caller; its release is the caller's pairing.
                continue
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Attribute)
                and parent.func.attr in _RELEASE_ATTRS
            ):
                # ``os.close(os.open(...))`` — acquired and released in
                # one expression (the create-exclusively sentinel idiom).
                continue
            if isinstance(parent, ast.Assign):
                yield from self._check_assignment(ctx, node, parent, what)
            else:
                # open(...).read(), json.load(open(...)), a bare
                # expression statement: nothing retains the handle.
                yield self.finding(
                    ctx,
                    node,
                    f"{what} handle is consumed inline and can never be "
                    "closed; bind it in a with-statement",
                )

    def _acquisition(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "open()"
        if isinstance(func, ast.Name) and func.id == "SharedMemory":
            return "SharedMemory()"
        if isinstance(func, ast.Attribute) and func.attr in _ACQUIRE_ATTRS:
            if func.attr == "open":
                # ``SomeClass.open(...)`` / ``cls.open(...)`` is the
                # alternate-constructor idiom, not a file handle.
                value = func.value
                if isinstance(value, ast.Name) and (
                    value.id[:1].isupper() or value.id == "cls"
                ):
                    return None
                return ".open()"
            if func.attr == "mmap":
                return "mmap.mmap()"
            if func.attr == "SharedMemory":
                return "SharedMemory()"
            return f".{func.attr}()"
        return None

    def _requirements(self, node: ast.Call, what: str):
        """The release calls this acquisition must pair with."""
        requirements = [(_RELEASE_ATTRS, "close()")]
        if what == "SharedMemory()" and self._creates_segment(node):
            requirements.append((_UNLINK_ATTRS, "unlink()"))
        return requirements

    @staticmethod
    def _creates_segment(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "create":
                return not (
                    isinstance(keyword.value, ast.Constant)
                    and not keyword.value.value
                )
        return False

    def _check_assignment(
        self, ctx: FileContext, node: ast.Call, parent: ast.Assign, what: str
    ) -> Iterator[Finding]:
        requirements = self._requirements(node, what)
        targets = parent.targets
        if len(targets) == 1 and isinstance(targets[0], ast.Tuple):
            names = [
                element.id
                for element in targets[0].elts
                if isinstance(element, ast.Name)
            ]
            for name in names:
                for attrs, verb in requirements:
                    if not self._name_released(ctx, node, name, attrs):
                        yield self.finding(
                            ctx,
                            node,
                            f"{what} handle '{name}' has no {verb} on any "
                            "path in this function",
                        )
            return
        target = targets[0]
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            for attrs, verb in requirements:
                if not self._class_releases(ctx, node, target.attr, attrs):
                    yield self.finding(
                        ctx,
                        node,
                        f"{what} handle stored on self.{target.attr} but no "
                        f"method of the class ever calls self.{target.attr}"
                        f".{verb}",
                    )
            return
        if isinstance(target, ast.Name):
            for attrs, verb in requirements:
                if not self._name_released(ctx, node, target.id, attrs):
                    yield self.finding(
                        ctx,
                        node,
                        f"{what} handle '{target.id}' has no {verb} on any "
                        "path in this function",
                    )

    def _escapes_via(self, expr: ast.expr, name: str) -> bool:
        """Does this expression hand the *handle itself* to someone else?

        The handle escapes as the expression, a tuple/list element, or a
        call **argument** (``Wrapper(handle)`` transfers ownership).  It
        does not escape as a mere method receiver: ``handle.read()``
        returns the data, not the handle.
        """
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Name):
                if node.id == name:
                    return True
            elif isinstance(node, (ast.Tuple, ast.List)):
                stack.extend(node.elts)
            elif isinstance(node, ast.Starred):
                stack.append(node.value)
            elif isinstance(node, ast.Call):
                stack.extend(node.args)
                stack.extend(keyword.value for keyword in node.keywords)
            elif isinstance(node, ast.IfExp):
                stack.extend((node.body, node.orelse))
        return False

    def _name_released(
        self, ctx: FileContext, node: ast.AST, name: str, attrs=None
    ) -> bool:
        attrs = _RELEASE_ATTRS if attrs is None else attrs
        func = ctx.enclosing_function(node)
        if func is None:
            return False
        for inner in ast.walk(func):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in attrs
                and isinstance(inner.func.value, ast.Name)
                and inner.func.value.id == name
            ):
                return True
            # ``os.close(fd)`` releases a raw descriptor by argument,
            # not by method receiver.
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in attrs
                and any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in inner.args
                )
            ):
                return True
            # Escapes transfer ownership: returned/yielded handles belong
            # to the caller, handles stored into containers or attributes
            # to their owner's lifecycle.
            if isinstance(inner, (ast.Return, ast.Yield)) and inner.value is not None:
                if self._escapes_via(inner.value, name):
                    return True
            if isinstance(inner, ast.Assign):
                stores_elsewhere = any(
                    isinstance(target, (ast.Attribute, ast.Subscript))
                    for target in inner.targets
                )
                if stores_elsewhere and self._escapes_via(inner.value, name):
                    return True
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in ("append", "add", "put")
            ):
                if any(self._escapes_via(arg, name) for arg in inner.args):
                    return True
        return False

    def _class_releases(
        self, ctx: FileContext, node: ast.AST, attr: str, attrs=None
    ) -> bool:
        attrs = _RELEASE_ATTRS if attrs is None else attrs
        cls = ctx.enclosing_class(node)
        if cls is None:
            return False
        for inner in ast.walk(cls):
            if (
                isinstance(inner, ast.Attribute)
                and inner.attr in attrs
                and isinstance(inner.value, ast.Attribute)
                and inner.value.attr == attr
                and isinstance(inner.value.value, ast.Name)
                and inner.value.value.id == "self"
            ):
                return True
        return False


# ----------------------------------------------------------------------
# API01
# ----------------------------------------------------------------------
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}
_RECORDING_NAME_PARTS = ("log", "warn", "print", "write", "send", "record", "report")


@register
class Api01SwallowedException(Rule):
    id = "API01"
    title = "broad exception handler swallows errors"
    rationale = (
        "a bare/broad except that neither re-raises nor records turns "
        "invariant violations into silent wrong answers"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._handles(node):
                continue
            caught = "bare except:" if node.type is None else "broad except"
            yield self.finding(
                ctx,
                node,
                f"{caught} swallows the error without re-raising, using "
                "it, or recording it",
            )

    def _is_broad(self, type_node) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Name):
            return type_node.id in _BROAD_EXCEPTIONS
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(element) for element in type_node.elts)
        return False

    def _handles(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                handler.name
                and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
            if isinstance(node, ast.Call):
                name = _func_name(node).lower()
                if any(part in name for part in _RECORDING_NAME_PARTS):
                    return True
        return False


# ----------------------------------------------------------------------
# SLOT01
# ----------------------------------------------------------------------
#: Modules whose object churn sits on the query hot path.
_HOT_MODULE_MARKERS = ("/graph/", "/scale/", "/obs/")
_HOT_MODULE_SUFFIXES = ("core/plan.py", "core/executor.py")


@register
class Slot01DataclassWithoutSlots(Rule):
    id = "SLOT01"
    title = "hot-path dataclass without __slots__"
    rationale = (
        "instances allocated per expansion/answer pay a __dict__ each "
        "unless the dataclass declares slots"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._is_hot(ctx.rel_path):
            return
        for cls in ctx.classes():
            decorator = self._dataclass_decorator(cls)
            if decorator is None:
                continue
            if isinstance(decorator, ast.Call) and any(
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in decorator.keywords
            ):
                continue
            if self._declares_slots(cls):
                continue
            yield self.finding(
                ctx,
                cls,
                f"dataclass {cls.name} in a hot module lacks __slots__ "
                "(use @dataclass(slots=True))",
            )

    def _is_hot(self, rel_path: str) -> bool:
        probe = "/" + rel_path
        return any(marker in probe for marker in _HOT_MODULE_MARKERS) or any(
            probe.endswith(suffix) for suffix in _HOT_MODULE_SUFFIXES
        )

    def _dataclass_decorator(self, cls: ast.ClassDef):
        for decorator in cls.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = (
                target.id
                if isinstance(target, ast.Name)
                else target.attr
                if isinstance(target, ast.Attribute)
                else ""
            )
            if name == "dataclass":
                return decorator
        return None

    def _declares_slots(self, cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in stmt.targets
            ):
                return True
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
        return False


# ----------------------------------------------------------------------
# DUR01
# ----------------------------------------------------------------------
#: Packages whose on-disk artefacts readers trust byte-for-byte.
_DURABLE_MODULE_MARKERS = ("/repro/durable/", "/repro/scale/")
#: Writing becomes crash-atomic when the enclosing function both
#: flushes the bytes to stable storage and publishes them in one step.
_DUR_SYNC_CALLS = {"fsync", "fdatasync"}
_DUR_PUBLISH_CALLS = {"replace"}


@register
class Dur01NonAtomicDurableWrite(Rule):
    id = "DUR01"
    title = "durable artefact written without fsync + os.replace"
    rationale = (
        "a crash mid-write leaves a torn snapshot/WAL that every later "
        "open trusts; durable files must be written to a same-directory "
        "temp file, fsynced, then published with a single os.replace"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        probe = "/" + ctx.rel_path
        if not any(marker in probe for marker in _DURABLE_MODULE_MARKERS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            mode = self._write_mode(node)
            if mode is None:
                continue
            func = ctx.enclosing_function(node)
            if func is not None and self._writes_atomically(func):
                continue
            yield self.finding(
                ctx,
                node,
                f"write-mode open ({mode!r}) in a durable module outside "
                "the temp-file + fsync + os.replace protocol; a crash "
                "here leaves a torn file later opens trust",
            )

    @staticmethod
    def _write_mode(node: ast.Call) -> Optional[str]:
        """The mode string iff this call opens a file for writing.

        Covers ``open(path, "wb")``, ``path.open("w")`` and
        ``os.fdopen(fd, "wb")``.  Non-constant modes are skipped — the
        rule judges shapes, not dataflow.
        """
        func = node.func
        if isinstance(func, ast.Name):
            if func.id != "open":
                return None
        elif isinstance(func, ast.Attribute):
            if func.attr not in ("open", "fdopen"):
                return None
            # ``SomeClass.open(...)`` / ``cls.open(...)`` is the
            # alternate-constructor idiom, not a file handle.
            value = func.value
            if isinstance(value, ast.Name) and (
                value.id[:1].isupper() or value.id == "cls"
            ):
                return None
        else:
            return None
        mode = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            mode = node.args[1].value
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "open"
            and node.args
            and isinstance(node.args[0], ast.Constant)
        ):
            mode = node.args[0].value
        for keyword in node.keywords:
            if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                mode = keyword.value.value
        if not isinstance(mode, str):
            return None
        if "w" in mode or "x" in mode:
            return mode
        return None

    @staticmethod
    def _writes_atomically(func: ast.AST) -> bool:
        synced = published = False
        for inner in ast.walk(func):
            if isinstance(inner, ast.Call) and isinstance(
                inner.func, ast.Attribute
            ):
                if inner.func.attr in _DUR_SYNC_CALLS:
                    synced = True
                elif inner.func.attr in _DUR_PUBLISH_CALLS:
                    published = True
        return synced and published
