"""The invariant linter's visitor framework.

This package is a *project-specific* static-analysis pass: it walks the
codebase's own ASTs and enforces the invariants every layer is gated on
— deterministic iteration, pickle-safe errors, frozen-structure
discipline, paired resource release — mechanically instead of by
convention.  The framework here is rule-agnostic; the rule battery
lives in :mod:`repro.analysis.rules`.

Pieces:

* **Rule registry.**  Rules subclass :class:`Rule` and register with
  :func:`register`; each receives one :class:`FileContext` per analysed
  file and yields :class:`Finding` objects.
* **File context.**  One parsed file with parent links, enclosing-scope
  names, per-line suppressions and the raw source — everything a rule
  needs to walk without re-deriving bookkeeping.
* **Suppressions.**  ``# repro-lint: disable=RULE[,RULE...]`` on the
  offending line (or on a comment-only line directly above it)
  silences those rules for that line.  Suppressed findings are counted,
  never silently dropped from the report totals.
* **Baseline.**  ``analysis/baseline.json`` lists findings that are
  known and intentionally deferred.  Baselined findings do not fail
  ``--strict``; a baseline entry that no longer matches anything is
  reported as stale so the file shrinks monotonically.
* **Output and exit codes.**  Human-readable lines or ``--json``;
  exit 0 when every finding is suppressed or baselined, 1 when new
  findings exist, 2 on usage/internal errors.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "Baseline",
    "AnalysisReport",
    "analyze_source",
    "analyze_paths",
    "default_targets",
    "default_baseline_path",
    "render_human",
    "render_json",
]

#: Comment markers recognised by the suppression scanner.
_SUPPRESS = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9_,\s]+)")


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix-style path relative to the repo root
    line: int
    col: int
    message: str
    scope: str  # dotted enclosing class/function chain, "" at module level

    @property
    def key(self) -> tuple[str, str, str, str]:
        """Baseline identity: deliberately *line-free* so a finding keeps
        matching its baseline entry while unrelated edits move it around."""
        return (self.rule, self.path, self.scope, self.message)

    def render(self) -> str:
        where = f" [{self.scope}]" if self.scope else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{where}"


# ----------------------------------------------------------------------
# rule registry
# ----------------------------------------------------------------------
class Rule:
    """Base class for one lint rule.

    Subclasses set ``id`` (``DET01``-style), ``title`` and
    ``rationale`` and implement :meth:`check`.  Rules must be pure
    functions of the context — the runner may call them in any order.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            scope=ctx.scope_of(node),
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one rule instance to the global registry."""
    instance = cls()
    if not instance.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id}")
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> dict[str, Rule]:
    """The registered rule battery, importing the built-in rules once."""
    from repro.analysis import rules as _builtin  # noqa: F401  (registers)

    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# file context
# ----------------------------------------------------------------------
class FileContext:
    """One parsed source file plus the bookkeeping every rule shares."""

    def __init__(self, source: str, rel_path: str) -> None:
        self.source = source
        self.rel_path = rel_path
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        self.parents: dict[ast.AST, ast.AST] = {}
        self._scopes: dict[ast.AST, str] = {}
        self._walk(self.tree, None, ())
        self.suppressions = self._scan_suppressions()

    def _walk(self, node: ast.AST, parent: Optional[ast.AST], scope: tuple) -> None:
        if parent is not None:
            self.parents[node] = parent
        self._scopes[node] = ".".join(scope)
        child_scope = scope
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            child_scope = scope + (node.name,)
        for child in ast.iter_child_nodes(node):
            self._walk(child, node, child_scope)

    def _scan_suppressions(self) -> dict[int, frozenset]:
        """Line number -> rule ids silenced there.

        Scans real ``COMMENT`` tokens, so the marker text appearing
        inside a string literal (docs, fixtures) is never a suppression.
        A suppression on a comment-only line also covers the next line,
        so multi-clause statements can keep the justification above the
        code instead of trailing an already-long line.
        """
        suppressed: dict[int, set] = {}
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.source).readline)
            )
        except tokenize.TokenError:  # pragma: no cover - ast.parse passed
            tokens = []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS.search(token.string)
            if not match:
                continue
            rules = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            number = token.start[0]
            suppressed.setdefault(number, set()).update(rules)
            if not token.line[: token.start[1]].strip():
                suppressed.setdefault(number + 1, set()).update(rules)
        return {line: frozenset(rules) for line, rules in suppressed.items()}

    # ------------------------------------------------------------------
    # queries rules use
    # ------------------------------------------------------------------
    def scope_of(self, node: ast.AST) -> str:
        return self._scopes.get(node, "")

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def functions(self) -> Iterator[ast.FunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node

    def enclosing_function(self, node: ast.AST) -> Optional[ast.FunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        return rules is not None and finding.rule in rules


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
class Baseline:
    """Known, intentionally deferred findings (``baseline.json``).

    Matching is by :attr:`Finding.key` with multiplicity: two identical
    deferred findings need two baseline entries, so fixing one of them
    surfaces the other instead of hiding behind a stale entry.
    """

    def __init__(self, entries: Sequence[dict]) -> None:
        self._budget: dict[tuple, int] = {}
        for entry in entries:
            key = (
                entry["rule"],
                entry["path"],
                entry.get("scope", ""),
                entry["message"],
            )
            self._budget[key] = self._budget.get(key, 0) + 1
        self._initial = dict(self._budget)

    @classmethod
    def load(cls, path: Optional[Path]) -> "Baseline":
        if path is None or not path.exists():
            return cls([])
        document = json.loads(path.read_text(encoding="utf-8"))
        return cls(document.get("entries", []))

    def absorb(self, finding: Finding) -> bool:
        """True (and one budget slot consumed) when the finding is baselined."""
        remaining = self._budget.get(finding.key, 0)
        if remaining <= 0:
            return False
        self._budget[finding.key] = remaining - 1
        return True

    def stale_entries(self) -> list[dict]:
        """Baseline entries that matched nothing in this run."""
        stale = []
        for key, remaining in self._budget.items():
            for __ in range(remaining):
                rule, path, scope, message = key
                stale.append(
                    {"rule": rule, "path": path, "scope": scope, "message": message}
                )
        return stale

    @staticmethod
    def entry_for(finding: Finding) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "scope": finding.scope,
            "message": finding.message,
        }


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
@dataclass(slots=True)
class AnalysisReport:
    """Outcome of one analysis run over a file set."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)
    files: int = 0
    errors: list[str] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        """Findings per rule over *all* findings (new + baselined +
        suppressed) — the benchmark report records total rule pressure,
        not just what currently fails the gate."""
        totals: dict[str, int] = {}
        for finding in (*self.new, *self.baselined, *self.suppressed):
            totals[finding.rule] = totals.get(finding.rule, 0) + 1
        return dict(sorted(totals.items()))

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.new else 0


def analyze_source(
    source: str,
    rel_path: str,
    rules: Optional[dict[str, Rule]] = None,
) -> list[Finding]:
    """Every finding (suppressed ones included) for one source string.

    The test-fixture entry point: rules decide module-scoped behaviour
    (FRZ01 sanctioned modules, SLOT01 hot modules) from ``rel_path``, so
    fixtures can impersonate any file in the tree.
    """
    ctx = FileContext(source, rel_path)
    found: list[Finding] = []
    for rule in (rules or all_rules()).values():
        found.extend(rule.check(ctx))
    found.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return found


def default_targets(root: Optional[Path] = None) -> list[Path]:
    """The default analysis target: the library source tree."""
    root = root or _repo_root()
    return [root / "src" / "repro"]


def default_baseline_path(root: Optional[Path] = None) -> Path:
    root = root or _repo_root()
    return root / "src" / "repro" / "analysis" / "baseline.json"


def _repo_root() -> Path:
    # framework.py lives at src/repro/analysis/framework.py
    return Path(__file__).resolve().parents[3]


def _python_files(targets: Iterable[Path]) -> Iterator[Path]:
    for target in targets:
        if target.is_dir():
            yield from sorted(target.rglob("*.py"))
        elif target.suffix == ".py":
            yield target


def analyze_paths(
    targets: Optional[Sequence[Path]] = None,
    *,
    baseline: Optional[Baseline] = None,
    rules: Optional[dict[str, Rule]] = None,
    root: Optional[Path] = None,
) -> AnalysisReport:
    """Analyse a file/directory set and classify every finding."""
    root = root or _repo_root()
    if targets is None:
        targets = default_targets(root)
    if baseline is None:
        baseline = Baseline.load(default_baseline_path(root))
    rules = rules if rules is not None else all_rules()
    report = AnalysisReport()
    for path in _python_files(Path(target) for target in targets):
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            ctx = FileContext(source, rel)
        except (OSError, SyntaxError, ValueError) as error:
            report.errors.append(f"{rel}: {type(error).__name__}: {error}")
            continue
        report.files += 1
        file_findings: list[Finding] = []
        for rule in rules.values():
            file_findings.extend(rule.check(ctx))
        file_findings.sort(key=lambda f: (f.line, f.col, f.rule))
        for finding in file_findings:
            if ctx.is_suppressed(finding):
                report.suppressed.append(finding)
            elif baseline.absorb(finding):
                report.baselined.append(finding)
            else:
                report.new.append(finding)
    report.stale_baseline = baseline.stale_entries()
    return report


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_human(report: AnalysisReport, out, *, verbose: bool = False) -> None:
    for finding in report.new:
        print(finding.render(), file=out)
    if verbose:
        for finding in report.baselined:
            print(f"{finding.render()}  (baselined)", file=out)
        for finding in report.suppressed:
            print(f"{finding.render()}  (suppressed)", file=out)
    for entry in report.stale_baseline:
        print(
            f"stale baseline entry: {entry['rule']} {entry['path']} "
            f"[{entry['scope']}] {entry['message']}",
            file=out,
        )
    for error in report.errors:
        print(f"error: {error}", file=out)
    counts = report.counts()
    rendered = (
        ", ".join(f"{rule}={count}" for rule, count in counts.items())
        if counts
        else "none"
    )
    print(
        f"checked {report.files} files: {len(report.new)} new, "
        f"{len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed "
        f"(rule hits: {rendered})",
        file=out,
    )


def render_json(report: AnalysisReport) -> dict:
    def encode(finding: Finding) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "scope": finding.scope,
        }

    return {
        "schema": "repro-lint-report/1",
        "files": report.files,
        "new": [encode(f) for f in report.new],
        "baselined": [encode(f) for f in report.baselined],
        "suppressed": [encode(f) for f in report.suppressed],
        "stale_baseline": report.stale_baseline,
        "errors": report.errors,
        "counts": report.counts(),
        "exit_code": report.exit_code,
    }
