"""``repro.analysis`` — the AST-based invariant linter.

Run it as ``python -m repro.analysis`` or ``repro lint``.  The visitor
framework lives in :mod:`repro.analysis.framework`, the rule battery in
:mod:`repro.analysis.rules`; both are importable for programmatic use
(the benchmark runner records rule-hit counts this way).
"""

from repro.analysis.framework import (
    AnalysisReport,
    Baseline,
    FileContext,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    default_baseline_path,
    default_targets,
    render_human,
    render_json,
)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "default_baseline_path",
    "default_targets",
    "render_human",
    "render_json",
    "main",
]


def main(argv=None, out=None) -> int:
    """CLI entry point shared by ``python -m repro.analysis`` and
    ``repro lint``; returns the process exit code."""
    from repro.analysis.__main__ import run

    return run(argv, out)
