"""``python -m repro.analysis`` — run the invariant linter.

Exit codes: 0 when every finding is suppressed or baselined, 1 when new
findings exist (always, not only under ``--strict``; strict
additionally fails on stale baseline entries so the baseline shrinks
monotonically), 2 on usage or internal errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.framework import (
    Baseline,
    all_rules,
    analyze_paths,
    default_baseline_path,
    render_human,
    render_json,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter: determinism, "
        "pickle-safety, freeze and resource contracts",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail (exit 1) when the baseline holds stale entries",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a machine-readable report"
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined and suppressed findings",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file (default: src/repro/analysis/baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to exactly the current findings",
    )
    return parser


def run(argv=None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    rules = all_rules()
    if args.rules:
        wanted = {part.strip() for part in args.rules.split(",") if part.strip()}
        unknown = wanted - set(rules)
        if unknown:
            print(
                f"unknown rule ids: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(rules))})",
                file=out,
            )
            return 2
        rules = {rule_id: rules[rule_id] for rule_id in sorted(wanted)}

    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path()
    )
    targets = [Path(path) for path in args.paths] if args.paths else None

    if args.update_baseline:
        # A filtered run only sees a slice of the findings; rewriting a
        # baseline from it would silently drop every entry outside the
        # slice and resurface them as new findings on the next full
        # run.  Explicit PATH args are fine with an explicit --baseline
        # (a scoped baseline file pairs with its scoped file set), never
        # with the shared default baseline.
        if args.rules:
            print(
                "--update-baseline rewrites the whole baseline and cannot "
                "be combined with --rules",
                file=out,
            )
            return 2
        if args.paths and not args.baseline:
            print(
                "--update-baseline with explicit PATH arguments would "
                "rewrite the default baseline from a partial scope; pass "
                "--baseline FILE to write a scoped baseline instead",
                file=out,
            )
            return 2

    if args.update_baseline:
        # Analyse against an empty baseline so every finding lands in
        # the rewritten file (suppressed ones stay suppressed in code).
        report = analyze_paths(targets, baseline=Baseline([]), rules=rules)
        entries = [Baseline.entry_for(finding) for finding in report.new]
        baseline_path.write_text(
            json.dumps(
                {"version": 1, "entries": entries}, indent=2, sort_keys=True
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote {baseline_path} ({len(entries)} entries)", file=out)
        return 0

    report = analyze_paths(
        targets, baseline=Baseline.load(baseline_path), rules=rules
    )
    if args.json:
        print(json.dumps(render_json(report), indent=2), file=out)
    else:
        render_human(report, out, verbose=args.verbose)
    exit_code = report.exit_code
    if args.strict and report.stale_baseline and exit_code == 0:
        exit_code = 1
    return exit_code


if __name__ == "__main__":
    raise SystemExit(run())
