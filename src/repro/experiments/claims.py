"""Mechanised verification of the paper's two §3 claims.

* :func:`mtjnt_loss` — "In the previous example connections 3, 4, 6 and 7
  are lost, if the MTJNT approach were followed": the MTJNTs for ``Smith
  XML`` are exactly the tuple sets of connections 1, 2 and 5, and the
  minimality test rejects connections 3, 4, 6 and 7.
* :func:`ranking_comparison` — ranking by RDB length puts connections 1
  and 5 best and 4 and 7 worst, while the paper's closeness-first order
  puts 1, 2 and 5 best and 3 and 6 worst, promoting 4 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.discover import find_mtjnts, is_mtjnt
from repro.core.engine import KeywordSearchEngine
from repro.core.matching import match_keywords
from repro.core.ranking import ClosenessRanker, RdbLengthRanker, rank_connections
from repro.core.search import SearchLimits
from repro.datasets.company import build_company_database
from repro.experiments.report import ReproductionMismatch
from repro.experiments.tables import paper_connections

__all__ = ["MtjntLossResult", "RankingComparisonResult", "mtjnt_loss",
           "ranking_comparison"]


@dataclass(frozen=True)
class MtjntLossResult:
    """Outcome of the MTJNT-loss check."""

    mtjnt_rows: tuple[int, ...]
    lost_rows: tuple[int, ...]
    mtjnt_count: int


@dataclass(frozen=True)
class RankingComparisonResult:
    """Row numbers grouped by rank under the two ranking strategies."""

    rdb_best: tuple[int, ...]
    rdb_worst: tuple[int, ...]
    closeness_best: tuple[int, ...]
    closeness_worst: tuple[int, ...]
    rdb_order: tuple[int, ...]
    closeness_order: tuple[int, ...]


def mtjnt_loss() -> MtjntLossResult:
    """Check which of Table 2's connections 1–7 survive MTJNT semantics."""
    engine = KeywordSearchEngine(build_company_database())
    matches = match_keywords(engine.index, ("XML", "Smith"))
    connections = paper_connections(engine)

    mtjnts = find_mtjnts(
        engine.data_graph, matches, SearchLimits(max_tuples=5)
    )
    mtjnt_sets = set(mtjnts)

    surviving = []
    lost = []
    for number in range(1, 8):
        members = frozenset(connections[number].tuple_ids())
        if members in mtjnt_sets and is_mtjnt(engine.data_graph, members, matches):
            surviving.append(number)
        else:
            lost.append(number)

    if tuple(surviving) != (1, 2, 5):
        raise ReproductionMismatch(
            "MTJNT survivors deviate (paper: connections 1, 2, 5)",
            got=surviving,
        )
    if tuple(lost) != (3, 4, 6, 7):
        raise ReproductionMismatch(
            "lost connections deviate (paper: 3, 4, 6, 7)", got=lost
        )
    # Conversely, every found MTJNT must be one of the surviving tuple sets:
    # the paper's example has exactly three MTJNTs.
    expected_sets = {
        frozenset(connections[number].tuple_ids()) for number in (1, 2, 5)
    }
    if mtjnt_sets != expected_sets:
        raise ReproductionMismatch(
            "MTJNT set deviates from connections 1, 2, 5",
            got=sorted(sorted(str(t) for t in s) for s in mtjnt_sets),
        )
    return MtjntLossResult(
        mtjnt_rows=tuple(surviving),
        lost_rows=tuple(lost),
        mtjnt_count=len(mtjnts),
    )


def ranking_comparison() -> RankingComparisonResult:
    """Compare RDB-length ranking with the paper's closeness ranking."""
    connections = paper_connections()
    numbered = {connections[number]: number for number in range(1, 8)}

    rdb_ranked = rank_connections(list(numbered), RdbLengthRanker())
    closeness_ranked = rank_connections(list(numbered), ClosenessRanker())

    def groups(ranked):
        best_score = ranked[0][1]
        worst_score = ranked[-1][1]
        best = tuple(
            sorted(numbered[answer] for answer, score in ranked if score == best_score)
        )
        worst = tuple(
            sorted(numbered[answer] for answer, score in ranked if score == worst_score)
        )
        order = tuple(numbered[answer] for answer, __ in ranked)
        return best, worst, order

    rdb_best, rdb_worst, rdb_order = groups(rdb_ranked)
    closeness_best, closeness_worst, closeness_order = groups(closeness_ranked)

    if rdb_best != (1, 5) or rdb_worst != (4, 7):
        raise ReproductionMismatch(
            "RDB-length ranking deviates (paper: best 1,5; worst 4,7)",
            best=rdb_best,
            worst=rdb_worst,
        )
    if closeness_best != (1, 2, 5) or closeness_worst != (3, 6):
        raise ReproductionMismatch(
            "closeness ranking deviates (paper: best 1,2,5; worst 3,6)",
            best=closeness_best,
            worst=closeness_worst,
        )
    return RankingComparisonResult(
        rdb_best=rdb_best,
        rdb_worst=rdb_worst,
        closeness_best=closeness_best,
        closeness_worst=closeness_worst,
        rdb_order=rdb_order,
        closeness_order=closeness_order,
    )
