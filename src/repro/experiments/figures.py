"""Regenerate Figures 1 and 2 of the paper and verify them.

* :func:`figure1` — builds the ER schema of Figure 1 and verifies that the
  standard ER-to-relational mapping produces exactly the relational schema
  printed in Figure 2 (relations, keys, foreign keys, middle relation);
* :func:`figure2` — builds the printed instance and verifies tuple counts,
  foreign-key integrity and the keyword matches the paper states
  ("Smith" matches the two first employees, "XML" matches two projects and
  two departments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.datasets.company import (
    build_company_database,
    build_company_er_schema,
    build_company_schema,
)
from repro.er.mapping import map_er_to_relational
from repro.er.model import ERSchema
from repro.experiments.report import ReproductionMismatch
from repro.relational.database import Database
from repro.relational.index import InvertedIndex
from repro.relational.schema import DatabaseSchema

__all__ = [
    "Figure1Result",
    "Figure2Result",
    "figure1",
    "figure2",
    "figure2_text",
]

#: Column-name overrides that make the generated schema match Figure 2.
_FIGURE2_COLUMN_NAMES = {
    "WORKS_FOR": "D_ID",
    "CONTROLS": "D_ID",
    "DEPENDENTS": "ESSN",
    "WORKS_ON.EMPLOYEE": "ESSN",
    "WORKS_ON.PROJECT": "P_ID",
}

#: The paper's middle relation is printed under the name WORKS_FOR.
_FIGURE2_MIDDLE_NAMES = {"WORKS_ON": "WORKS_FOR"}


@dataclass(frozen=True)
class Figure1Result:
    """The ER schema plus the schema its mapping generates."""

    er_schema: ERSchema
    mapped_schema: DatabaseSchema
    description: str


@dataclass(frozen=True)
class Figure2Result:
    """The printed instance with verification metadata."""

    database: Database
    tuple_counts: dict[str, int]
    smith_labels: tuple[str, ...]
    xml_labels: tuple[str, ...]


def _schema_signature(schema: DatabaseSchema) -> dict:
    """Order-insensitive structural signature for schema comparison."""
    return {
        "relations": {
            relation.name: {
                "attributes": frozenset(a.name for a in relation.attributes),
                "primary_key": frozenset(relation.primary_key),
                "is_middle": relation.is_middle,
            }
            for relation in schema.relations
        },
        "foreign_keys": frozenset(
            (fk.source, fk.source_columns, fk.target, fk.target_columns)
            for fk in schema.foreign_keys
        ),
    }


def figure1() -> Figure1Result:
    """Verify Figure 1 maps onto Figure 2's relational schema."""
    er_schema = build_company_er_schema()
    mapping = map_er_to_relational(
        er_schema,
        column_names=_FIGURE2_COLUMN_NAMES,
        middle_relation_names=_FIGURE2_MIDDLE_NAMES,
    )
    expected = _schema_signature(build_company_schema())
    generated = _schema_signature(mapping.schema)
    if generated != expected:
        raise ReproductionMismatch(
            "ER mapping does not reproduce Figure 2's schema",
            expected=expected,
            got=generated,
        )
    return Figure1Result(
        er_schema=er_schema,
        mapped_schema=mapping.schema,
        description=er_schema.describe(),
    )


def figure2() -> Figure2Result:
    """Verify the printed instance and the paper's stated keyword matches."""
    database = build_company_database()
    database.check_integrity()

    expected_counts = {
        "DEPARTMENT": 3,
        "PROJECT": 3,
        "EMPLOYEE": 4,
        "WORKS_FOR": 4,
        "DEPENDENT": 2,
    }
    counts = {
        relation.name: database.count(relation.name)
        for relation in database.schema.relations
    }
    if counts != expected_counts:
        raise ReproductionMismatch(
            "Figure 2 tuple counts deviate", expected=expected_counts, got=counts
        )

    index = InvertedIndex(database)
    smith = tuple(
        database.tuple(tid).label for tid in index.matching_tuples("smith")
    )
    xml = tuple(database.tuple(tid).label for tid in index.matching_tuples("xml"))
    if set(smith) != {"e1", "e2"}:
        raise ReproductionMismatch(
            "'Smith' should match the two first employees", got=smith
        )
    if set(xml) != {"d1", "d2", "p1", "p2"}:
        raise ReproductionMismatch(
            "'XML' should match two departments and two projects", got=xml
        )
    return Figure2Result(
        database=database,
        tuple_counts=counts,
        smith_labels=smith,
        xml_labels=xml,
    )


def figure2_text(database: Optional[Database] = None) -> str:
    """Render the instance as Figure 2 prints it: one block per relation.

    The relation order and row order follow the printed figure (insertion
    order of :func:`~repro.datasets.company.build_company_database`).
    """
    from repro.experiments.report import render_table

    if database is None:
        database = build_company_database()
    blocks = []
    for relation in database.schema.relations:
        rows = [
            ["" if record.values[name] is None else str(record.values[name])
             for name in relation.attribute_names]
            for record in database.tuples(relation.name)
        ]
        blocks.append(
            render_table(relation.name, list(relation.attribute_names), rows)
        )
    return "\n\n".join(blocks)
