"""Reproduction harness: regenerate every table, figure and claim.

Each function returns structured rows *and* checks them against the
published values, raising :class:`ReproductionMismatch` on any deviation —
the benchmarks and EXPERIMENTS.md are generated from these.

* :mod:`repro.experiments.tables` — Tables 1, 2 and 3;
* :mod:`repro.experiments.figures` — Figures 1 and 2;
* :mod:`repro.experiments.claims` — the MTJNT-loss and ranking claims of §3;
* :mod:`repro.experiments.report` — plain-text table rendering.
"""

from repro.experiments.claims import mtjnt_loss, ranking_comparison
from repro.experiments.figures import figure1, figure2
from repro.experiments.report import ReproductionMismatch, render_table
from repro.experiments.tables import table1, table2, table3

__all__ = [
    "ReproductionMismatch",
    "figure1",
    "figure2",
    "mtjnt_loss",
    "ranking_comparison",
    "render_table",
    "table1",
    "table2",
    "table3",
]
