"""Regenerate Tables 1, 2 and 3 of the paper and verify them.

Each ``tableN`` function recomputes the table from the library (never from
hard-coded answers), compares it against the published values and returns
the rows.  On any deviation it raises
:class:`~repro.experiments.report.ReproductionMismatch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.associations import AssociationKind, classify_er_path
from repro.core.connections import Connection
from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.company import (
    TABLE1_ENTITY_SEQUENCES,
    build_company_database,
    build_company_er_schema,
)
from repro.er.paths import ERPath
from repro.experiments.report import ReproductionMismatch

__all__ = [
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "table1",
    "table2",
    "table3",
    "paper_connections",
]

#: Published Table 1: (entities, cardinality rendering, close?).
_PAPER_TABLE1: tuple[tuple[str, str, bool], ...] = (
    ("department – employee", "department 1:N employee", True),
    ("project – employee", "project N:M employee", True),
    (
        "department – employee – dependent",
        "department 1:N employee 1:N dependent",
        True,
    ),
    (
        "department – project – employee",
        "department 1:N project N:M employee",
        False,
    ),
    (
        "project – department – employee",
        "project N:1 department 1:N employee",
        False,
    ),
    (
        "department – project – employee – dependent",
        "department 1:N project N:M employee 1:N dependent",
        False,
    ),
)

#: Published Table 2: (connection, RDB length, ER length).
_PAPER_TABLE2: tuple[tuple[str, int, int], ...] = (
    ("d1(XML) – e1(Smith)", 1, 1),
    ("p1(XML) – w_f1 – e1(Smith)", 2, 1),
    ("p1(XML) – d1(XML) – e1(Smith)", 2, 2),
    ("d1(XML) – p1(XML) – w_f1 – e1(Smith)", 3, 2),
    ("d2(XML) – e2(Smith)", 1, 1),
    ("p2(XML) – d2(XML) – e2(Smith)", 2, 2),
    ("d2(XML) – p3 – w_f2 – e2(Smith)", 3, 2),
    ("d1 – e3 – t1(Alice)", 2, 2),
    ("d2 – p2 – w_f3 – e3 – t1(Alice)", 4, 3),
)

#: Published Table 3: connection with per-edge cardinalities.
_PAPER_TABLE3: tuple[str, ...] = (
    "d1(XML) 1:N e1(Smith)",
    "p1(XML) 1:N w_f1 N:1 e1(Smith)",
    "p1(XML) N:1 d1(XML) 1:N e1(Smith)",
    "d1(XML) 1:N p1(XML) 1:N w_f1 N:1 e1(Smith)",
    "d2(XML) 1:N e2(Smith)",
    "p2(XML) N:1 d2(XML) 1:N e2(Smith)",
    "d2(XML) 1:N p3 1:N w_f2 N:1 e2(Smith)",
    "d1 1:N e3 1:N t1(Alice)",
    "d2 1:N p2 1:N w_f3 N:1 e3 1:N t1(Alice)",
)


@dataclass(frozen=True)
class Table1Row:
    """One classified relationship of Table 1."""

    number: int
    entities: str
    cardinalities: str
    kind: AssociationKind
    is_close: bool
    loose_joints: tuple[int, ...]


@dataclass(frozen=True)
class Table2Row:
    """One connection of Table 2 with both lengths."""

    number: int
    connection: Connection
    rendered: str
    rdb_length: int
    er_length: int


@dataclass(frozen=True)
class Table3Row:
    """One connection of Table 3 with per-edge cardinalities."""

    number: int
    connection: Connection
    rendered: str


def table1() -> list[Table1Row]:
    """Classify the six relationships of Table 1 and verify closeness.

    The paper marks relationships 1–3 as close (immediate / transitive
    functional) and 4–6 as potentially loose.
    """
    schema = build_company_er_schema()
    rows = []
    for index, entities in enumerate(TABLE1_ENTITY_SEQUENCES):
        path = ERPath.from_relationships(schema, entities)
        verdict = classify_er_path(path)
        rendered_entities = " – ".join(name.lower() for name in entities)
        rendered_cardinalities = _lower_entities(path)
        rows.append(
            Table1Row(
                number=index + 1,
                entities=rendered_entities,
                cardinalities=rendered_cardinalities,
                kind=verdict.kind,
                is_close=verdict.is_close,
                loose_joints=verdict.loose_joint_positions,
            )
        )

    for row, (entities, cardinalities, close) in zip(rows, _PAPER_TABLE1):
        if row.entities != entities:
            raise ReproductionMismatch(
                "Table 1 entity sequence deviates",
                row=row.number, expected=entities, got=row.entities,
            )
        if row.cardinalities != cardinalities:
            raise ReproductionMismatch(
                "Table 1 cardinalities deviate",
                row=row.number, expected=cardinalities, got=row.cardinalities,
            )
        if row.is_close != close:
            raise ReproductionMismatch(
                "Table 1 closeness deviates",
                row=row.number, expected=close, got=row.is_close,
            )
    return rows


def _lower_entities(path: ERPath) -> str:
    parts = [path.steps[0].source.lower()]
    for step in path.steps:
        parts.append(str(step.cardinality))
        parts.append(step.target.lower())
    return " ".join(parts)


def paper_connections(
    engine: Optional[KeywordSearchEngine] = None,
) -> dict[int, Connection]:
    """The nine connections of Tables 2/3, keyed by their paper row number.

    Rows 1–7 are *searched* (query ``Smith XML``, enumeration bound of
    three FK edges — the searched set is exactly the published set, which
    is itself part of the reproduction).  Rows 8 and 9 are the paper's
    illustrative department–dependent connections, built by tuple labels
    and annotated with the keyword ``Alice`` as printed.
    """
    if engine is None:
        engine = KeywordSearchEngine(build_company_database())
    limits = SearchLimits(max_rdb_length=3)
    # Query order "XML Smith" orients every path from the XML end, which is
    # how the paper prints them; the query itself is symmetric.
    results = engine.search("XML Smith", limits=limits)
    found = {
        result.answer.render(): result.answer
        for result in results
        if isinstance(result.answer, Connection)
    }
    expected_searched = [rendered for rendered, __, __ in _PAPER_TABLE2[:7]]
    if set(found) != set(expected_searched):
        raise ReproductionMismatch(
            "searched connections deviate from Table 2 rows 1-7",
            expected=sorted(expected_searched),
            got=sorted(found),
        )

    connections = {
        number + 1: found[rendered]
        for number, (rendered, __, __) in enumerate(_PAPER_TABLE2[:7])
    }
    connections[8] = Connection.from_labels(
        engine.data_graph, ["d1", "e3", "t1"], {"t1": ["Alice"]}
    )
    connections[9] = Connection.from_labels(
        engine.data_graph,
        ["d2", "p2", "w_f3", "e3", "t1"],
        {"t1": ["Alice"]},
    )
    return connections


def table2(engine: Optional[KeywordSearchEngine] = None) -> list[Table2Row]:
    """Regenerate Table 2 (connections with RDB and ER lengths)."""
    connections = paper_connections(engine)
    rows = []
    for number in sorted(connections):
        connection = connections[number]
        rows.append(
            Table2Row(
                number=number,
                connection=connection,
                rendered=connection.render(),
                rdb_length=connection.rdb_length,
                er_length=connection.er_length,
            )
        )
    for row, (rendered, rdb_length, er_length) in zip(rows, _PAPER_TABLE2):
        if (row.rendered, row.rdb_length, row.er_length) != (
            rendered,
            rdb_length,
            er_length,
        ):
            raise ReproductionMismatch(
                "Table 2 row deviates",
                row=row.number,
                expected=(rendered, rdb_length, er_length),
                got=(row.rendered, row.rdb_length, row.er_length),
            )
    return rows


def table3(engine: Optional[KeywordSearchEngine] = None) -> list[Table3Row]:
    """Regenerate Table 3 (connections with per-edge cardinalities)."""
    connections = paper_connections(engine)
    rows = []
    for number in sorted(connections):
        connection = connections[number]
        rows.append(
            Table3Row(
                number=number,
                connection=connection,
                rendered=connection.render_with_cardinalities(),
            )
        )
    for row, rendered in zip(rows, _PAPER_TABLE3):
        if row.rendered != rendered:
            raise ReproductionMismatch(
                "Table 3 row deviates",
                row=row.number,
                expected=rendered,
                got=row.rendered,
            )
    return rows
