"""Plain-text rendering and the reproduction mismatch error."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError

__all__ = ["ReproductionMismatch", "render_table"]


class ReproductionMismatch(ReproError):
    """A regenerated artefact deviates from the published one."""


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render rows as a fixed-width text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
    return "\n".join(lines)
