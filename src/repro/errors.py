"""Exception hierarchy shared by every subsystem.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Each subsystem raises the most specific subclass that applies;
constructors accept a plain message plus optional structured context that is
appended to the rendered message (useful in logs and test assertions).
"""

from __future__ import annotations


def _rebuild_error(cls: type, message: str, context: dict) -> "ReproError":
    """Reconstruct a pickled :class:`ReproError` without re-rendering.

    The constructor appends the context to the message; round-tripping
    through it would double the rendered details and lose the structured
    ``context`` dict, so unpickling restores both fields verbatim instead
    (worker processes ship errors back to the parallel coordinator).
    """
    error = cls.__new__(cls)
    Exception.__init__(error, message)
    error.context = context
    return error


class ReproError(Exception):
    """Base class for every error raised by this library."""

    def __init__(self, message: str, **context: object) -> None:
        self.context = dict(context)
        if context:
            details = ", ".join(f"{key}={value!r}" for key, value in context.items())
            message = f"{message} ({details})"
        super().__init__(message)

    def __reduce__(self):
        message = self.args[0] if self.args else ""
        return (_rebuild_error, (type(self), message, self.context))


class SchemaError(ReproError):
    """A schema definition is inconsistent (ER or relational)."""


class UnknownEntityTypeError(SchemaError):
    """An ER schema was asked about an entity type it does not contain."""


class UnknownRelationshipError(SchemaError):
    """An ER schema was asked about a relationship it does not contain."""


class UnknownRelationError(SchemaError):
    """A database schema was asked about a relation it does not contain."""


class UnknownAttributeError(SchemaError):
    """A relation or entity type was asked about a missing attribute."""


class IntegrityError(ReproError):
    """A database mutation violates a key or foreign-key constraint."""


class PrimaryKeyError(IntegrityError):
    """Duplicate or missing primary key value."""


class ForeignKeyError(IntegrityError):
    """A foreign key references a non-existent tuple."""


class TypeCoercionError(ReproError):
    """An attribute value cannot be coerced to its declared type."""


class PathError(ReproError):
    """An ER or tuple path is malformed (disconnected steps, empty, ...)."""


class MappingError(ReproError):
    """ER <-> relational mapping failed or is ambiguous."""


class MutationError(ReproError):
    """A live-update mutation batch is malformed or cannot be applied."""


class MutationFormatError(MutationError):
    """A serialized mutation record is malformed (bad JSON or shape).

    Carries ``path`` / ``batch`` / ``record`` / ``offset`` context so a
    broken replay file can be located down to the failing record.
    """


class QueryError(ReproError):
    """A keyword query is malformed or uses unsupported options."""


class SearchLimitError(ReproError):
    """A search exceeded a configured enumeration budget."""


class SnapshotError(ReproError):
    """An engine snapshot file is malformed, corrupted or incompatible."""


class WalError(ReproError):
    """A write-ahead log is corrupt, mismatched or cannot be applied."""


class FaultInjected(ReproError):
    """Raised by the fault-injection harness at an armed crash point."""
