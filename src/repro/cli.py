"""Command-line interface: search, reproduce, analyze, generate.

Usage (after ``pip install -e .``)::

    python -m repro search "Smith XML" --explain
    python -m repro search "Smith XML" --ranker rdb
    python -m repro search "Smith XML" --top 3 --stream
    python -m repro search "Smith XML; Brown CS; Smith Brown" --batch
    python -m repro search "Smith XML" --mutations updates.json
    python -m repro search "Smith XML" --analyze    # EXPLAIN ANALYZE table
    python -m repro search "Smith XML" --json --trace trace.jsonl
    python -m repro stats                           # metrics-registry report
    python -m repro plan "Smith XML"                # costed plan, no execution
    python -m repro search "Smith XML" --snapshot db.snap --wal \\
        --mutations updates.json                    # durable live updates
    python -m repro wal info db.snap                # WAL header + records
    python -m repro wal compact db.snap             # fold WAL into snapshot
    python -m repro reproduce                       # all tables/figures/claims
    python -m repro analyze                         # schema closeness report
    python -m repro lint --strict                   # invariant linter
    python -m repro mtjnt "Smith XML"
    python -m repro generate --departments 10 --out /tmp/db.json
    python -m repro search "kwalpha kwbeta" --db /tmp/db.json

Every command accepts ``--db FILE.json`` (a database written by
``repro.relational.io.dump_json``); without it the paper's running example
is used.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.baselines.discover import find_mtjnts
from repro.core.engine import KeywordSearchEngine
from repro.core.ranking import (
    ClosenessRanker,
    ErLengthRanker,
    InstanceAmbiguityRanker,
    RdbLengthRanker,
)
from repro.core.schema_analysis import analyze_relational_schema
from repro.core.search import SearchLimits
from repro.datasets.company import build_company_database
from repro.datasets.synthetic import SyntheticConfig, generate_company_like
from repro.relational.database import Database
from repro.relational.io import dump_json, load_json

__all__ = ["main", "build_parser"]

_RANKERS = {
    "closeness": ClosenessRanker,
    "rdb": RdbLengthRanker,
    "er": ErLengthRanker,
    "ambiguity": InstanceAmbiguityRanker,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Close/loose-association keyword search (EDBT 2017 repro)",
    )
    parser.add_argument(
        "--db",
        metavar="FILE",
        help="database JSON (default: the paper's company example)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    search = commands.add_parser("search", help="run a keyword query")
    search.add_argument("query", help="whitespace-separated keywords")
    search.add_argument(
        "--ranker", choices=sorted(_RANKERS), default="closeness"
    )
    search.add_argument("--max-rdb", type=int, default=3,
                        help="max FK edges per connection (default 3)")
    search.add_argument("--top", type=int, default=None, help="top-k cut")
    search.add_argument("--explain", action="store_true",
                        help="print full per-answer explanations")
    search.add_argument("--semantics", choices=("and", "or"), default="and",
                        help="AND (cover every keyword) or OR semantics")
    search.add_argument("--group", action="store_true",
                        help="group results: close / larger context / loose")
    search.add_argument("--mutations", metavar="FILE",
                        help="JSON mutation batches replayed through "
                             "engine.apply between two runs of QUERY; prints "
                             "a live-update and answer-cache report "
                             "(incompatible with --batch/--stream)")
    execution = search.add_argument_group(
        "execution",
        "how the query runs: traversal kernel, batching/streaming, "
        "sharded and parallel serving (answers are identical across "
        "every combination — only speed differs)",
    )
    execution.add_argument("--batch", action="store_true",
                           help="treat QUERY as ';'-separated queries "
                                "answered as one batch (shared traversal "
                                "cache and enumeration sub-plans)")
    execution.add_argument("--stream", action="store_true",
                           help="print each answer as the executor yields it "
                                "(incompatible with --batch/--group)")
    execution.add_argument("--slow", action="store_true",
                           help="use the brute-force networkx traversal "
                                "instead of the compiled kernels (same as "
                                "--core reference)")
    execution.add_argument("--core", choices=("csr", "fast", "reference"),
                           default=None,
                           help="traversal kernel: csr (compiled integer "
                                "kernels, default), fast (pruned TupleId "
                                "core) or reference (brute force)")
    execution.add_argument("--shards", type=int, default=None, metavar="K",
                           help="partition the compiled graph into K "
                                "component-aligned shards and route "
                                "enumeration through them")
    execution.add_argument("--jobs", type=int, default=None, metavar="N",
                           help="answer a --batch over N snapshot worker "
                                "processes (requires --batch)")
    execution.add_argument("--snapshot", metavar="FILE",
                           help="open the engine from a snapshot written by "
                                "'repro snapshot save' instead of building "
                                "it from --db")
    execution.add_argument("--wal", metavar="FILE", nargs="?", const=True,
                           default=None,
                           help="attach a write-ahead log to the snapshot "
                                "engine: replay it on open and record every "
                                "--mutations batch durably (default FILE: "
                                "<snapshot>.wal; requires --snapshot)")
    execution.add_argument("--no-vector", action="store_true",
                           help="force the pure-stdlib CSR kernels even "
                                "when numpy is available (answers are "
                                "bit-identical, only slower)")
    execution.add_argument("--static-plan", action="store_true",
                           help="disable the adaptive cost-based planner: "
                                "enumeration units drain in plan order and "
                                "batches chunk round-robin (answers are "
                                "bit-identical either way; env "
                                "REPRO_STATIC_PLAN=1 does the same globally)")
    observability = search.add_argument_group(
        "observability",
        "query spans, metrics and EXPLAIN ANALYZE (see also 'repro stats'); "
        "instrumentation is off unless one of these flags turns it on, and "
        "never changes answers or their order",
    )
    observability.add_argument("--analyze", action="store_true",
                               help="EXPLAIN ANALYZE: answer QUERY with "
                                    "tracing forced on and print a per-plan-"
                                    "node table of timings and counters "
                                    "(with --jobs N, also reports the pool "
                                    "pass)")
    observability.add_argument("--json", action="store_true",
                               help="emit results plus execution stats (and "
                                    "a trace summary when tracing is on) as "
                                    "JSON instead of text")
    observability.add_argument("--trace", metavar="FILE",
                               help="enable span tracing for this run and "
                                    "write the query trace to FILE as JSON "
                                    "lines")

    snapshot = commands.add_parser(
        "snapshot", help="save / load mmap-able engine snapshots"
    )
    actions = snapshot.add_subparsers(dest="action", required=True)
    snap_save = actions.add_parser(
        "save", help="build an engine and write its snapshot"
    )
    snap_save.add_argument("out", metavar="FILE", help="snapshot file to write")
    snap_save.add_argument("--shards", type=int, default=None, metavar="K",
                           help="partition into K shards before saving")
    snap_save.add_argument("--core", choices=("csr", "fast", "reference"),
                           default=None, help="traversal kernel to record")
    snap_load = actions.add_parser(
        "load", help="open and verify a snapshot; optionally run a query"
    )
    snap_load.add_argument("file", metavar="FILE", help="snapshot to open")
    snap_load.add_argument("--query", default=None,
                           help="keyword query to answer from the snapshot")
    snap_load.add_argument("--top", type=int, default=None, help="top-k cut")

    wal = commands.add_parser(
        "wal",
        help="inspect / compact a snapshot's write-ahead log",
        description="The WAL records every applied mutation batch beside "
        "its snapshot so a crash loses nothing: 'repro wal info' shows the "
        "log header and records, 'repro wal compact' folds the log into a "
        "fresh snapshot (crash-atomically) and resets it.",
    )
    wal_actions = wal.add_subparsers(dest="action", required=True)
    wal_info = wal_actions.add_parser(
        "info", help="print a WAL's header, records and tail state"
    )
    wal_info.add_argument("snapshot", metavar="SNAPSHOT",
                          help="snapshot the log is paired with")
    wal_info.add_argument("--wal", metavar="FILE", default=None,
                          help="log file (default: SNAPSHOT.wal)")
    wal_compact = wal_actions.add_parser(
        "compact",
        help="fold the WAL into a fresh snapshot and reset the log",
    )
    wal_compact.add_argument("snapshot", metavar="SNAPSHOT",
                             help="snapshot the log is paired with")
    wal_compact.add_argument("--wal", metavar="FILE", default=None,
                             help="log file (default: SNAPSHOT.wal)")
    wal_compact.add_argument("--out", metavar="FILE", default=None,
                             help="write the folded snapshot (and a fresh "
                                  "empty WAL) here instead of replacing "
                                  "SNAPSHOT in place")

    lint = commands.add_parser(
        "lint",
        help="run the AST-based invariant linter over the library source",
        description="Static-analysis pass enforcing the codebase's "
        "determinism, pickle-safety, freeze, resource and durability "
        "contracts (rules DET01/DET02/PKL01/FRZ01/RES01/API01/SLOT01/"
        "DUR01).",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories (default: src/repro)")
    lint.add_argument("--strict", action="store_true",
                      help="also fail when the baseline holds stale entries")
    lint.add_argument("--json", action="store_true",
                      help="emit a machine-readable report")
    lint.add_argument("--verbose", action="store_true",
                      help="also list baselined and suppressed findings")
    lint.add_argument("--rules", metavar="IDS",
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--baseline", metavar="FILE",
                      help="baseline file "
                           "(default: src/repro/analysis/baseline.json)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline to the current findings")

    stats = commands.add_parser(
        "stats",
        help="run queries with the metrics registry on and print the report",
        description="Runs the given ';'-separated queries with the repro.obs "
        "metrics registry enabled and prints the counters, gauges and "
        "histograms the workload produced.  Without QUERY the paper's "
        "running-example workload is used (requires the default --db).",
    )
    stats.add_argument("query", nargs="?", default=None,
                       help="';'-separated queries (default: a built-in "
                            "workload over the company example)")
    stats.add_argument("--top", type=int, default=None, help="top-k cut")
    stats.add_argument("--semantics", choices=("and", "or"), default="and")
    stats.add_argument("--shards", type=int, default=None, metavar="K",
                       help="partition the compiled graph into K shards")
    stats.add_argument("--core", choices=("csr", "fast", "reference"),
                       default=None, help="traversal kernel")

    plan = commands.add_parser(
        "plan",
        help="show the costed query plan without executing it",
        description="Compiles QUERY into the plan IR, annotates every "
        "enumeration source with the planner's cost estimates (posting "
        "lengths x graph fanout, calibrated by past runs when opened from "
        "a snapshot) and prints the plan — nothing is executed.",
    )
    plan.add_argument("query", help="whitespace-separated keywords")
    plan.add_argument("--semantics", choices=("and", "or"), default="and")
    plan.add_argument("--top", type=int, default=None, help="top-k cut")
    plan.add_argument("--shards", type=int, default=None, metavar="K",
                      help="partition the compiled graph into K shards")
    plan.add_argument("--core", choices=("csr", "fast", "reference"),
                      default=None, help="traversal kernel")
    plan.add_argument("--snapshot", metavar="FILE", default=None,
                      help="open the engine (and its persisted calibration "
                           "table) from a snapshot instead of --db")
    plan.add_argument("--static-plan", action="store_true",
                      help="show the uncosted static plan")

    commands.add_parser(
        "reproduce", help="regenerate every table, figure and claim"
    )

    analyze = commands.add_parser(
        "analyze", help="schema-level closeness analysis"
    )
    analyze.add_argument("--max-length", type=int, default=3,
                         help="max conceptual path length (default 3)")

    mtjnt = commands.add_parser("mtjnt", help="enumerate MTJNTs for a query")
    mtjnt.add_argument("query")
    mtjnt.add_argument("--max-tuples", type=int, default=5)

    generate = commands.add_parser(
        "generate", help="generate a synthetic company-shaped database"
    )
    generate.add_argument("--departments", type=int, default=5)
    generate.add_argument("--projects", type=int, default=3,
                          help="projects per department")
    generate.add_argument("--employees", type=int, default=10,
                          help="employees per department")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True, metavar="FILE")

    return parser


def _load_database(path: Optional[str]) -> Database:
    if path is None:
        return build_company_database()
    return load_json(path)


def _print_results(engine, results, args, out) -> None:
    if args.group:
        from repro.core.presentation import group_results

        for group in group_results(results):
            print(group.describe(), file=out)
        return
    for result in results:
        if args.explain:
            print(engine.explain(result), file=out)
            print(file=out)
        else:
            _print_result_line(result, out)


def _print_result_line(result, out) -> None:
    rendered_score = ", ".join(f"{part:g}" for part in result.score)
    print(f"{result.rank:3}  ({rendered_score})  "
          f"{result.answer.render()}", file=out)


def _report_pushdown(engine, args, ranker, limits, out) -> None:
    """Compare the top-k run's enumeration against full enumeration.

    Counting the full candidate set re-enumerates without the cut, which
    can exceed a budget the lazy top-k run never reached — report that
    instead of crashing (it is itself evidence of the skipped work).
    """
    from repro.errors import SearchLimitError

    stats = engine.last_stats
    enumerated = stats.candidates
    mode = (
        "pushdown" if stats.pushdown
        else "no pushdown (ranker has no score lower bound)"
    )
    try:
        engine.search(
            args.query, ranker=ranker, limits=limits,
            semantics=args.semantics, pushdown=False,
        )
    except SearchLimitError as error:
        print(f"# top-{args.top} {mode}: enumerated {enumerated} candidates; "
              f"full enumeration exceeds the search budget ({error})",
              file=out)
        return
    total = engine.last_stats.candidates
    skipped = total - enumerated
    print(f"# top-{args.top} {mode}: enumerated {enumerated} of {total} "
          f"candidates (skipped {skipped})", file=out)


def _search_with_mutations(engine, args, ranker, limits, out) -> int:
    """Replay mutation batches around a query and report cache behaviour.

    Runs the query cold (priming the answer cache), applies every batch
    through ``engine.apply`` — which invalidates exactly the affected
    cache entries — then answers the query again and prints what the
    replay did to the engine and its caches.
    """
    from repro.live.changes import load_mutation_batches

    batches = load_mutation_batches(args.mutations)
    engine.search(
        args.query, ranker=ranker, limits=limits,
        top_k=args.top, semantics=args.semantics,
    )
    added = removed = updated = 0
    for batch in batches:
        changeset = engine.apply(batch)
        added += len(changeset.tuples_added)
        removed += len(changeset.tuples_removed)
        updated += len(changeset.tuples_updated) + len(changeset.tuples_replaced)
    results = engine.search(
        args.query, ranker=ranker, limits=limits,
        top_k=args.top, semantics=args.semantics,
    )
    if not results:
        print("no answers", file=out)
    else:
        _print_results(engine, results, args, out)
    stats = engine.result_cache.stats
    print(f"# live: {len(batches)} batches "
          f"(+{added} -{removed} ~{updated} tuples), "
          f"engine version {engine.version}; "
          f"answer cache {stats.describe()}", file=out)
    return 0 if results else 1


def _cmd_search(args: argparse.Namespace, out) -> int:
    if args.snapshot:
        if args.db:
            print("--snapshot and --db are mutually exclusive", file=out)
            return 2
        engine = KeywordSearchEngine.open(
            args.snapshot,
            wal=args.wal,
            core="reference" if args.slow else args.core,
            shards=args.shards,
            vector=False if args.no_vector else None,
            adaptive=False if args.static_plan else None,
        )
        if args.wal is not None and engine.wal is not None:
            replayed = engine.version - engine.wal.base_version
            print(f"# wal: {engine.wal.path} "
                  f"(generation {engine.wal.generation}, "
                  f"{replayed} record(s) replayed)", file=out)
    elif args.wal is not None:
        print("--wal needs --snapshot (the log is paired with a snapshot)",
              file=out)
        return 2
    else:
        engine = KeywordSearchEngine(
            _load_database(args.db),
            use_fast_traversal=not args.slow,
            core=args.core,
            shards=args.shards,
            vector=False if args.no_vector else None,
            adaptive=False if args.static_plan else None,
        )
    ranker = _RANKERS[args.ranker]()
    limits = SearchLimits(max_rdb_length=args.max_rdb)
    if args.stream and (args.batch or args.group):
        print("--stream cannot be combined with --batch or --group", file=out)
        return 2
    if args.mutations and (args.batch or args.stream):
        print("--mutations cannot be combined with --batch or --stream",
              file=out)
        return 2
    if args.jobs is not None and not (args.batch or args.analyze):
        print("--jobs needs --batch or --analyze "
              "(parallel execution is per batch)", file=out)
        return 2
    if args.analyze and (args.batch or args.stream or args.mutations
                         or args.group):
        print("--analyze answers one query on its own "
              "(no --batch/--stream/--mutations/--group)", file=out)
        return 2
    if args.json and (args.stream or args.mutations or args.group):
        print("--json cannot be combined with "
              "--stream, --mutations or --group", file=out)
        return 2
    if args.analyze:
        return _search_analyze(engine, args, ranker, limits, out)
    if args.trace:
        from repro.obs import trace as obs_trace

        saved = obs_trace.ENABLED
        obs_trace.set_enabled(True)
        try:
            code = _dispatch_search(engine, args, ranker, limits, out)
        finally:
            obs_trace.set_enabled(saved)
        if engine.save_trace(args.trace):
            print(f"# trace: {args.trace}", file=out)
        return code
    return _dispatch_search(engine, args, ranker, limits, out)


def _search_analyze(engine, args, ranker, limits, out) -> int:
    """EXPLAIN ANALYZE: per-plan-node timings/counters for one query."""
    report = engine.explain_analyze(
        args.query,
        ranker=ranker,
        limits=limits,
        top_k=args.top,
        semantics=args.semantics,
        jobs=args.jobs,
    )
    if args.jobs is not None and args.jobs > 1:
        engine.close_pool()
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True),
              file=out)
    else:
        print(report.render(), file=out)
        error = report.estimate_error()
        if error is not None:
            print(f"# planner: estimated {error['estimated']:g} candidates, "
                  f"observed {error['actual']} "
                  f"(error {error['error_pct']:+g}%)", file=out)
    if args.trace and engine.save_trace(args.trace):
        print(f"# trace: {args.trace}", file=out)
    return 0 if report.results else 1


def _trace_summary(trace) -> dict:
    """Small JSON-able digest of a query trace for ``--json`` output."""
    root = trace.root
    return {
        "root": root.name,
        "spans": sum(1 for __ in root.walk()),
        "duration_ms": round(root.duration * 1000.0, 3),
        "children": [
            {"name": child.name, "ms": round(child.duration * 1000.0, 3)}
            for child in root.children
        ],
    }


def _json_doc(engine, payload: dict) -> str:
    import json

    payload["stats"] = engine.last_stats.to_dict()
    if engine.last_trace is not None:
        payload["trace"] = _trace_summary(engine.last_trace)
    return json.dumps(payload, indent=2, sort_keys=True)


def _json_results(results) -> list:
    return [
        {
            "rank": result.rank,
            "score": list(result.score),
            "answer": result.answer.render(),
        }
        for result in results
    ]


def _dispatch_search(engine, args, ranker, limits, out) -> int:
    if args.mutations:
        return _search_with_mutations(engine, args, ranker, limits, out)
    if args.stream:
        answered = 0
        for result in engine.search_stream(
            args.query,
            ranker=ranker,
            limits=limits,
            top_k=args.top,
            semantics=args.semantics,
        ):
            answered += 1
            if args.explain:
                print(engine.explain(result), file=out)
                print(file=out)
            else:
                _print_result_line(result, out)
        if not answered:
            print("no answers", file=out)
            return 1
        if args.top is not None:
            _report_pushdown(engine, args, ranker, limits, out)
        return 0
    if args.batch:
        queries = [part.strip() for part in args.query.split(";") if part.strip()]
        if not queries:
            print("no queries", file=out)
            return 1
        batched = engine.search_batch(
            queries,
            ranker=ranker,
            limits=limits,
            top_k=args.top,
            semantics=args.semantics,
            jobs=args.jobs,
        )
        if args.json:
            print(_json_doc(engine, {
                "queries": queries,
                "results": [
                    {"query": query, "results": _json_results(results)}
                    for query, results in zip(queries, batched)
                ],
            }), file=out)
            if args.jobs is not None and args.jobs > 1:
                engine.close_pool()
            return 0 if any(batched) else 1
        answered = 0
        for query, results in zip(queries, batched):
            print(f"== {query} ==", file=out)
            if not results:
                print("no answers", file=out)
            else:
                answered += 1
                _print_results(engine, results, args, out)
        if args.jobs is not None and args.jobs > 1:
            engine.close_pool()
            print(f"# parallel: {args.jobs} snapshot workers, "
                  f"{engine.last_stats.candidates} candidates, "
                  f"{engine.last_stats.shard_skips} cross-shard units skipped",
                  file=out)
        return 0 if answered else 1
    results = engine.search(
        args.query,
        ranker=ranker,
        limits=limits,
        top_k=args.top,
        semantics=args.semantics,
    )
    if args.json:
        print(_json_doc(engine, {
            "query": args.query,
            "semantics": args.semantics,
            "results": _json_results(results),
        }), file=out)
        return 0 if results else 1
    if not results:
        print("no answers", file=out)
        return 1
    _print_results(engine, results, args, out)
    if args.top is not None and not args.group:
        _report_pushdown(engine, args, ranker, limits, out)
    return 0


def _cmd_snapshot(args: argparse.Namespace, out) -> int:
    import os

    if args.action == "save":
        engine = KeywordSearchEngine(
            _load_database(args.db), core=args.core, shards=args.shards
        )
        meta = engine.save(args.out)
        size = os.path.getsize(args.out)
        print(f"wrote {args.out}: {meta['tuples']} tuples, "
              f"{meta['nodes']} graph nodes, {meta['entries']} CSR entries, "
              f"{size:,} bytes (engine v{meta['engine_version']}, "
              f"core {meta['core']})", file=out)
        if engine.shard_plan is not None:
            print(f"shards: {engine.shard_plan.describe()}", file=out)
        return 0

    engine = KeywordSearchEngine.open(args.file)
    meta = engine._snapshot.meta
    print(f"{args.file}: verified "
          f"{len(engine._snapshot.sections())} sections; "
          f"{meta['tuples']} tuples, {meta['nodes']} graph nodes, "
          f"{meta['entries']} CSR entries (engine v{meta['engine_version']}, "
          f"core {meta['core']}, "
          f"{meta['shard_count'] or 'no'} shards)", file=out)
    if args.query:
        results = engine.search(args.query, top_k=args.top)
        if not results:
            print("no answers", file=out)
            return 1
        for result in results:
            _print_result_line(result, out)
    return 0


def _cmd_wal(args: argparse.Namespace, out) -> int:
    import os

    from repro.durable import (
        WriteAheadLog,
        compact_snapshot,
        default_wal_path,
    )
    from repro.errors import WalError
    from repro.scale.snapshot import Snapshot

    wal_path = args.wal or default_wal_path(args.snapshot)
    if args.action == "compact":
        try:
            report = compact_snapshot(
                args.snapshot, wal_path=wal_path, out=args.out
            )
        except WalError as error:
            print(f"wal compact failed: {error}", file=out)
            return 1
        print(report.describe(), file=out)
        return 0

    if not os.path.exists(wal_path):
        print(f"{wal_path}: no write-ahead log", file=out)
        return 1
    snapshot = Snapshot(args.snapshot)
    snapshot_generation = snapshot.generation
    snapshot.close()
    wal = WriteAheadLog(wal_path)
    try:
        records = wal.scan()
    except WalError as error:
        print(f"{wal_path}: corrupt ({error})", file=out)
        return 1
    finally:
        wal.close()
    paired = (
        "paired" if wal.generation == snapshot_generation
        else f"MISMATCH (snapshot is {snapshot_generation})"
    )
    print(f"{wal_path}: generation {wal.generation} {paired}, "
          f"base version {wal.base_version}, "
          f"{len(records)} record(s)"
          + (", torn tail (ignored on replay)" if wal.torn_tail else ""),
          file=out)
    for offset, record in records:
        changed = sum(
            len(record.get(field, ()))
            for field in ("appended", "removed", "updated", "replaced")
        )
        print(f"  v{record['version']} @ {offset}: "
              f"{changed} tuple change(s)", file=out)
    return 0


def _cmd_lint(args: argparse.Namespace, out) -> int:
    from repro.analysis import main as lint_main

    argv = list(args.paths)
    if args.strict:
        argv.append("--strict")
    if args.json:
        argv.append("--json")
    if args.verbose:
        argv.append("--verbose")
    if args.rules:
        argv.extend(["--rules", args.rules])
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.update_baseline:
        argv.append("--update-baseline")
    return lint_main(argv, out)


#: Workload `repro stats` runs when no QUERY is given (company example).
_STATS_WORKLOAD = ("Smith XML", "Brown CS", "Smith Brown")


def _cmd_stats(args: argparse.Namespace, out) -> int:
    """Run a workload with the metrics registry on and print the report."""
    from repro.obs import metrics as obs_metrics
    from repro.obs.metrics import REGISTRY, diff_snapshots, render_report

    if args.query:
        queries = [part.strip() for part in args.query.split(";")
                   if part.strip()]
    elif args.db is None:
        queries = list(_STATS_WORKLOAD)
    else:
        print("stats needs QUERY when --db is given "
              "(the built-in workload only fits the company example)",
              file=out)
        return 2
    engine = KeywordSearchEngine(
        _load_database(args.db), core=args.core, shards=args.shards
    )
    saved = obs_metrics.ENABLED
    before = REGISTRY.snapshot()
    obs_metrics.set_enabled(True)
    try:
        for query in queries:
            engine.search(
                query, top_k=args.top, semantics=args.semantics
            )
    finally:
        obs_metrics.set_enabled(saved)
    delta = diff_snapshots(before, REGISTRY.snapshot())
    title = f"repro stats — {len(queries)} queries"
    print(render_report(delta, title=title), file=out)
    return 0


def _cmd_plan(args: argparse.Namespace, out) -> int:
    """Compile and cost QUERY, print the annotated plan, execute nothing."""
    from repro.errors import QueryError

    adaptive = False if args.static_plan else None
    if args.snapshot:
        if args.db:
            print("--snapshot and --db are mutually exclusive", file=out)
            return 2
        engine = KeywordSearchEngine.open(
            args.snapshot, core=args.core, shards=args.shards,
            adaptive=adaptive,
        )
    else:
        engine = KeywordSearchEngine(
            _load_database(args.db), core=args.core, shards=args.shards,
            adaptive=adaptive,
        )
    try:
        plan, __ = engine._plan(args.query, args.top, args.semantics)
    except QueryError as error:
        print(f"cannot plan: {error}", file=out)
        return 1
    print(plan.describe(), file=out)
    if engine.adaptive:
        calibrated = len(engine.calibration)
        source = (f"{calibrated} calibrated kind(s)" if calibrated
                  else "uncalibrated defaults")
        print(f"# planner: adaptive (cost model over posting lengths x "
              f"graph fanout, {source})", file=out)
    else:
        print("# planner: static (plan-order enumeration; "
              "set no flag and unset REPRO_STATIC_PLAN for adaptive)",
              file=out)
    return 0


def _cmd_reproduce(args: argparse.Namespace, out) -> int:
    from repro.experiments import (
        figure1,
        figure2,
        mtjnt_loss,
        ranking_comparison,
        render_table,
        table1,
        table2,
        table3,
    )

    figure1()
    print("Figure 1: ER mapping reproduces Figure 2's schema  OK", file=out)
    instance = figure2()
    print("Figure 2: instance verified "
          f"({sum(instance.tuple_counts.values())} tuples)  OK", file=out)
    print(file=out)
    print(render_table(
        "Table 1",
        ["#", "relationship", "cardinality", "verdict"],
        [
            [r.number, r.entities, r.cardinalities,
             "close" if r.is_close else "loose"]
            for r in table1()
        ],
    ), file=out)
    print(file=out)
    print(render_table(
        "Table 2",
        ["#", "connection", "len RDB", "len ER"],
        [[r.number, r.rendered, r.rdb_length, r.er_length] for r in table2()],
    ), file=out)
    print(file=out)
    print(render_table(
        "Table 3",
        ["#", "connection with relationships"],
        [[r.number, r.rendered] for r in table3()],
    ), file=out)
    print(file=out)
    loss = mtjnt_loss()
    print(f"Claim C1: MTJNTs {loss.mtjnt_rows}, lost {loss.lost_rows}  OK",
          file=out)
    ranking = ranking_comparison()
    print(f"Claim C2: closeness best {ranking.closeness_best}, "
          f"worst {ranking.closeness_worst}  OK", file=out)
    return 0


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    database = _load_database(args.db)
    analyzer = analyze_relational_schema(
        database.schema, max_length=args.max_length
    )
    print(analyzer.report(), file=out)
    return 0


def _cmd_mtjnt(args: argparse.Namespace, out) -> int:
    engine = KeywordSearchEngine(_load_database(args.db))
    matches = engine.match(args.query)
    networks = find_mtjnts(
        engine.data_graph, matches, SearchLimits(max_tuples=args.max_tuples)
    )
    if not networks:
        print("no MTJNTs", file=out)
        return 1
    for members in networks:
        labels = sorted(
            engine.database.tuple(tid).label for tid in members
        )
        print("{" + ", ".join(labels) + "}", file=out)
    return 0


def _cmd_generate(args: argparse.Namespace, out) -> int:
    database = generate_company_like(
        SyntheticConfig(
            departments=args.departments,
            projects_per_department=args.projects,
            employees_per_department=args.employees,
            seed=args.seed,
        )
    )
    dump_json(database, args.out)
    print(f"wrote {database.count()} tuples to {args.out}", file=out)
    return 0


_COMMANDS = {
    "search": _cmd_search,
    "snapshot": _cmd_snapshot,
    "wal": _cmd_wal,
    "lint": _cmd_lint,
    "stats": _cmd_stats,
    "plan": _cmd_plan,
    "reproduce": _cmd_reproduce,
    "analyze": _cmd_analyze,
    "mtjnt": _cmd_mtjnt,
    "generate": _cmd_generate,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    if out is None:
        out = sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)
