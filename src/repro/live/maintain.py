"""Incremental maintainers: patch derived structures from a changeset.

Given the :class:`~repro.live.changes.ChangeSet` of an applied batch,
these functions bring each derived structure of an engine up to date *in
place* instead of rebuilding it:

* :func:`apply_to_index` — drops postings of removed/updated tuples and
  (re-)indexes updated/added ones through the inverted index's
  incremental hooks; posting order stays identical to a fresh build.
* :func:`apply_to_graph` — removes/adds nodes and FK edges on the data
  graph exactly as construction would, and (via the patch methods)
  invalidates the cached conceptual view and bumps the graph version.
* :func:`apply_to_traversal_cache` — fine-grained invalidation: only
  adjacency lists of touched tuples and distance maps of touched
  connected components are dropped.

:func:`affected_tuples` computes the invalidation frontier for the
answer cache: structural changes (node/edge add/remove) taint their
whole connected component — a new edge can create or shorten paths
anywhere in it — while value-only updates taint just the updated tuple,
whose effect is confined to answers containing it (match-set changes are
caught separately by the cache's keyword fingerprints).
"""

from __future__ import annotations

from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import TraversalCache
from repro.live.changes import ChangeSet
from repro.relational.database import Database, TupleId
from repro.relational.index import InvertedIndex

__all__ = [
    "apply_to_index",
    "apply_to_graph",
    "apply_to_traversal_cache",
    "apply_to_shard_plan",
    "affected_tuples",
    "apply_changeset",
]


def apply_to_index(
    index: InvertedIndex, database: Database, changeset: ChangeSet
) -> None:
    """Patch the inverted index in place from a changeset."""
    for tid in changeset.tuples_removed:
        index.remove_tuple(tid)
    for tid in changeset.tuples_updated:
        # In-place value update: the store position is unchanged, so the
        # posting position survives the remove/re-add without a scan.
        index.reindex_tuple(database.tuple(tid))
    for tid in changeset.tuples_replaced:
        # Delete-then-reinsert: the tuple moved to the relation tail, so
        # its posting position must be re-derived.
        index.remove_tuple(tid)
        index.add_tuple(database.tuple(tid))
    for tid in changeset.tuples_added:
        index.add_tuple(database.tuple(tid))


def apply_to_graph(
    data_graph: DataGraph, database: Database, changeset: ChangeSet
) -> None:
    """Patch the data graph in place from a changeset.

    Edges are removed before their endpoints disappear and added after
    both endpoints exist, so the graph never holds a dangling edge.
    """
    for edge in changeset.edges_removed:
        data_graph.remove_fk_edge(
            edge.referencing, edge.referenced, edge.foreign_key.name
        )
    for tid in changeset.tuples_removed:
        data_graph.remove_tuple_node(tid)
    for tid in changeset.tuples_added:
        data_graph.add_tuple_node(database.tuple(tid))
    for edge in changeset.edges_added:
        data_graph.add_fk_edge(edge.referencing, edge.referenced, edge.foreign_key)


def apply_to_traversal_cache(cache: TraversalCache, changeset: ChangeSet) -> int:
    """Invalidate only the traversal-cache entries the batch can affect.

    Only structural changes matter here: adjacency and distance maps are
    pure tuple-identity structures, so value-only updates leave every
    cached entry valid.  The cache's compiled CSR graph, when built, is
    *patched* in place from the changeset's edge deltas (tombstone /
    append / per-row rebuild) rather than recompiled — run this after
    :func:`apply_to_graph`, since the patched rows are re-read from the
    updated data graph.
    """
    return cache.apply_changeset(changeset)


def apply_to_shard_plan(shard_plan, changeset: ChangeSet) -> None:
    """Re-route only the shards a changeset touched.

    Shard assignment is a pure function of connected components, so
    value-only updates change nothing; structural changes reassign
    exactly the affected components (a merged component keeps its lowest
    previous shard, a brand-new one lands on the lightest) and drop only
    the touched shards' extracted graphs.  Run after
    :func:`apply_to_traversal_cache` — the plan reads the *patched*
    compiled graph's components.
    """
    shard_plan.apply_changeset(changeset)


def affected_tuples(
    data_graph: DataGraph, changeset: ChangeSet
) -> frozenset[TupleId]:
    """Tuples whose cached answers a changeset may have invalidated.

    Structural seeds (added/removed tuples, endpoints of added/removed
    edges) expand to their full connected components in the *patched*
    graph — removed nodes seed their former neighbours through the
    removed-edge endpoints, so split-off components are covered too.
    Value-only updated tuples join the set without expansion.
    """
    structural = changeset.structural_tuples()
    affected = set(structural)
    affected.update(changeset.tuples_updated)
    affected.update(changeset.tuples_replaced)
    graph = data_graph.graph
    stack = [tid for tid in structural if tid in graph]
    while stack:
        node = stack.pop()
        for other in graph.neighbors(node):
            if other not in affected:
                affected.add(other)
                stack.append(other)
    return frozenset(affected)


def apply_changeset(
    changeset: ChangeSet,
    database: Database,
    index: InvertedIndex | None = None,
    data_graph: DataGraph | None = None,
    traversal_cache: TraversalCache | None = None,
    shard_plan=None,
) -> None:
    """Apply one changeset to whichever derived structures are given.

    Order matters: the graph is patched before the traversal cache
    (patched CSR rows re-read it) and the shard plan last (it reads the
    patched compiled graph's components).
    """
    if index is not None:
        apply_to_index(index, database, changeset)
    if data_graph is not None:
        apply_to_graph(data_graph, database, changeset)
    if traversal_cache is not None:
        apply_to_traversal_cache(traversal_cache, changeset)
    if shard_plan is not None:
        apply_to_shard_plan(shard_plan, changeset)
