"""Live-update subsystem: mutate a served engine without full rebuilds.

Three layers make :class:`~repro.core.engine.KeywordSearchEngine`
safely updatable:

* :mod:`repro.live.changes` — the change-log / transaction layer.
  ``engine.apply([...])`` validates a batch of
  :class:`~repro.live.changes.Insert` / :class:`~repro.live.changes.Update`
  / :class:`~repro.live.changes.Delete` mutations against the schema's
  key and foreign-key constraints, applies it atomically (all-or-nothing
  with rollback) and returns a :class:`~repro.live.changes.ChangeSet`
  recording the net tuple and FK-edge delta.
* :mod:`repro.live.maintain` — incremental maintainers that patch the
  derived structures in place from a changeset: the inverted index (its
  ``add_tuple`` / ``remove_tuple`` hooks keep posting order identical to
  a fresh build), the data graph (node/edge patching plus conceptual-view
  invalidation) and the traversal cache (only entries in touched
  connected components are dropped).
* :mod:`repro.live.result_cache` — a dependency-tracked LRU answer
  cache.  Entries record the tuple footprint and per-keyword match
  fingerprint of their answers, so a changeset invalidates exactly the
  affected entries; everything else keeps serving.

``engine.rebuild()`` remains the escape hatch and doubles as the
differential oracle: after any interleaving of ``apply`` batches and
queries, results must be bit-identical to a freshly rebuilt engine
(``tests/properties/test_property_live.py`` asserts this across both
traversal cores and both semantics).
"""

from repro.live.changes import (
    ChangeSet,
    Delete,
    EdgeChange,
    Insert,
    Mutation,
    Update,
    apply_to_database,
    load_mutation_batches,
    mutation_from_json,
)
from repro.live.maintain import (
    affected_tuples,
    apply_changeset,
    apply_to_graph,
    apply_to_index,
)
from repro.live.result_cache import CacheEntry, CacheStats, ResultCache

__all__ = [
    "ChangeSet",
    "Delete",
    "EdgeChange",
    "Insert",
    "Mutation",
    "Update",
    "apply_to_database",
    "load_mutation_batches",
    "mutation_from_json",
    "affected_tuples",
    "apply_changeset",
    "apply_to_graph",
    "apply_to_index",
    "CacheEntry",
    "CacheStats",
    "ResultCache",
]
