"""Change-log / transaction layer: validated mutation batches → changesets.

A mutation batch is an ordered sequence of :class:`Insert`,
:class:`Update` and :class:`Delete` operations.  :func:`apply_to_database`
applies one batch **atomically**: every operation is validated against
the schema's key and foreign-key constraints as it runs (foreign-key
enforcement is forced on for the duration, whatever the database's bulk
setting), and any failure rolls the already-applied prefix back in
reverse order, leaving the database exactly as it was.

The result of a successful batch is a :class:`ChangeSet` — the *net*
delta: tuples added/removed/updated and FK edges added/removed, with
intra-batch churn cancelled (insert-then-delete nets to nothing,
delete-then-reinsert of one key nets to a *replace* — identity kept,
store position re-derived).  Changesets are what
the incremental maintainers in :mod:`repro.live.maintain` and the
dependency-tracked answer cache consume, and what
``KeywordSearchEngine.apply`` stamps with the engine's monotonically
increasing version.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Union

from repro.errors import (
    IntegrityError,
    MutationError,
    MutationFormatError,
    WalError,
)
from repro.relational.database import Database, Tuple, TupleId
from repro.relational.schema import ForeignKey

__all__ = [
    "Insert",
    "Update",
    "Delete",
    "Mutation",
    "EdgeChange",
    "ChangeSet",
    "apply_to_database",
    "mutation_from_json",
    "load_mutation_batches",
    "changeset_to_record",
    "changeset_from_record",
    "apply_record",
]


@dataclass(frozen=True)
class Insert:
    """Insert one tuple into ``relation``."""

    relation: str
    values: Mapping[str, object]
    label: Optional[str] = None


@dataclass(frozen=True)
class Update:
    """Set the given attributes of one existing tuple (PK may not change)."""

    tid: TupleId
    values: Mapping[str, object]


@dataclass(frozen=True)
class Delete:
    """Delete one tuple (rejected while other tuples reference it)."""

    tid: TupleId


Mutation = Union[Insert, Update, Delete]


@dataclass(frozen=True)
class EdgeChange:
    """One FK edge gained or lost by a changeset."""

    referencing: TupleId
    referenced: TupleId
    foreign_key: ForeignKey

    @property
    def key(self) -> tuple[TupleId, TupleId, str]:
        return (self.referencing, self.referenced, self.foreign_key.name)


@dataclass
class ChangeSet:
    """Net effect of one applied mutation batch.

    ``version`` is stamped by ``KeywordSearchEngine.apply`` — the engine
    version the batch produced; ``None`` for changesets applied straight
    to a database.
    """

    tuples_added: tuple[TupleId, ...] = ()
    tuples_removed: tuple[TupleId, ...] = ()
    tuples_updated: tuple[TupleId, ...] = ()
    #: Delete-then-reinsert of one key within the batch: the tuple's
    #: identity survives (graph node kept, edge deltas netted) but its
    #: store *position* moved to the relation tail, so index maintenance
    #: must re-derive its posting position instead of keeping it.
    tuples_replaced: tuple[TupleId, ...] = ()
    edges_added: tuple[EdgeChange, ...] = ()
    edges_removed: tuple[EdgeChange, ...] = ()
    version: Optional[int] = None

    def is_empty(self) -> bool:
        return not (
            self.tuples_added
            or self.tuples_removed
            or self.tuples_updated
            or self.tuples_replaced
            or self.edges_added
            or self.edges_removed
        )

    def structural_tuples(self) -> frozenset[TupleId]:
        """Tuples whose graph neighbourhood changed: added/removed tuples
        plus both endpoints of every added or removed FK edge.  Value-only
        updates are excluded — they change postings and renderings, never
        adjacency or distances."""
        structural = set(self.tuples_added)
        structural.update(self.tuples_removed)
        for edge in self.edges_added:
            structural.add(edge.referencing)
            structural.add(edge.referenced)
        for edge in self.edges_removed:
            structural.add(edge.referencing)
            structural.add(edge.referenced)
        return frozenset(structural)

    def touched(self) -> frozenset[TupleId]:
        """Every tuple the batch touched: mutated tuples + edge endpoints."""
        return (
            self.structural_tuples()
            | frozenset(self.tuples_updated)
            | frozenset(self.tuples_replaced)
        )

    def describe(self) -> str:
        return (
            f"+{len(self.tuples_added)} -{len(self.tuples_removed)} "
            f"~{len(self.tuples_updated) + len(self.tuples_replaced)} tuples, "
            f"+{len(self.edges_added)} -{len(self.edges_removed)} edges"
        )


def _outgoing_edges(database: Database, record: Tuple) -> list[EdgeChange]:
    """The FK edges this tuple contributes to the data graph right now."""
    edges = []
    for foreign_key in database.schema.foreign_keys_from(record.relation):
        target = database.referenced_tuple(record, foreign_key)
        if target is not None:
            edges.append(EdgeChange(record.tid, target.tid, foreign_key))
    return edges


class _Builder:
    """Accumulates the net delta while a batch applies."""

    def __init__(self) -> None:
        self.added: dict[TupleId, None] = {}
        self.removed: dict[TupleId, None] = {}
        self.updated: dict[TupleId, None] = {}
        self.replaced: dict[TupleId, None] = {}
        self.edges_added: dict[tuple, EdgeChange] = {}
        self.edges_removed: dict[tuple, EdgeChange] = {}

    def note_insert(self, tid: TupleId) -> None:
        if tid in self.removed:
            # Delete-then-reinsert of the same key: the identity
            # survives, but the store position moved to the tail.
            del self.removed[tid]
            self.replaced[tid] = None
        else:
            self.added[tid] = None

    def note_delete(self, tid: TupleId) -> None:
        if tid in self.added:
            del self.added[tid]
        else:
            self.updated.pop(tid, None)
            self.replaced.pop(tid, None)
            self.removed[tid] = None

    def note_update(self, tid: TupleId) -> None:
        if tid not in self.added and tid not in self.replaced:
            self.updated.setdefault(tid, None)

    def note_edge_added(self, edge: EdgeChange) -> None:
        if edge.key in self.edges_removed:
            del self.edges_removed[edge.key]
        else:
            self.edges_added[edge.key] = edge

    def note_edge_removed(self, edge: EdgeChange) -> None:
        if edge.key in self.edges_added:
            del self.edges_added[edge.key]
        else:
            self.edges_removed[edge.key] = edge

    def changeset(self) -> ChangeSet:
        return ChangeSet(
            tuples_added=tuple(self.added),
            tuples_removed=tuple(self.removed),
            tuples_updated=tuple(self.updated),
            tuples_replaced=tuple(self.replaced),
            edges_added=tuple(self.edges_added.values()),
            edges_removed=tuple(self.edges_removed.values()),
        )


def apply_to_database(
    database: Database, mutations: Iterable[Mutation]
) -> ChangeSet:
    """Apply one mutation batch atomically and return its net changeset.

    Foreign-key enforcement is forced on while the batch runs, so every
    insert/update validates its references and deletes of referenced
    tuples are rejected.  On any failure the already-applied prefix is
    rolled back in reverse order and the error re-raised — the database
    is never left half-mutated.
    """
    builder = _Builder()
    undo: list[tuple] = []
    #: Store order per relation, captured before that relation's first
    #: delete.  A rollback re-insert appends at the store tail, so the
    #: order — which is observable through index posting order and
    #: answer enumeration — must be restored explicitly.
    key_orders: dict[str, tuple] = {}
    previous_enforcement = database.enforce_foreign_keys
    database.enforce_foreign_keys = True
    try:
        for mutation in mutations:
            if isinstance(mutation, Insert):
                record = database.insert(
                    mutation.relation, mutation.values, label=mutation.label
                )
                undo.append(("delete", record.tid))
                builder.note_insert(record.tid)
                for edge in _outgoing_edges(database, record):
                    builder.note_edge_added(edge)
            elif isinstance(mutation, Delete):
                record = database.tuple(mutation.tid)
                old_values = dict(record.values)
                old_label = record.label
                old_edges = _outgoing_edges(database, record)
                if mutation.tid.relation not in key_orders:
                    key_orders[mutation.tid.relation] = (
                        database.relation_key_order(mutation.tid.relation)
                    )
                database.delete(mutation.tid)
                undo.append(
                    ("insert", mutation.tid.relation, old_values, old_label)
                )
                builder.note_delete(mutation.tid)
                for edge in old_edges:
                    builder.note_edge_removed(edge)
            elif isinstance(mutation, Update):
                record = database.tuple(mutation.tid)
                old_values = dict(record.values)
                old_edges = _outgoing_edges(database, record)
                database.update(mutation.tid, mutation.values)
                undo.append(("restore", mutation.tid, old_values))
                builder.note_update(mutation.tid)
                new_edges = _outgoing_edges(database, record)
                old_keys = {edge.key: edge for edge in old_edges}
                new_keys = {edge.key: edge for edge in new_edges}
                for key, edge in old_keys.items():
                    if key not in new_keys:
                        builder.note_edge_removed(edge)
                for key, edge in new_keys.items():
                    if key not in old_keys:
                        builder.note_edge_added(edge)
            else:
                raise MutationError(
                    "unknown mutation type", got=type(mutation).__name__
                )
    except BaseException:
        # Undo in reverse order: later mutations may depend on earlier
        # ones (a batch inserts a target then tuples referencing it), so
        # reversing keeps every undo step consistent.  Enforcement is
        # switched off for the replay — each step restores state that
        # existed before the batch, and re-validating it could spuriously
        # fail (e.g. re-inserting a tuple whose dangling FK was legal on
        # an enforcement-off database), masking the original error.
        database.enforce_foreign_keys = False
        for action in reversed(undo):
            if action[0] == "delete":
                database.delete(action[1])
            elif action[0] == "insert":
                __, relation, values, label = action
                database.insert(relation, values, label=label)
            else:  # restore
                __, tid, values = action
                database.update(tid, values)
        for relation, keys in key_orders.items():
            database.restore_key_order(relation, keys)
        raise
    finally:
        database.enforce_foreign_keys = previous_enforcement
    return builder.changeset()


# ----------------------------------------------------------------------
# replay files (the CLI's ``--mutations``)
# ----------------------------------------------------------------------
def mutation_from_json(obj: Mapping, **where: object) -> Mutation:
    """Decode one mutation from its JSON object form.

    ``{"op": "insert", "relation": R, "values": {...}, "label": ...}``,
    ``{"op": "update", "relation": R, "key": [...], "values": {...}}`` or
    ``{"op": "delete", "relation": R, "key": [...]}``.

    ``where`` keyword context (``path=``, ``batch=``, ``record=``) is
    carried on the raised :class:`MutationFormatError` so a broken replay
    file can be located down to the failing record.
    """
    op = obj.get("op")
    try:
        if op == "insert":
            return Insert(
                obj["relation"], dict(obj["values"]), obj.get("label")
            )
        if op == "update":
            return Update(
                TupleId(obj["relation"], tuple(obj["key"])),
                dict(obj["values"]),
            )
        if op == "delete":
            return Delete(TupleId(obj["relation"], tuple(obj["key"])))
    except (KeyError, TypeError) as error:
        raise MutationFormatError(
            "malformed mutation object", op=op, problem=str(error), **where
        ) from None
    raise MutationFormatError("unknown mutation op", op=op, **where)


def load_mutation_batches(path: str) -> list[list[Mutation]]:
    """Load a replay file: a JSON list of batches (or one flat batch).

    Malformed files raise :class:`MutationFormatError` carrying the file
    path plus line/column/byte-offset (bad JSON) or batch/record indices
    (bad shape) — never a raw ``json.JSONDecodeError`` or ``KeyError``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise MutationFormatError(
                "mutation file is not valid JSON",
                path=path,
                line=error.lineno,
                column=error.colno,
                offset=error.pos,
            ) from None
    if not isinstance(data, list):
        raise MutationFormatError(
            "mutation file must hold a JSON list", path=path
        )
    if data and all(isinstance(item, Mapping) for item in data):
        data = [data]
    for position, batch in enumerate(data):
        if not isinstance(batch, list) or not all(
            isinstance(item, Mapping) for item in batch
        ):
            raise MutationFormatError(
                "each batch must be a JSON list of mutation objects",
                path=path,
                batch=position,
            )
    return [
        [
            mutation_from_json(item, path=path, batch=position, record=slot)
            for slot, item in enumerate(batch)
        ]
        for position, batch in enumerate(data)
    ]


# ----------------------------------------------------------------------
# durable WAL record codec
# ----------------------------------------------------------------------
# A net ``ChangeSet`` holds tuple identities only — replaying it needs
# the row payloads, and the final store order of the relation tail
# (added and replaced tuples interleave there, which the net delta does
# not record but index posting order observes).  A WAL record therefore
# carries the changeset skeleton *plus* post-state rows: ``appended``
# lists every added/replaced tuple in its actual store order.

def _tid_to_json(tid: TupleId) -> list:
    return [tid.relation, list(tid.key)]


def _tid_from_json(item) -> TupleId:
    relation, key = item
    return TupleId(relation, tuple(key))


def changeset_to_record(
    changeset: ChangeSet, database: Database, version: int
) -> dict:
    """Encode a just-applied changeset as a JSON-safe WAL record.

    Must be called *after* the batch was applied to ``database`` (the
    post-state supplies row values and tail positions) and *before* any
    further batch.  ``version`` is the engine version the batch
    produces.
    """
    tail = {}
    for tid in changeset.tuples_added + changeset.tuples_replaced:
        tail.setdefault(tid.relation, set()).add(tid.key)
    appended = []
    for relation in sorted(tail):
        members = tail[relation]
        for key in database.relation_key_order(relation):
            if key in members:
                row = database.tuple(TupleId(relation, key))
                appended.append(
                    [relation, list(key), dict(row.values), row.label]
                )
    updated = []
    for tid in changeset.tuples_updated:
        row = database.tuple(tid)
        updated.append([tid.relation, list(tid.key), dict(row.values)])
    return {
        "version": version,
        "added": [_tid_to_json(t) for t in changeset.tuples_added],
        "removed": [_tid_to_json(t) for t in changeset.tuples_removed],
        "updated": updated,
        "replaced": [_tid_to_json(t) for t in changeset.tuples_replaced],
        "appended": appended,
        "edges_added": [
            [_tid_to_json(e.referencing), _tid_to_json(e.referenced),
             e.foreign_key.name]
            for e in changeset.edges_added
        ],
        "edges_removed": [
            [_tid_to_json(e.referencing), _tid_to_json(e.referenced),
             e.foreign_key.name]
            for e in changeset.edges_removed
        ],
    }


def _edge_from_json(item, schema) -> EdgeChange:
    referencing = _tid_from_json(item[0])
    referenced = _tid_from_json(item[1])
    name = item[2]
    for foreign_key in schema.foreign_keys_from(referencing.relation):
        if foreign_key.name == name:
            return EdgeChange(referencing, referenced, foreign_key)
    raise WalError(
        "WAL record references an unknown foreign key",
        foreign_key=name,
        relation=referencing.relation,
    )


def changeset_from_record(record: Mapping, schema) -> ChangeSet:
    """Rebuild the net :class:`ChangeSet` skeleton from a WAL record."""
    try:
        return ChangeSet(
            tuples_added=tuple(
                _tid_from_json(t) for t in record["added"]
            ),
            tuples_removed=tuple(
                _tid_from_json(t) for t in record["removed"]
            ),
            tuples_updated=tuple(
                TupleId(rel, tuple(key)) for rel, key, __ in record["updated"]
            ),
            tuples_replaced=tuple(
                _tid_from_json(t) for t in record["replaced"]
            ),
            edges_added=tuple(
                _edge_from_json(e, schema) for e in record["edges_added"]
            ),
            edges_removed=tuple(
                _edge_from_json(e, schema) for e in record["edges_removed"]
            ),
            version=record["version"],
        )
    except (KeyError, TypeError, ValueError, IndexError) as error:
        raise WalError(
            "malformed WAL record", problem=f"{type(error).__name__}: {error}"
        ) from None


def apply_record(record: Mapping, database: Database) -> ChangeSet:
    """Apply one decoded WAL record to ``database`` and return its changeset.

    Replay trusts the log: the batch was fully validated when it first
    applied, so foreign-key enforcement is switched off for the duration
    (a net delta may be transiently inconsistent while its deletes land
    before its re-inserts).
    """
    changeset = changeset_from_record(record, database.schema)
    previous = database.enforce_foreign_keys
    database.enforce_foreign_keys = False
    try:
        for item in record["removed"]:
            database.delete(_tid_from_json(item))
        for item in record["replaced"]:
            database.delete(_tid_from_json(item))
        for relation, key, values in record["updated"]:
            database.update(TupleId(relation, tuple(key)), values)
        for relation, __, values, label in record["appended"]:
            database.insert(relation, values, label=label)
    except (KeyError, TypeError, ValueError, IntegrityError) as error:
        raise WalError(
            "WAL record does not apply to this database",
            problem=f"{type(error).__name__}: {error}",
        ) from None
    finally:
        database.enforce_foreign_keys = previous
    return changeset
