"""Dependency-tracked answer cache: LRU with precise invalidation.

Entries are keyed by the full query identity — query text, semantics,
limits, ``top_k``, pushdown mode and ranker — and record two dependency
sets alongside the materialised results:

* **footprint** — every tuple the entry's answers depend on: all tuples
  matched by the query's keywords plus all tuples appearing in answers.
  A changeset whose :func:`~repro.live.maintain.affected_tuples` set
  intersects the footprint drops the entry (structural changes taint
  whole components; the intersection test is what makes entries in
  untouched components survive).
* **fingerprint** — the per-keyword match tuple lists at store time.  A
  changeset can create or destroy keyword matches *outside* every
  cached component (a new matching tuple in a different component still
  changes the answer set), so after index maintenance the fingerprints
  of surviving entries are re-derived and compared.

Rankers that score against corpus-wide statistics (``uses_corpus_stats``
— e.g. TF–IDF) never enter the engine's cache at all; the *volatile*
entry flag remains for direct integrations that want cached-but-drop-
on-any-change semantics instead.

The cache never changes observable behaviour: a hit replays exactly the
results (and execution counters) the underlying run produced, queries
that raise are never cached, and the differential property tests assert
bit-identity against a rebuilt engine across mutation interleavings.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import AbstractSet, Hashable, Optional

from repro.core.matching import match_keywords
from repro.obs import metrics as obs_metrics
from repro.relational.database import TupleId
from repro.relational.index import InvertedIndex

__all__ = ["CacheStats", "CacheEntry", "ResultCache"]


@dataclass
class CacheStats:
    """Observability counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0
    evicted: int = 0

    def describe(self) -> str:
        return (
            f"hits {self.hits} misses {self.misses} stores {self.stores} "
            f"invalidated {self.invalidated} evicted {self.evicted}"
        )


@dataclass(frozen=True)
class CacheEntry:
    """One cached answer list plus its dependency record."""

    results: tuple
    stats: object  # ExecutionStats of the producing run (kept opaque)
    keywords: tuple[str, ...]
    footprint: frozenset[TupleId]
    fingerprint: tuple[tuple[TupleId, ...], ...]
    volatile: bool = False


class ResultCache:
    """LRU answer cache with changeset-driven invalidation.

    ``max_entries <= 0`` disables the cache entirely (every lookup
    misses, stores are dropped) — benchmarks use that to measure the
    cold path.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, CacheEntry] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable) -> Optional[CacheEntry]:
        """The live entry for a key, refreshed as most recently used."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            if obs_metrics.ENABLED:
                obs_metrics.REGISTRY.inc("result_cache.misses")
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if obs_metrics.ENABLED:
            obs_metrics.REGISTRY.inc("result_cache.hits")
        return entry

    def store(self, key: Hashable, entry: CacheEntry) -> None:
        if self.max_entries <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        self.stats.stores += 1
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evicted += 1
            evicted += 1
        if obs_metrics.ENABLED:
            obs_metrics.REGISTRY.inc("result_cache.stores")
            if evicted:
                obs_metrics.REGISTRY.inc("result_cache.evicted", evicted)

    def invalidate(
        self, affected: AbstractSet[TupleId], index: InvertedIndex
    ) -> int:
        """Drop exactly the entries a changeset may have made stale.

        ``affected`` is :func:`~repro.live.maintain.affected_tuples` for
        the changeset; ``index`` must already be maintained so keyword
        fingerprints re-derive against the post-change match sets.
        Returns the number of entries dropped.
        """
        dropped = []
        fingerprints: dict[tuple[str, ...], tuple] = {}
        for key, entry in self._entries.items():
            if entry.volatile or not affected.isdisjoint(entry.footprint):
                dropped.append(key)
                continue
            current = fingerprints.get(entry.keywords)
            if current is None:
                current = tuple(
                    match.tuple_ids
                    for match in match_keywords(index, entry.keywords)
                )
                fingerprints[entry.keywords] = current
            if current != entry.fingerprint:
                dropped.append(key)
        for key in dropped:
            del self._entries[key]
        self.stats.invalidated += len(dropped)
        if obs_metrics.ENABLED and dropped:
            obs_metrics.REGISTRY.inc("result_cache.invalidated", len(dropped))
        return len(dropped)

    def clear(self) -> None:
        """Drop every entry (rebuild, or an untracked external mutation)."""
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache(entries={len(self._entries)}, {self.stats.describe()})"
