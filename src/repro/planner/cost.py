"""The cost model: per-unit work estimates and online calibration.

Estimates are deliberately coarse — their only job is *ordering* and
*routing*, never correctness.  A ``PairPaths`` op sets up one
enumeration unit per (source, target) tuple pair; a ``NetworkGrowth``
op one unit per required-tuple assignment (the cross product of its
keywords' match lists).  Per-unit work scales with graph fan-out, so
the model multiplies unit counts by a fan-out factor taken from
:class:`~repro.relational.statistics.DatabaseStatistics` when
available, then by a learned per-kind calibration factor that observed
:class:`~repro.core.executor.ExecutionStats` keep converging toward
reality.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Sequence

from repro.core.plan import NetworkGrowth, PairPaths, QueryPlan, SingleScan

#: Environment escape hatch: set to any truthy value to force the
#: static planner everywhere, regardless of the ``adaptive`` flag.
STATIC_PLAN_ENV = "REPRO_STATIC_PLAN"

#: Fallback mean fan-out when no ``DatabaseStatistics`` is attached.
DEFAULT_FANOUT = 2.0

_FALSEY = frozenset({"", "0", "false", "no", "off"})

# Calibration factors are clamped so one wild observation can never
# invert the ordering of every future estimate.
_FACTOR_FLOOR = 0.01
_FACTOR_CEIL = 100.0


def resolve_adaptive(flag: Optional[bool] = None) -> bool:
    """Resolve the effective adaptive-planner switch.

    ``REPRO_STATIC_PLAN`` (truthy) always wins and forces static mode;
    otherwise an explicit ``flag`` is honoured; otherwise adaptive
    planning is on by default.
    """
    env = os.environ.get(STATIC_PLAN_ENV, "")
    if env.strip().lower() not in _FALSEY:
        return False
    if flag is None:
        return True
    return bool(flag)


@dataclass(frozen=True, slots=True)
class UnitEstimate:
    """Predicted work for one plan source op, aligned by position.

    ``units`` counts the enumeration units the op sets up (tuple pairs
    or required-tuple assignments), ``est_candidates`` the candidate
    connections those units are predicted to yield, and ``est_cost``
    the relative work of draining them.
    """

    kind: str  # "scan" | "paths" | "networks"
    units: int
    est_candidates: float
    est_cost: float


class CalibrationTable:
    """Per-kind observed/predicted candidate ratios, persisted via snapshot.

    One cell per unit kind (``paths`` / ``networks``): a running sum of
    predicted and observed candidate counts plus an update counter.
    ``factor(kind)`` is the clamped observed/predicted ratio, so it
    converges as more queries run and ``observe`` stays commutative —
    replaying the same observations in any order lands on the same
    table.
    """

    __slots__ = ("_cells",)

    def __init__(self) -> None:
        self._cells: Dict[str, Dict[str, float]] = {}

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def updates(self) -> int:
        """Total number of observations across every kind."""
        return int(sum(cell["count"] for cell in self._cells.values()))

    def observe(self, kind: str, predicted: float, observed: float) -> None:
        """Fold one (predicted, observed) candidate-count pair into ``kind``."""
        if predicted <= 0.0:
            return
        cell = self._cells.setdefault(
            kind, {"predicted": 0.0, "observed": 0.0, "count": 0.0})
        cell["predicted"] += float(predicted)
        cell["observed"] += max(0.0, float(observed))
        cell["count"] += 1.0

    def factor(self, kind: str) -> float:
        """Clamped observed/predicted ratio for ``kind`` (1.0 when unseen)."""
        cell = self._cells.get(kind)
        if cell is None or cell["predicted"] <= 0.0:
            return 1.0
        ratio = cell["observed"] / cell["predicted"]
        return min(_FACTOR_CEIL, max(_FACTOR_FLOOR, ratio))

    def to_dict(self) -> dict:
        """JSON-safe payload; keys sorted for byte-stable snapshots."""
        return {
            kind: {key: self._cells[kind][key]
                   for key in ("predicted", "observed", "count")}
            for kind in sorted(self._cells)
        }

    def load(self, payload: dict) -> None:
        """Merge a :meth:`to_dict` payload into this table (additive)."""
        for kind in sorted(payload):
            cell = payload[kind]
            target = self._cells.setdefault(
                kind, {"predicted": 0.0, "observed": 0.0, "count": 0.0})
            target["predicted"] += float(cell.get("predicted", 0.0))
            target["observed"] += float(cell.get("observed", 0.0))
            target["count"] += float(cell.get("count", 0.0))


class CostModel:
    """Estimates per-op work from posting lengths, fan-outs and calibration.

    ``statistics`` is a zero-argument provider (not a value) because the
    engine invalidates its :class:`DatabaseStatistics` on every live
    update; the model re-reads it per estimate, which is cheap.
    """

    __slots__ = ("index", "_statistics", "calibration")

    def __init__(self, index=None, statistics: Optional[Callable] = None,
                 calibration: Optional[CalibrationTable] = None) -> None:
        self.index = index
        self._statistics = statistics
        self.calibration = calibration or CalibrationTable()

    def fanout(self) -> float:
        """Mean FK fan-out across the schema, clamped to at least 1."""
        statistics = self._statistics() if self._statistics else None
        if statistics is None:
            return DEFAULT_FANOUT
        fanouts = statistics.fanouts()
        if not fanouts:
            return DEFAULT_FANOUT
        mean = sum(entry.mean for entry in fanouts.values()) / len(fanouts)
        return max(1.0, mean)

    # -- plan estimates -------------------------------------------------

    def estimate_plan(self, plan: QueryPlan) -> tuple:
        """One :class:`UnitEstimate` per ``plan.sources`` op, in order."""
        sizes = [len(match.tuple_ids) for match in plan.matches]
        fanout = self.fanout()
        estimates = []
        for op in plan.sources:
            estimates.append(self._estimate_op(op, sizes, fanout))
        return tuple(estimates)

    def annotate(self, plan: QueryPlan) -> QueryPlan:
        """Return ``plan`` with estimates attached (answers unaffected)."""
        if not plan.sources:
            return plan
        return replace(plan, estimates=self.estimate_plan(plan))

    def _estimate_op(self, op, sizes: Sequence[int],
                     fanout: float) -> UnitEstimate:
        if isinstance(op, SingleScan):
            units = sum(sizes[index] for index in op.indices)
            # Scans emit exactly their units; no calibration needed.
            return UnitEstimate("scan", units, float(units), float(units))
        if isinstance(op, PairPaths):
            units = sizes[op.first] * sizes[op.second]
            factor = self.calibration.factor("paths")
            candidates = units * fanout * factor
            return UnitEstimate("paths", units, candidates,
                                candidates * fanout)
        if isinstance(op, NetworkGrowth):
            units = 1
            for index in op.indices:
                units *= sizes[index]
            factor = self.calibration.factor("networks")
            candidates = units * factor
            spread = fanout ** max(1, len(op.indices) - 1)
            return UnitEstimate("networks", units, candidates,
                                candidates * spread)
        return UnitEstimate("scan", 0, 0.0, 0.0)

    # -- routing --------------------------------------------------------

    def query_cost(self, keywords: Sequence[str],
                   semantics: str = "and") -> float:
        """Predicted cost of one query, from posting lengths alone.

        Used to weigh batch dispatch *before* matching runs, so it only
        touches the cheap :meth:`InvertedIndex.posting_length` accessor.
        """
        if self.index is None:
            return 1.0
        lengths = [self.index.posting_length(keyword)
                   for keyword in keywords]
        if not lengths:
            return 1.0
        fanout = self.fanout()
        if semantics == "and" and any(length == 0 for length in lengths):
            return 1.0  # provably empty: match() short-circuits
        populated = [length for length in lengths if length > 0]
        if not populated:
            return 1.0
        cost = float(sum(populated))
        count = len(populated)
        if count == 2:
            cost += (populated[0] * populated[1] * fanout * fanout
                     * self.calibration.factor("paths"))
        elif count >= 3:
            if semantics == "or":
                pair_factor = self.calibration.factor("paths")
                for left in range(count):
                    for right in range(left + 1, count):
                        cost += (populated[left] * populated[right]
                                 * fanout * fanout * pair_factor)
            product = 1.0
            for length in populated:
                product *= length
            cost += (product * fanout ** (count - 1)
                     * self.calibration.factor("networks"))
        return max(cost, 1.0)
