"""Cost-based adaptive planning: estimates, calibration, and routing.

The planner layer turns statistics the engine already collects —
posting lengths, :class:`~repro.relational.statistics.DatabaseStatistics`
fan-outs, CSR distance rows, shard sizes and observed
:class:`~repro.core.executor.ExecutionStats` — into three decisions:

* **selectivity-ordered enumeration** — pushdown execution orders
  `PairPaths` / `NetworkGrowth` units by an admissible distance bound
  instead of plan order, so score lower bounds are reached sooner
  (see ``core/executor.py``);
* **cost-routed dispatch** — ``search_batch(jobs=N)`` assigns queries
  to workers by predicted cost (:func:`route_by_cost`) instead of
  contiguous chunking;
* **online recalibration** — observed candidate counts feed a
  :class:`CalibrationTable` persisted through the snapshot.

Everything here is advisory: answers stay bit-identical to the static
planner, which remains available via ``adaptive=False`` or the
``REPRO_STATIC_PLAN`` environment variable (:func:`resolve_adaptive`).
"""

from repro.planner.cost import (
    DEFAULT_FANOUT,
    STATIC_PLAN_ENV,
    CalibrationTable,
    CostModel,
    UnitEstimate,
    resolve_adaptive,
)
from repro.planner.dispatch import route_by_cost

__all__ = [
    "DEFAULT_FANOUT",
    "STATIC_PLAN_ENV",
    "CalibrationTable",
    "CostModel",
    "UnitEstimate",
    "resolve_adaptive",
    "route_by_cost",
]
