"""Cost-routed batch dispatch: deterministic LPT chunk assignment.

Round-robin contiguous chunking (the pool's historical behaviour)
balances *counts*, not *work*: a chunk of hot, high-fan-out queries
finishes long after a chunk of misses, and the batch waits for the
slowest worker.  :func:`route_by_cost` instead assigns queries to
workers greedily by descending predicted cost (longest-processing-time
scheduling), which is within 4/3 of the optimal makespan and — unlike
wall-clock-driven work stealing — fully deterministic.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["route_by_cost"]


def route_by_cost(costs: Sequence[float], jobs: int) -> List[List[int]]:
    """Partition query positions into per-worker chunks by predicted cost.

    Returns ``min(jobs, len(costs))`` chunks of input positions, each
    sorted ascending — the pool's error protocol requires every chunk
    to run its queries in input order so the first failing *position*
    is reported, exactly as contiguous chunking would.  Deterministic:
    ties break on position, then worker index.
    """
    count = min(max(1, jobs), len(costs))
    if count <= 1:
        return [list(range(len(costs)))] if costs else []
    order = sorted(range(len(costs)),
                   key=lambda position: (-costs[position], position))
    loads = [0.0] * count
    sizes = [0] * count
    chunks: List[List[int]] = [[] for _ in range(count)]
    for position in order:
        worker = min(range(count),
                     key=lambda index: (loads[index], sizes[index], index))
        chunks[worker].append(position)
        loads[worker] += max(0.0, float(costs[position]))
        sizes[worker] += 1
    for chunk in chunks:
        chunk.sort()
    return chunks
