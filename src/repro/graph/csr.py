"""Compiled CSR graph kernel: the integer-interned traversal core.

The pruned core in :mod:`repro.graph.fast_traversal` already avoids the
brute-force traversal's re-sorting and re-BFS-ing, but it still walks
:class:`~repro.relational.database.TupleId` objects: every expansion
hashes composite dataclass keys, every distance lookup is a dict probe,
and every visited test hashes a tuple id into a set.  This module
compiles the graph **once** into a flat integer form and runs the
kernels entirely on dense ints:

* **Interning.**  Tuple ids are interned to dense ints in
  ``_sort_key`` order, so comparing ints *is* comparing the
  deterministic expansion order the other cores sort by.
* **CSR adjacency.**  One ``array('i')`` of offsets and one of targets,
  plus a parallel edge-payload table (edge key strings and edge data
  dicts, shared with the underlying networkx graph) holding each node's
  incident edges pre-sorted in expansion order.
* **Array distance maps.**  BFS distance maps are flat ``array('i')``
  rows indexed by node int — the admissible-pruning lookup in the DFS
  inner loop becomes a C array index instead of a dict probe.
* **Zero-copy DFS.**  Path enumeration keeps one shared ``bytearray``
  of visited marks and one mutable path stack, pushing and undoing in
  place; per-expansion ``visited | {other}`` / ``path + [...]`` copies
  disappear.  Tuple ids and :class:`TuplePathStep` objects are
  materialised only at yield boundaries.
* **Incremental patching.**  An applied changeset patches the interning
  table and adjacency in place — removed nodes are tombstoned, new
  nodes appended, and only the touched nodes' adjacency is re-sorted
  into per-node side tables.  When the patched fraction crosses
  :attr:`FrozenGraph.compaction_threshold` the whole structure is
  recompiled (compaction), so a long-lived served engine never degrades
  into a pile of overrides.

The output contract is the one the differential tests enforce for every
core: same answers, same order, same
:class:`~repro.errors.SearchLimitError` budget points as
:mod:`repro.graph.traversal` and :mod:`repro.graph.fast_traversal`.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from typing import Iterator, Optional, Sequence

from repro.errors import QueryError, SearchLimitError
from repro.graph.data_graph import DataGraph
from repro.graph.traversal import TuplePathStep, _sort_key
from repro.graph.vector import get_backend
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.relational.database import TupleId

__all__ = [
    "CORES",
    "resolve_core",
    "FrozenGraph",
    "csr_enumerate_simple_paths",
    "csr_enumerate_joining_trees",
]

_UNREACHABLE = 1 << 30

#: The engine's traversal kernels, fastest first.  ``csr`` runs this
#: module's integer kernels, ``fast`` the pruned TupleId core, and
#: ``reference`` the brute-force networkx enumeration — all three are
#: bit-identical in answers, order and budget-error points.
CORES = ("csr", "fast", "reference")


def resolve_core(use_fast_traversal: bool = True, core: Optional[str] = None) -> str:
    """Map the legacy ``use_fast_traversal`` flag and the explicit
    ``core`` selector onto one kernel name.

    ``core`` wins when given; otherwise ``use_fast_traversal=True``
    selects the compiled CSR kernel (the default everywhere) and
    ``False`` the brute-force reference core.
    """
    if core is None:
        return "csr" if use_fast_traversal else "reference"
    if core not in CORES:
        raise QueryError(
            "unknown traversal core", got=core, expected=list(CORES)
        )
    return core


class FrozenGraph:
    """One :class:`DataGraph` compiled to flat integer arrays.

    The structure is immutable under queries and *patchable* under
    changesets: :meth:`apply_changeset` tombstones removed nodes,
    appends new ones and rebuilds only the touched adjacency rows (into
    per-node side tables, keeping the sorted expansion order), then
    compacts — recompiles — once the patched fraction crosses
    :attr:`compaction_threshold`.
    """

    #: Patched fraction (overridden + tombstoned + appended slots over
    #: capacity) above which a patch triggers recompilation.
    compaction_threshold = 0.25
    #: Never compact below this many nodes — recompiling a tiny graph
    #: costs less than tracking whether it is worth it.
    min_compaction_nodes = 64
    #: Most distance rows kept at once; each is O(capacity) ints.
    max_distance_maps = 1024
    #: Below this many members, the scalar per-member union over the
    #: memoized ``neighbour_ints`` rows beats the vector gather, which
    #: re-reads CSR slices every call (measured crossover ~512 on the
    #: large synthetic workload; joining-tree member sets stay far
    #: smaller, so trees take the scalar path in practice and tests
    #: lower this to force the vector one).
    vector_frontier_min = 512

    def __init__(
        self, data_graph: DataGraph, counters=None, vector: Optional[bool] = None
    ) -> None:
        self.data_graph = data_graph
        self._backend = get_backend(vector)
        self._vector_state = None
        #: Distance-row lookups served from cache / computed fresh.
        self.hits = 0
        self.misses = 0
        #: Times the structure was recompiled by a patch crossing the
        #: compaction threshold (observability for tests/benchmarks).
        self.compactions = 0
        #: Bumped on every (re)compilation.  A compile renumbers the
        #: dense ints, so structures keyed by node int (shard plans,
        #: snapshots) compare this stamp to detect staleness.
        self.compile_stamp = 0
        #: Where distance-row hit/miss counts are recorded.  The owning
        #: :class:`~repro.graph.fast_traversal.TraversalCache` passes
        #: itself, so ``cache.hits`` means "distance lookups reused"
        #: whichever core served them; standalone graphs count on their
        #: own attributes.
        self._counters = counters if counters is not None else self
        self._compile()

    @classmethod
    def from_parts(
        cls,
        data_graph: DataGraph,
        tids: Sequence[TupleId],
        offsets,
        targets,
        edge_keys: Sequence[str],
        edge_data: Sequence[dict],
        counters=None,
        vector: Optional[bool] = None,
    ) -> "FrozenGraph":
        """Assemble a compiled graph from pre-built flat structures.

        Two callers own such structures: the snapshot loader (the CSR
        sections of an engine snapshot, typically ``memoryview`` slices
        over an ``mmap``) and the shard partitioner (a shard's rows
        extracted from the global graph).  ``tids`` must be in
        ``_sort_key`` order — the invariant :meth:`_compile` establishes
        — and ``offsets``/``targets`` any int-indexable sequence with
        CSR semantics.  No compilation pass runs; ``data_graph`` is only
        consulted later, by incremental patching.
        """
        frozen = cls.__new__(cls)
        frozen.data_graph = data_graph
        frozen._backend = get_backend(vector)
        frozen._vector_state = None
        frozen.hits = 0
        frozen.misses = 0
        frozen.compactions = 0
        frozen.compile_stamp = 1
        frozen._counters = counters if counters is not None else frozen
        # Interning lookups and sort keys materialise on first demand:
        # ``tids`` may itself decode lazily from a snapshot section, and
        # a pure open() should not pay for tables only queries need.
        frozen._node_of = None
        frozen._tid_of = tids
        frozen._keys_cache = None
        frozen._ints_sorted = True
        frozen._offsets = offsets
        frozen._targets = targets
        # Kept as given: snapshot loaders pass lazily-decoding payload
        # tables, shard extraction passes plain lists.
        frozen._edge_keys = edge_keys
        frozen._edge_data = edge_data
        frozen._alive = bytearray(b"\x01") * len(tids)
        frozen._override = {}
        frozen._distances = OrderedDict()
        frozen._components = None
        frozen._neighbour_rows = {}
        return frozen

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def _compile(self) -> None:
        self.compile_stamp += 1
        graph = self.data_graph.graph
        tids = sorted(graph.nodes, key=_sort_key)
        node_of = {tid: index for index, tid in enumerate(tids)}
        self._node_of: Optional[dict] = node_of
        self._tid_of: list[Optional[TupleId]] = list(tids)
        self._keys_cache: Optional[list] = [_sort_key(tid) for tid in tids]
        #: True while live ints enumerate in ``_sort_key`` order (no
        #: appended nodes) — int comparison then *is* key comparison.
        self._ints_sorted = True
        offsets = array("i", [0])
        targets = array("i")
        edge_keys: list[str] = []
        edge_data: list[dict] = []
        for tid in tids:
            for other, key, data in self._sorted_entries(tid):
                targets.append(other)
                edge_keys.append(key)
                edge_data.append(data)
            offsets.append(len(targets))
        self._offsets = offsets
        self._targets = targets
        self._edge_keys = edge_keys
        self._edge_data = edge_data
        self._alive = bytearray(b"\x01") * len(tids)
        #: Patched adjacency rows: node int -> (targets, keys, datas),
        #: each row pre-sorted in expansion order.  Appended and
        #: tombstoned nodes always live here (their CSR slice is empty
        #: or stale); an entry shadows the node's CSR slice entirely.
        self._override: dict[int, tuple[list[int], list[str], list[dict]]] = {}
        #: LRU of cached BFS rows: hits refresh recency
        #: (``move_to_end``), eviction pops the least recent.
        self._distances: OrderedDict[int, array] = OrderedDict()
        self._components: Optional[array] = None
        self._neighbour_rows: dict[int, tuple[int, ...]] = {}
        self._vector_state = None

    @property
    def capacity(self) -> int:
        """Interned slots including tombstones (valid int ids are ``< capacity``)."""
        return len(self._tid_of)

    @property
    def _keys(self) -> list:
        """Per-node sort keys, derived lazily on restored graphs."""
        cached = self._keys_cache
        if cached is None:
            cached = self._keys_cache = [
                None if tid is None else _sort_key(tid) for tid in self._tid_of
            ]
        return cached

    def _node_map(self) -> dict:
        """The tuple-id → dense-int map, built lazily on restored graphs."""
        node_of = self._node_of
        if node_of is None:
            node_of = self._node_of = {
                tid: index
                for index, tid in enumerate(self._tid_of)
                if tid is not None
            }
        return node_of

    def live_count(self) -> int:
        return sum(self._alive)

    def node_of(self, tid: TupleId) -> Optional[int]:
        """Dense int of a tuple id, ``None`` when absent or tombstoned."""
        return self._node_map().get(tid)

    def tid_of(self, node: int) -> TupleId:
        tid = self._tid_of[node]
        assert tid is not None, "tombstoned node has no tuple id"
        return tid

    def nbytes(self) -> int:
        """Approximate total footprint of the compiled structure."""
        footprint = self.memory_footprint()
        return footprint["total"]

    def memory_footprint(self) -> dict[str, int]:
        """Footprint estimate by section, in bytes.

        ``arrays`` covers the flat CSR buffers and liveness bits,
        ``distances`` the cached BFS rows (plus the component labels),
        and ``payload`` the edge-payload table: the two per-entry list
        slots plus each *distinct* edge-key string and edge-data dict —
        payload objects are shared between the two CSR entries of one
        undirected edge (and with the underlying networkx graph), so
        they are counted once by identity, not per entry.
        """
        import sys

        arrays = (
            self._offsets.itemsize * len(self._offsets)
            + self._targets.itemsize * len(self._targets)
            + len(self._alive)
        )
        distances = 0
        for row in self._distances.values():
            distances += row.itemsize * len(row)
        if self._components is not None:
            distances += self._components.itemsize * len(self._components)
        payload = 16 * len(self._edge_keys)  # two list slots per entry
        # id() here only dedups *shared payload objects* for a byte
        # estimate that never reaches answers or snapshot bytes — the
        # count is identity-based by design and identical across runs.
        seen: set[int] = set()
        for key in self._edge_keys:
            if id(key) not in seen:  # repro-lint: disable=DET02
                seen.add(id(key))  # repro-lint: disable=DET02
                payload += sys.getsizeof(key)
        for data in self._edge_data:
            if id(data) not in seen:  # repro-lint: disable=DET02
                seen.add(id(data))  # repro-lint: disable=DET02
                payload += sys.getsizeof(data)
        return {
            "arrays": arrays,
            "distances": distances,
            "payload": payload,
            "total": arrays + distances + payload,
        }

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def _sorted_entries(self, tid: TupleId) -> list[tuple[int, str, dict]]:
        """One tuple's ``(neighbour int, edge key, edge data)`` entries in
        the deterministic expansion order — the single definition both
        compilation and row patching derive rows from.

        The sort key depends only on set membership, never on listing
        order, so the entries may come from the networkx multigraph or —
        on a snapshot engine that has not materialised it — straight
        from the database via ``incident_entries``, keeping WAL replay
        and restored-engine patching from paying a full graph build.
        """
        node_of = self._node_map()
        if getattr(self.data_graph, "materialized", True):
            entries = (
                (node_of[other], key, data)
                for __, other, key, data in self.data_graph.graph.edges(
                    tid, keys=True, data=True
                )
            )
        else:
            entries = (
                (node_of[other], key, data)
                for other, key, data in self.data_graph.incident_entries(tid)
            )
        return sorted(
            entries,
            key=lambda entry: (self._keys[entry[0]], entry[1]),
        )

    def _row(self, node: int) -> tuple[Sequence[int], Sequence[str], Sequence[dict], int, int]:
        """``(targets, keys, datas, start, end)`` for one node's expansion row."""
        override = self._override.get(node)
        if override is not None:
            row_targets, row_keys, row_datas = override
            return row_targets, row_keys, row_datas, 0, len(row_targets)
        return (
            self._targets,
            self._edge_keys,
            self._edge_data,
            self._offsets[node],
            self._offsets[node + 1],
        )

    def neighbour_ints(self, node: int) -> tuple[int, ...]:
        """Distinct neighbour ints of one node, in expansion order."""
        cached = self._neighbour_rows.get(node)
        if cached is None:
            row_targets, __, __, start, end = self._row(node)
            cached = tuple(dict.fromkeys(row_targets[start:end]))
            self._neighbour_rows[node] = cached
        return cached

    def _sort_ints(self, nodes) -> list[int]:
        """Sort node ints in ``_sort_key`` order (plain int order while
        no nodes were appended out of order)."""
        if self._ints_sorted:
            return sorted(nodes)
        return sorted(nodes, key=self._keys.__getitem__)

    def frontier_neighbour_ints(self, members) -> list[int]:
        """Distinct neighbours of a member set in expansion order,
        members excluded — the joining-tree growth step.

        On the vector backend this is one batched gather over the whole
        member set's CSR slices; ascending-int output equals expansion
        order only while :attr:`_ints_sorted` holds, so patched graphs
        with appended nodes take the scalar union, as do tiny sets.
        """
        backend = self._backend
        if (
            backend.vectorized
            and self._ints_sorted
            and len(members) >= self.vector_frontier_min
        ):
            if obs_metrics.ENABLED:
                obs_metrics.REGISTRY.inc("csr.frontier_batches")
                obs_metrics.REGISTRY.observe(
                    "csr.frontier_members", len(members)
                )
            return backend.frontier_neighbours(
                self._vector_adjacency(), members
            )
        neighbours: set[int] = set()
        for member in members:
            for other in self.neighbour_ints(member):
                if other not in members:
                    neighbours.add(other)
        return self._sort_ints(neighbours)

    # ------------------------------------------------------------------
    # distance rows and components
    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        """Name of the active vector backend (``numpy`` or ``stdlib``)."""
        return self._backend.name

    def release_vector_views(self) -> None:
        """Drop the backend's zero-copy views over the CSR buffers.

        On mmap-backed graphs the views pin the snapshot's exported
        buffers — ``mmap.close()`` raises ``BufferError`` while any
        live — so the engine releases them before closing its snapshot.
        They rebuild lazily on the next vector kernel call.
        """
        self._vector_state = None

    def _vector_adjacency(self):
        """The backend's (lazily built) view of the current adjacency."""
        state = self._vector_state
        if state is None:
            state = self._vector_state = self._backend.adjacency(
                self._offsets, self._targets, self._override, self.capacity
            )
        return state

    def _store_row(self, node: int, row: array) -> None:
        while len(self._distances) >= self.max_distance_maps:
            self._distances.popitem(last=False)  # least recently used
        self._distances[node] = row

    def _bfs_row_scalar(self, node: int) -> array:
        row = array("i", [_UNREACHABLE]) * self.capacity
        row[node] = 0
        frontier = [node]
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for at in frontier:
                row_targets, __, __, start, end = self._row(at)
                for position in range(start, end):
                    other = row_targets[position]
                    if row[other] == _UNREACHABLE:
                        row[other] = depth
                        next_frontier.append(other)
            frontier = next_frontier
        return row

    def _bfs_rows(self, sources: Sequence[int]) -> list[array]:
        """Fresh BFS rows for distinct sources, in the given order.

        Multi-source blocks run one bit-parallel sweep per
        ``max_sources_per_sweep`` chunk on the vector backend; single
        probes (and the stdlib fallback) run the scalar loop, which is
        faster for one source and defines the reference semantics.
        Rows are plain ``array('i')`` either way — the DFS inner loops
        index them, and cached state stays backend-independent.
        """
        backend = self._backend
        if not backend.vectorized or len(sources) < 2:
            return [self._bfs_row_scalar(node) for node in sources]
        adjacency = self._vector_adjacency()
        capacity = self.capacity
        rows: list[array] = []
        chunk = backend.max_sources_per_sweep
        for start in range(0, len(sources), chunk):
            block = sources[start : start + chunk]
            matrix = backend.multi_source_distances(
                adjacency, block, capacity, _UNREACHABLE
            )
            for position in range(len(block)):
                row = array("i")
                row.frombytes(matrix[position].tobytes())
                rows.append(row)
        return rows

    def distances(self, node: int) -> array:
        """Flat BFS distance row from ``node``; unreachable slots hold
        a value larger than any admissible budget."""
        cached = self._distances.get(node)
        if cached is not None:
            self._counters.hits += 1
            self._distances.move_to_end(node)
            return cached
        self._counters.misses += 1
        row = self._bfs_row_scalar(node)
        self._store_row(node, row)
        return row

    def distances_block(self, nodes: Sequence[int]) -> dict[int, array]:
        """Distance rows for many sources at once: ``{node: row}``.

        Cached rows are served (and LRU-refreshed) directly; the
        remaining sources share one frontier-at-a-time sweep on the
        vector backend instead of one BFS each.  Rows are identical to
        per-source :meth:`distances` calls on any backend.
        """
        result: dict[int, array] = {}
        missing: list[int] = []
        for node in dict.fromkeys(nodes):
            cached = self._distances.get(node)
            if cached is not None:
                self._counters.hits += 1
                self._distances.move_to_end(node)
                result[node] = cached
            else:
                self._counters.misses += 1
                missing.append(node)
        if missing:
            with obs_trace.span("csr.distances_block") as sweep_span:
                for node, row in zip(missing, self._bfs_rows(missing)):
                    self._store_row(node, row)
                    result[node] = row
                if sweep_span is not None:
                    sweep_span.tag(backend=self._backend.name)
                    sweep_span.add(sources=len(missing))
            if obs_metrics.ENABLED:
                obs_metrics.REGISTRY.inc("csr.distance_sweeps")
                obs_metrics.REGISTRY.inc("csr.distance_rows", len(missing))
                obs_metrics.REGISTRY.observe("csr.sweep_sources", len(missing))
        return result

    def components(self) -> array:
        """Connected-component id per node int (tombstones hold ``-1``).

        Recomputed lazily after a patch; two live nodes can reach each
        other exactly when their component ids are equal.
        """
        if self._components is not None:
            return self._components
        with obs_trace.span("csr.components", backend=self._backend.name):
            if self._backend.vectorized:
                matrix = self._backend.component_labels(
                    self._vector_adjacency(), self._alive, self.capacity
                )
                labels = array("i")
                labels.frombytes(matrix.tobytes())
                self._components = labels
                return labels
            labels = array("i", [-1]) * self.capacity
            alive = self._alive
            label = 0
            for start in range(self.capacity):
                if not alive[start] or labels[start] != -1:
                    continue
                labels[start] = label
                stack = [start]
                while stack:
                    at = stack.pop()
                    row_targets, __, __, lo, hi = self._row(at)
                    for position in range(lo, hi):
                        other = row_targets[position]
                        if labels[other] == -1:
                            labels[other] = label
                            stack.append(other)
                label += 1
            self._components = labels
            return labels

    def component_of(self, node: int) -> int:
        return self.components()[node]

    # ------------------------------------------------------------------
    # incremental patching
    # ------------------------------------------------------------------
    def _rebuild_row(self, node: int) -> None:
        """Re-derive one node's sorted adjacency row from the (already
        patched) data graph into the side table."""
        entries = self._sorted_entries(self._tid_of[node])
        self._override[node] = (
            [entry[0] for entry in entries],
            [entry[1] for entry in entries],
            [entry[2] for entry in entries],
        )

    def apply_changeset(self, changeset) -> int:
        """Patch the compiled structure from one applied changeset.

        Call *after* the data graph itself was patched
        (:func:`repro.live.maintain.apply_to_graph` runs first) — the
        touched adjacency rows are re-read from it.  Returns the number
        of distance rows dropped; bumps :attr:`compactions` when the
        patch crossed the threshold and triggered a recompile.
        """
        node_map = self._node_map()
        removed = [
            node
            for tid in changeset.tuples_removed
            if (node := node_map.pop(tid, None)) is not None
        ]
        for node in removed:
            self._alive[node] = 0
            self._tid_of[node] = None
            self._override[node] = ([], [], [])
        appended = []
        for tid in changeset.tuples_added:
            if tid in node_map:
                continue
            node = self.capacity
            node_map[tid] = node
            self._tid_of.append(tid)
            self._keys.append(_sort_key(tid))
            self._alive.append(1)
            self._override[node] = ([], [], [])
            appended.append(node)
        if appended:
            self._ints_sorted = False
        touched: set[int] = set()
        for edge in (*changeset.edges_added, *changeset.edges_removed):
            for tid in (edge.referencing, edge.referenced):
                node = node_map.get(tid)
                if node is not None and self._alive[node]:
                    touched.add(node)
        for node in touched:
            self._rebuild_row(node)
        changed = set(removed) | set(appended) | touched
        if not changed:
            return 0
        self._components = None
        self._vector_state = None  # override table / liveness changed
        for node in changed:
            self._neighbour_rows.pop(node, None)
        # A distance row is global within its source's old component:
        # drop it when its source changed or any changed node was
        # reachable in it (appended nodes lie beyond the row and their
        # old-component links are covered by the edge endpoints).
        stale = [
            source
            for source, row in self._distances.items()
            if source in changed
            or any(
                node < len(row) and row[node] != _UNREACHABLE
                for node in changed
            )
        ]
        for source in stale:
            del self._distances[source]
        if (
            self.capacity >= self.min_compaction_nodes
            and len(self._override) > self.compaction_threshold * self.capacity
        ):
            with obs_trace.span("csr.compact", capacity=self.capacity):
                self._compile()
            self.compactions += 1
            if obs_metrics.ENABLED:
                obs_metrics.REGISTRY.inc("csr.compactions")
        return len(stale)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenGraph(capacity={self.capacity}, live={self.live_count()}, "
            f"edges={len(self._targets)}, patched={len(self._override)}, "
            f"distances={len(self._distances)}, compactions={self.compactions})"
        )


def _private_frozen(data_graph: DataGraph, cache) -> tuple[FrozenGraph, object]:
    """Resolve the compiled graph for one kernel call.

    A cache built on another graph would serve a stale compilation;
    fall back to a private one rather than answer wrongly (the same
    discipline the fast core applies to its TraversalCache).
    """
    if cache is not None and cache.data_graph is data_graph:
        return cache.frozen(), cache
    return FrozenGraph(data_graph), None


def csr_enumerate_simple_paths(
    data_graph: DataGraph,
    source: TupleId,
    target: TupleId,
    max_edges: int,
    max_paths: Optional[int] = None,
    cache=None,
) -> Iterator[list[TuplePathStep]]:
    """Drop-in replacement for ``enumerate_simple_paths`` on the compiled core.

    Same paths, same order, same budget semantics as both other cores.
    The forward DFS runs on ints with a shared visited ``bytearray``
    and an in-place path stack (push/undo, no per-expansion copies);
    the backward BFS bound is an array lookup.  ``cache`` is the
    engine's :class:`~repro.graph.fast_traversal.TraversalCache` — its
    compiled :class:`FrozenGraph` and enumeration counters are used
    when it matches ``data_graph``.
    """
    if max_edges < 1:
        return
    frozen, counters = _private_frozen(data_graph, cache)
    src = frozen.node_of(source)
    dst = frozen.node_of(target)
    if src is None or dst is None:
        return

    to_target = frozen.distances(dst)
    shortest = to_target[src] if src < len(to_target) else _UNREACHABLE
    if shortest > max_edges:
        return

    tid_of = frozen._tid_of
    offsets = frozen._offsets
    targets = frozen._targets
    edge_keys = frozen._edge_keys
    edge_data = frozen._edge_data
    override = frozen._override
    has_override = bool(override)
    visited = bytearray(frozen.capacity)
    produced = 0

    for depth in range(max(1, shortest), max_edges + 1):
        # One in-order DFS per depth (iterative deepening keeps shorter
        # paths first).  The active level lives in locals — ``cursor``/
        # ``limit`` walk the current expansion row ``(row_t, row_k,
        # row_d)``, which is the flat CSR slice or a patched side-table
        # row — and suspended levels sit on one stack, so the per-edge
        # inner loop touches no Python object but the arrays themselves.
        path_nodes = [src]
        visited[src] = 1
        row = override.get(src) if has_override else None
        if row is None:
            row_t, row_k, row_d = targets, edge_keys, edge_data
            cursor, limit = offsets[src], offsets[src + 1]
        else:
            row_t, row_k, row_d = row
            cursor, limit = 0, len(row_t)
        suspended: list[tuple] = []
        remaining = depth - 1
        while True:
            if cursor >= limit:
                if not suspended:
                    break
                cursor, limit, row_t, row_k, row_d = suspended.pop()
                visited[path_nodes.pop()] = 0
                remaining += 1
                continue
            other = row_t[cursor]
            cursor += 1
            if visited[other]:
                continue
            if remaining:
                if to_target[other] > remaining:
                    continue  # cannot reach the target within this depth
                if other == dst:
                    continue  # simple paths stop at the target
                # Suspend this level; ``cursor - 1`` in the suspended
                # frame pins the edge taken to the next level, so the
                # yield below can rebuild every step without per-push
                # payload copies.
                suspended.append((cursor, limit, row_t, row_k, row_d))
                path_nodes.append(other)
                visited[other] = 1
                row = override.get(other) if has_override else None
                if row is None:
                    row_t, row_k, row_d = targets, edge_keys, edge_data
                    cursor, limit = offsets[other], offsets[other + 1]
                else:
                    row_t, row_k, row_d = row
                    cursor, limit = 0, len(row_t)
                remaining -= 1
                continue
            if other != dst:
                continue
            produced += 1
            if max_paths is not None and produced > max_paths:
                raise SearchLimitError(
                    "path enumeration exceeded budget",
                    max_paths=max_paths,
                    source=str(source),
                    target=str(target),
                )
            if counters is not None:
                counters.paths_enumerated += 1
            steps = []
            for level, frame in enumerate(suspended):
                taken = frame[0] - 1
                steps.append(
                    TuplePathStep(
                        tid_of[path_nodes[level]],
                        tid_of[path_nodes[level + 1]],
                        frame[3][taken],
                        frame[4][taken],
                    )
                )
            steps.append(
                TuplePathStep(
                    tid_of[path_nodes[-1]],
                    tid_of[other],
                    row_k[cursor - 1],
                    row_d[cursor - 1],
                )
            )
            yield steps
        visited[src] = 0


def csr_enumerate_joining_trees(
    data_graph: DataGraph,
    required: Sequence[TupleId],
    max_tuples: int,
    max_results: Optional[int] = None,
    cache=None,
) -> Iterator[frozenset[TupleId]]:
    """Drop-in replacement for ``enumerate_joining_trees`` on the compiled core.

    Identical growth order and budget behaviour; the frontier grows
    frozensets of *ints* (cheap hashing, int-order sorting while the
    interning is dense) and distance pruning reads flat array rows.
    Tuple ids reappear only at yield boundaries.
    """
    required = list(dict.fromkeys(required))
    if not required:
        return
    frozen, counters = _private_frozen(data_graph, cache)
    req: list[int] = []
    for tid in required:
        node = frozen.node_of(tid)
        if node is None:
            return
        req.append(node)
    components = frozen.components()
    first_component = components[req[0]]
    if any(components[node] != first_component for node in req):
        return  # some required pair is disconnected: no joining tree

    distance_rows = [frozen.distances(node) for node in req]
    tid_of = frozen._tid_of
    ints_sorted = frozen._ints_sorted

    produced = 0
    seen: set[frozenset[int]] = set()
    frontier: list[frozenset[int]] = [frozenset([req[0]])]
    required_set = frozenset(req)

    if ints_sorted:
        frontier_key = sorted
    else:
        keys = frozen._keys
        frontier_key = lambda current: sorted(keys[node] for node in current)

    while frontier:
        next_frontier: set[frozenset[int]] = set()
        for current in sorted(frontier, key=frontier_key):
            if required_set <= current:
                if current not in seen:
                    seen.add(current)
                    produced += 1
                    if max_results is not None and produced > max_results:
                        raise SearchLimitError(
                            "joining tree enumeration exceeded budget",
                            max_results=max_results,
                        )
                    if counters is not None:
                        counters.trees_enumerated += 1
                    yield frozenset(tid_of[node] for node in current)
            if len(current) >= max_tuples:
                continue
            missing = required_set - current
            budget = max_tuples - len(current)
            if missing:
                feasible = True
                for index, node in enumerate(req):
                    if node not in missing:
                        continue
                    row = distance_rows[index]
                    best = min(row[member] for member in current)
                    if best > budget:
                        feasible = False
                        break
                if not feasible:
                    continue
            for other in frozen.frontier_neighbour_ints(current):
                next_frontier.add(current | {other})
        frontier = list(next_frontier)
