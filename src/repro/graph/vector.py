"""Vector backend shim: frontier-at-a-time kernels over flat CSR buffers.

The compiled graph (:mod:`repro.graph.csr`) stores adjacency as flat
``array('i')`` buffers (or ``memoryview`` slices over a snapshot mmap).
This module is the *only* place that touches numpy: it selects a
backend **once, at import time** and exposes whole-frontier operations
— multi-source BFS distance blocks, component labelling, batched
neighbour expansion — that :class:`~repro.graph.csr.FrozenGraph` calls
instead of its scalar loops whenever the backend is vectorized.

Backend selection and the fallback contract:

* ``numpy`` importable (and the platform little-endian) → the
  :class:`NumpyBackend`, whose kernels wrap the CSR buffers in
  **zero-copy** ``np.frombuffer`` views — mmap-backed snapshot sections
  included — and expand whole frontier slices per BFS level.
* numpy missing, a big-endian platform, or ``REPRO_NO_VECTOR`` set in
  the environment → the :class:`ScalarBackend` stub; every caller then
  runs its pure-stdlib ``array``/``bytearray`` loop.  The stdlib path
  is the *reference semantics*, so both backends are bit-identical by
  construction: the vector kernels are checked against it by the
  differential and Hypothesis gates.

``engine(vector=False)`` / ``FrozenGraph(vector=False)`` force the
scalar backend per engine for testing; ``vector=True`` demands the
vectorized one and fails loudly when it is unavailable.

The multi-source BFS is bit-parallel: each BFS level gathers the whole
frontier's CSR slices in one shot (``repeat``/``cumsum`` index
arithmetic), ORs per-source reachability bitmasks into the neighbours
(sort + ``bitwise_or.reduceat``), and recovers every (source, node)
depth at the end from the mask history — the number of level snapshots
in which a bit stayed unset *is* its BFS depth.  One sweep over the
edge set serves up to 64 sources per mask word.
"""

from __future__ import annotations

import os
import sys
from typing import Optional, Sequence

from repro.errors import QueryError

__all__ = [
    "BACKEND",
    "NumpyBackend",
    "ScalarBackend",
    "VectorAdjacency",
    "get_backend",
]

#: Environment variable forcing the stdlib fallback (checked at import
#: time, like the numpy import itself — it simulates "numpy absent").
ENV_FLAG = "REPRO_NO_VECTOR"


class VectorAdjacency:
    """Zero-copy numpy views of one compiled graph's adjacency.

    ``offsets``/``targets`` wrap the CSR buffers in place (``array('i')``
    or snapshot ``memoryview`` alike — no bytes are copied, which is
    what keeps mmap-backed engines mmap-backed).  Patched graphs carry
    the override side-table as a node-indexed boolean mask plus per-node
    target arrays, so the gather can mix flat slices with patched rows.
    """

    __slots__ = ("offsets", "targets", "override_mask", "override_targets")

    def __init__(self, offsets, targets, override_mask, override_targets):
        self.offsets = offsets
        self.targets = targets
        self.override_mask = override_mask
        self.override_targets = override_targets


class ScalarBackend:
    """The pure-stdlib fallback: no vector kernels, only identity.

    Callers check :attr:`vectorized` and run their own ``array``/
    ``bytearray`` loops — the reference semantics every vector kernel
    must match bit for bit.
    """

    name = "stdlib"
    vectorized = False
    np = None


class NumpyBackend:
    """Whole-frontier CSR kernels on numpy views."""

    name = "numpy"
    vectorized = True

    #: Sources per multi-source sweep; bounds the transient bitmask
    #: width (2 uint64 words) and the per-sweep ``(chunk, capacity)``
    #: distance matrix.  Callers chunk larger blocks.
    max_sources_per_sweep = 128

    def __init__(self, np_module) -> None:
        self.np = np_module

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def adjacency(self, offsets, targets, override, capacity) -> VectorAdjacency:
        """Wrap one graph's CSR buffers (and override rows) zero-copy.

        ``capacity`` may exceed ``len(offsets) - 1``: appended nodes
        have no flat slice and always carry an override row.
        """
        np = self.np
        offsets_view = np.frombuffer(offsets, dtype=np.intc)
        targets_view = (
            np.frombuffer(targets, dtype=np.intc)
            if len(targets)
            else np.empty(0, dtype=np.intc)
        )
        override_mask = None
        override_targets = None
        if override:
            override_mask = np.zeros(capacity, dtype=bool)
            override_mask[list(override)] = True
            override_targets = {
                node: np.asarray(row_targets, dtype=np.intc)
                for node, (row_targets, __, ___) in override.items()
            }
        return VectorAdjacency(
            offsets_view, targets_view, override_mask, override_targets
        )

    # ------------------------------------------------------------------
    # frontier gather
    # ------------------------------------------------------------------
    def _gather(self, adjacency: VectorAdjacency, frontier):
        """All neighbour ints of a frontier slice, with owner positions.

        Returns ``(neighbours, owners)`` where ``owners[i]`` is the
        *position within* ``frontier`` whose expansion produced
        ``neighbours[i]``.  Level semantics are set-based, so the
        ordering of the concatenated override rows is irrelevant.
        """
        np = self.np
        mask = adjacency.override_mask
        if mask is None:
            clean = frontier
            clean_positions = None
        else:
            overridden = mask[frontier]
            clean = frontier[~overridden]
            clean_positions = np.flatnonzero(~overridden)
        starts = adjacency.offsets[clean]
        counts = adjacency.offsets[clean + 1] - starts
        total = int(counts.sum())
        edge_index = (
            np.arange(total, dtype=np.int64)
            + np.repeat(starts.astype(np.int64), counts)
            - np.repeat(np.cumsum(counts, dtype=np.int64) - counts, counts)
        )
        neighbours = adjacency.targets[edge_index]
        if clean_positions is None:
            owners = np.repeat(
                np.arange(frontier.size, dtype=np.int64), counts
            )
            return neighbours, owners
        parts = [neighbours]
        owner_parts = [np.repeat(clean_positions, counts)]
        for position in np.flatnonzero(mask[frontier]):
            row = adjacency.override_targets[int(frontier[position])]
            if row.size:
                parts.append(row)
                owner_parts.append(
                    np.full(row.size, position, dtype=np.int64)
                )
        return np.concatenate(parts), np.concatenate(owner_parts)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def multi_source_distances(
        self, adjacency: VectorAdjacency, sources: Sequence[int],
        capacity: int, unreachable: int
    ):
        """One bit-parallel BFS sweep: a ``(len(sources), capacity)``
        int32 matrix of distance rows, row ``i`` from ``sources[i]``.

        ``sources`` must be distinct and ``len(sources) <=``
        :attr:`max_sources_per_sweep`.
        """
        np = self.np
        count = len(sources)
        if count == 0 or capacity == 0:
            return np.full((count, capacity), unreachable, dtype=np.int32)
        src = np.asarray(sources, dtype=np.int64)
        index = np.arange(count)
        words = (count + 63) // 64
        reached = np.zeros((capacity, words), dtype=np.uint64)
        start_bits = np.zeros((count, words), dtype=np.uint64)
        start_bits[index, index >> 6] = np.uint64(1) << (
            index & 63
        ).astype(np.uint64)
        order = np.argsort(src, kind="stable")
        frontier = src[order]
        frontier_bits = start_bits[order]
        reached[frontier] |= frontier_bits
        # Depth falls out of the mask history instead of per-level row
        # scatter: bit (n, s) is set exactly once, at source s's BFS
        # depth d, so counting the level snapshots in which it was still
        # unset yields d.  Accumulating that count is two full-matrix
        # passes per level (unpack + add) with no fancy indexing — far
        # cheaper than writing depths into the touched columns each
        # level.  uint16 bounds the diameter at 65535, far beyond any
        # graph whose capacity fits in an int32 CSR.
        acc = np.zeros((capacity, count), dtype=np.uint16)
        while frontier.size:
            acc += 1 - np.unpackbits(
                reached.view(np.uint8), axis=1, bitorder="little"
            )[:, :count]
            neighbours, owners = self._gather(adjacency, frontier)
            if neighbours.size == 0:
                break
            values = frontier_bits[owners]
            order = np.argsort(neighbours, kind="stable")
            sorted_neighbours = neighbours[order]
            boundaries = np.flatnonzero(
                np.r_[True, sorted_neighbours[1:] != sorted_neighbours[:-1]]
            )
            merged = np.bitwise_or.reduceat(values[order], boundaries, axis=0)
            distinct = sorted_neighbours[boundaries].astype(np.int64)
            new = merged & ~reached[distinct]
            advanced = new.any(axis=1)
            touched = distinct[advanced]
            if touched.size == 0:
                break
            new = new[advanced]
            reached[touched] |= new
            frontier_bits = new
            frontier = touched
        final = np.unpackbits(
            reached.view(np.uint8), axis=1, bitorder="little"
        )[:, :count]
        rows = np.where(
            final.T != 0, acc.T.astype(np.int32), np.int32(unreachable)
        )
        return np.ascontiguousarray(rows)

    def component_labels(self, adjacency: VectorAdjacency, alive, capacity):
        """Component id per node (``-1`` for tombstones), labelled in
        ascending seed order — exactly the scalar sweep's labelling."""
        np = self.np
        labels = np.full(capacity, -1, dtype=np.int32)
        if capacity == 0:
            return labels
        live = np.frombuffer(alive, dtype=np.uint8).astype(bool)
        label = 0
        seed_floor = 0
        while True:
            pending = np.flatnonzero(
                (labels[seed_floor:] == -1) & live[seed_floor:]
            )
            if pending.size == 0:
                return labels
            seed = seed_floor + int(pending[0])
            seed_floor = seed + 1
            labels[seed] = label
            frontier = np.array([seed], dtype=np.int64)
            while frontier.size:
                neighbours, __ = self._gather(adjacency, frontier)
                if neighbours.size == 0:
                    break
                distinct = np.unique(neighbours).astype(np.int64)
                fresh = distinct[labels[distinct] == -1]
                if fresh.size == 0:
                    break
                labels[fresh] = label
                frontier = fresh
            label += 1

    def frontier_neighbours(
        self, adjacency: VectorAdjacency, members: Sequence[int]
    ) -> list[int]:
        """Distinct neighbours of a member set, ascending, members
        excluded — one gather for the whole set instead of a per-member
        union (valid while live ints enumerate in sort-key order)."""
        np = self.np
        frontier = np.asarray(sorted(members), dtype=np.int64)
        neighbours, __ = self._gather(adjacency, frontier)
        if neighbours.size == 0:
            return []
        distinct = np.unique(neighbours)
        outside = distinct[np.isin(distinct, frontier, invert=True)]
        return outside.tolist()


def _select_backend():
    """Import-time backend choice; never raises."""
    flag = os.environ.get(ENV_FLAG, "").strip().lower()
    if flag not in ("", "0", "false"):
        return ScalarBackend()
    if sys.byteorder != "little":  # pragma: no cover - exotic platform
        # The bit-parallel BFS unpacks uint64 masks as little-endian
        # bytes; scalar semantics are identical, just slower.
        return ScalarBackend()
    try:
        import numpy
    except ImportError:
        return ScalarBackend()
    return NumpyBackend(numpy)


#: The process-wide backend, selected once at import time.
BACKEND = _select_backend()


def get_backend(vector: Optional[bool] = None):
    """Resolve a per-engine ``vector=`` override onto a backend.

    ``None`` takes the import-time default, ``False`` forces the stdlib
    fallback, ``True`` demands the vectorized backend and raises
    :class:`~repro.errors.QueryError` when it is unavailable (numpy
    missing or :data:`ENV_FLAG` set) instead of silently degrading.
    """
    if vector is False:
        return ScalarBackend()
    if vector is True and not BACKEND.vectorized:
        raise QueryError(
            "vectorized backend unavailable",
            reason="numpy not importable or REPRO_NO_VECTOR set",
            backend=BACKEND.name,
        )
    return BACKEND
