"""Graph views over schemas and database instances.

* :mod:`repro.graph.schema_graph` — relations as nodes, foreign keys as
  edges annotated with the cardinality they implement;
* :mod:`repro.graph.data_graph` — tuples as nodes (the BANKS view of a
  database) plus the *conceptual* collapse that removes middle-relation
  tuples;
* :mod:`repro.graph.traversal` — bounded enumeration of paths and joining
  trees used by the search engines;
* :mod:`repro.graph.fast_traversal` — the pruned, cache-backed TupleId
  core producing identical answers;
* :mod:`repro.graph.csr` — the compiled integer-interned CSR kernel
  (the engine's default core), bit-identical again and patched in place
  by live updates.
"""

from repro.graph.schema_graph import SchemaGraph
from repro.graph.csr import FrozenGraph, resolve_core
from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import TraversalCache

__all__ = [
    "DataGraph",
    "FrozenGraph",
    "SchemaGraph",
    "TraversalCache",
    "resolve_core",
]
