"""Graph views over schemas and database instances.

* :mod:`repro.graph.schema_graph` — relations as nodes, foreign keys as
  edges annotated with the cardinality they implement;
* :mod:`repro.graph.data_graph` — tuples as nodes (the BANKS view of a
  database) plus the *conceptual* collapse that removes middle-relation
  tuples;
* :mod:`repro.graph.traversal` — bounded enumeration of paths and joining
  trees used by the search engines.
"""

from repro.graph.schema_graph import SchemaGraph
from repro.graph.data_graph import DataGraph

__all__ = ["DataGraph", "SchemaGraph"]
