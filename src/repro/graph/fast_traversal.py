"""Pruned traversal core: the fast path behind the search engines.

:mod:`repro.graph.traversal` enumerates by brute force — iterative
deepening that expands every branch to the depth budget, plus a fresh
networkx BFS per required tuple per joining-tree call.  Exhaustive and
deterministic, but every query pays the full cost again.

This module keeps the *exact* output contract (same answers, same order,
same :class:`~repro.errors.SearchLimitError` budget behaviour — the
differential tests in ``tests/graph/test_fast_traversal.py`` assert it)
while cutting the work three ways:

* **Bidirectional pruning.**  Path enumeration still runs a forward DFS
  from the source (that is what fixes the output order), but a backward
  BFS from the target bounds it: a branch standing at ``v`` with ``r``
  edges of budget left is cut unless ``dist(v, target) <= r``.  The DFS
  only ever walks the corridor of tuples that lie on some admissible
  path, instead of the whole component.
* **Cached per-tuple adjacency.**  The brute-force DFS re-reads and
  re-sorts ``graph.edges(v)`` at every visit; :class:`TraversalCache`
  materialises each tuple's sorted expansion list once and serves it to
  every later visit, depth pass and query.
* **Cached distance maps.**  Joining-tree growth needs a distance map
  per required tuple; the brute-force version recomputes them for every
  keyword-tuple assignment even though assignments overlap heavily.
  The cache computes each map once per tuple and shares it across
  assignments, queries and batches.

One :class:`TraversalCache` is owned by
:class:`~repro.core.engine.KeywordSearchEngine` and dropped by
``rebuild()``; the cache never observes database mutations on its own.
Callers that mutate tuples either rebuild, or route mutations through
``engine.apply`` — the live-update subsystem (:mod:`repro.live`) then
calls :meth:`TraversalCache.apply_changeset`, which drops only the
dict-backed entries in touched connected components and patches the
compiled CSR graph in place.  :meth:`TraversalCache.invalidate_tuples`
remains the tuple-id-only external API; lacking edge deltas, it drops
the compiled graph instead of patching it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import SearchLimitError
from repro.graph.data_graph import DataGraph
from repro.graph.traversal import TuplePathStep, _sort_key
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.relational.database import TupleId

__all__ = [
    "SharedStream",
    "TraversalCache",
    "fast_enumerate_simple_paths",
    "fast_enumerate_joining_trees",
]

_UNREACHABLE = 1 << 30


class SharedStream:
    """Fan one single-pass enumeration out to many consumers.

    Wraps a generator factory; the generator is started lazily on first
    demand and advanced only as far as the furthest consumer has read.
    Every consumer replays the buffered prefix in order, so interleaved
    readers (several queries of a batch walking the same enumeration
    sub-plan) each see the full stream while the underlying enumeration
    runs **once**.  A consumer that stops early (top-k pushdown) leaves
    the stream partially materialised; a later consumer extends it.

    Budget errors are part of the stream: if the source raises (e.g.
    :class:`~repro.errors.SearchLimitError`), the exception is recorded
    after the items already produced and re-raised at the same position
    for every consumer — sharing never changes what any one consumer
    observes.
    """

    __slots__ = (
        "_factory",
        "_source",
        "_buffer",
        "_error",
        "_exhausted",
        "consumers",
    )

    def __init__(self, factory) -> None:
        self._factory = factory
        self._source = None
        self._buffer: list = []
        self._error: Optional[BaseException] = None
        self._exhausted = False
        #: Consumers served so far (observability for benchmarks).
        self.consumers = 0

    @property
    def produced(self) -> int:
        """Items materialised from the underlying enumeration so far."""
        return len(self._buffer)

    def _advance(self) -> bool:
        """Pull one more item from the source; False when finished."""
        if self._exhausted:
            if self._error is not None:
                raise self._error
            return False
        if self._source is None:
            self._source = self._factory()
        try:
            self._buffer.append(next(self._source))
        except StopIteration:
            self._exhausted = True
            self._source = None
            return False
        except BaseException as error:  # replayed for every consumer
            self._exhausted = True
            self._source = None
            self._error = error
            raise
        return True

    def __iter__(self):
        self.consumers += 1
        position = 0
        while True:
            if position < len(self._buffer):
                yield self._buffer[position]
                position += 1
                continue
            if not self._advance():
                return


class TraversalCache:
    """Per-tuple adjacency and distance maps, shared across queries.

    All structures are derived lazily from one :class:`DataGraph` and
    stay valid exactly as long as that graph does.  ``invalidate()``
    drops everything; the engine calls it (via replacement) on
    ``rebuild()``.  ``hits`` / ``misses`` count distance-map lookups so
    benchmarks and tests can observe reuse.
    """

    #: Most distance maps kept at once; each is O(nodes), so this caps the
    #: cache at O(nodes * max_distance_maps) for a long-lived served engine.
    max_distance_maps = 1024

    def __init__(
        self, data_graph: DataGraph, vector: Optional[bool] = None
    ) -> None:
        self.data_graph = data_graph
        #: Vector-backend override threaded into the compiled CSR graph
        #: (``None`` = import-time default, ``False`` = force stdlib).
        self.vector = vector
        self._expansions: dict[TupleId, tuple] = {}
        self._neighbours: dict[TupleId, tuple[TupleId, ...]] = {}
        self._distances: OrderedDict[TupleId, dict[TupleId, int]] = OrderedDict()
        self._frozen = None
        self.hits = 0
        self.misses = 0
        #: Enumeration counters: paths / joining trees yielded through this
        #: cache.  Benchmarks compare them between pushdown and full runs
        #: to observe how much enumeration early termination skipped.
        self.paths_enumerated = 0
        self.trees_enumerated = 0

    def invalidate(self) -> None:
        """Drop every cached structure (call after graph changes)."""
        self._expansions.clear()
        self._neighbours.clear()
        self._distances.clear()
        self._frozen = None

    def frozen(self):
        """The compiled :class:`~repro.graph.csr.FrozenGraph` of this
        cache's data graph, built lazily on first demand.

        The CSR kernels run on it; it lives here so one compilation is
        shared by every query, batch and stream the engine answers, and
        so the live-update path (:meth:`apply_changeset`) can patch it
        in place instead of recompiling.
        """
        if self._frozen is None:
            from repro.graph.csr import FrozenGraph

            with obs_trace.span("csr.compile") as compile_span:
                self._frozen = FrozenGraph(
                    self.data_graph, counters=self, vector=self.vector
                )
                if compile_span is not None:
                    compile_span.tag(backend=self._frozen.backend_name)
            if obs_metrics.ENABLED:
                obs_metrics.REGISTRY.inc("csr.compiles")
        return self._frozen

    def apply_changeset(self, changeset) -> int:
        """Bring the cache up to date with one applied changeset.

        Dict-backed structures are invalidated (adjacency of touched
        tuples, distance maps of touched components — see
        :meth:`invalidate_tuples`); the compiled CSR graph, when built,
        is *patched* in place (tombstone/append + row rebuild) so the
        next CSR query pays no recompilation.  Returns the number of
        dict distance maps dropped.
        """
        dropped = self._invalidate_changed(changeset.structural_tuples())
        if self._frozen is not None:
            self._frozen.apply_changeset(changeset)
        if obs_metrics.ENABLED and dropped:
            obs_metrics.REGISTRY.inc(
                "traversal_cache.distance_maps_dropped", dropped
            )
        return dropped

    def invalidate_tuples(self, changed: Iterable[TupleId]) -> int:
        """Drop only the entries a changeset can have made stale.

        ``changed`` is the set of tuples touched by a mutation batch:
        inserted, deleted and updated tuples plus both endpoints of every
        added or removed edge.  Adjacency is local, so expansion and
        neighbour lists are dropped for the changed tuples only.  A
        distance map is global within its connected component: the map
        keyed by ``t`` is dropped when ``t`` itself changed or when any
        changed tuple appears in the map (i.e. was reachable from ``t`` —
        which covers every tuple of ``t``'s pre-change component, and,
        because edge endpoints are changed tuples, any component newly
        merged into it).  Maps of untouched components survive.  Returns
        the number of distance maps dropped.

        Tuple ids alone carry no edge deltas, so a compiled CSR graph
        cannot be patched from here — it is dropped (and lazily
        recompiled) whenever the call actually invalidated something.
        :meth:`apply_changeset` is the edge-aware entry point that
        patches it in place instead.
        """
        changed = set(changed)
        if changed and self._frozen is not None:
            self._frozen = None
        return self._invalidate_changed(changed)

    def _invalidate_changed(self, changed: Iterable[TupleId]) -> int:
        """Invalidate the dict-backed structures for a changed-tuple set."""
        changed = set(changed)
        if not changed:
            return 0
        for tid in changed:
            self._expansions.pop(tid, None)
            self._neighbours.pop(tid, None)
        stale = [
            tid
            for tid, distances in self._distances.items()
            if tid in changed or not changed.isdisjoint(distances)
        ]
        for tid in stale:
            del self._distances[tid]
        return len(stale)

    def expansions(self, tid: TupleId) -> tuple:
        """``(other, edge_key, edge_data)`` triples incident to ``tid``.

        Reverse-sorted by ``(tuple order, edge key)`` so a DFS stack that
        pushes them in this order pops them forward-sorted — the same
        expansion order the brute-force traversal uses.
        """
        cached = self._expansions.get(tid)
        if cached is None:
            graph = self.data_graph.graph
            cached = tuple(
                sorted(
                    (
                        (other, key, data)
                        for __, other, key, data in graph.edges(
                            tid, keys=True, data=True
                        )
                    ),
                    key=lambda item: (_sort_key(item[0]), item[1]),
                    reverse=True,
                )
            )
            self._expansions[tid] = cached
        return cached

    def neighbours(self, tid: TupleId) -> tuple[TupleId, ...]:
        """Distinct neighbours of ``tid``, forward-sorted."""
        cached = self._neighbours.get(tid)
        if cached is None:
            cached = tuple(
                dict.fromkeys(
                    other for other, __, __ in reversed(self.expansions(tid))
                )
            )
            self._neighbours[tid] = cached
        return cached

    def distances(self, tid: TupleId) -> dict[TupleId, int]:
        """Shortest-path (edge-count) map from ``tid`` to every reachable tuple."""
        cached = self._distances.get(tid)
        if cached is not None:
            self.hits += 1
            self._distances.move_to_end(tid)
            return cached
        self.misses += 1
        distances = {tid: 0}
        frontier = [tid]
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for node in frontier:
                for other in self.neighbours(node):
                    if other not in distances:
                        distances[other] = depth
                        next_frontier.append(other)
            frontier = next_frontier
        while len(self._distances) >= self.max_distance_maps:
            self._distances.popitem(last=False)  # least recently used
        self._distances[tid] = distances
        return distances

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraversalCache(expansions={len(self._expansions)}, "
            f"distances={len(self._distances)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def fast_enumerate_simple_paths(
    data_graph: DataGraph,
    source: TupleId,
    target: TupleId,
    max_edges: int,
    max_paths: Optional[int] = None,
    cache: Optional[TraversalCache] = None,
) -> Iterator[list[TuplePathStep]]:
    """Drop-in replacement for :func:`~repro.graph.traversal.enumerate_simple_paths`.

    Same paths, same order (shorter first, deterministic within a
    length), same budget semantics — but the forward DFS is bounded by a
    backward BFS from ``target``: a branch is expanded into ``other``
    only when the shortest distance from ``other`` to ``target`` fits in
    the remaining edge budget.  The distance map prunes admissibly
    (ignoring the simple-path constraint it can under- but never
    over-estimate the true remaining length), so no valid path is lost.
    """
    graph = data_graph.graph
    if source not in graph or target not in graph:
        return
    if max_edges < 1:
        return
    if cache is None or cache.data_graph is not data_graph:
        # A cache built on another graph would serve stale adjacency and
        # distances; fall back to a private one rather than answer wrongly.
        cache = TraversalCache(data_graph)

    to_target = cache.distances(target)
    shortest = to_target.get(source, _UNREACHABLE)
    if shortest > max_edges:
        # Disconnected pair (or too far): the brute-force version walks
        # the whole component once per depth to learn this.
        return

    produced = 0
    distance = to_target.get
    for depth in range(max(1, shortest), max_edges + 1):
        # One in-order DFS per depth over a *shared* visited set and
        # path stack with push/undo — no ``visited | {other}`` frozenset
        # or ``path + [...]`` list copy per expansion.  Expansion rows
        # are cached reverse-sorted (their historical stack order), so
        # ``reversed`` yields them forward-sorted.
        path: list[TuplePathStep] = []
        nodes = [source]
        visited = {source}
        iterators = [reversed(cache.expansions(source))]
        while iterators:
            entry = next(iterators[-1], None)
            if entry is None:
                iterators.pop()
                visited.discard(nodes.pop())
                if path:
                    path.pop()
                continue
            other, key, data = entry
            if other in visited:
                continue
            remaining = depth - len(path) - 1
            if remaining:
                if distance(other, _UNREACHABLE) > remaining:
                    continue  # cannot reach the target within this depth
                if other == target:
                    continue  # simple paths stop at the target
                path.append(TuplePathStep(nodes[-1], other, key, data))
                nodes.append(other)
                visited.add(other)
                iterators.append(reversed(cache.expansions(other)))
                continue
            if other != target:
                continue
            produced += 1
            if max_paths is not None and produced > max_paths:
                raise SearchLimitError(
                    "path enumeration exceeded budget",
                    max_paths=max_paths,
                    source=str(source),
                    target=str(target),
                )
            cache.paths_enumerated += 1
            yield path + [TuplePathStep(nodes[-1], other, key, data)]


def fast_enumerate_joining_trees(
    data_graph: DataGraph,
    required: Sequence[TupleId],
    max_tuples: int,
    max_results: Optional[int] = None,
    cache: Optional[TraversalCache] = None,
) -> Iterator[frozenset[TupleId]]:
    """Drop-in replacement for :func:`~repro.graph.traversal.enumerate_joining_trees`.

    Identical growth order and budget behaviour; the per-required-tuple
    distance maps and the per-member neighbour lists come from the cache
    instead of fresh networkx traversals, so the maps are computed once
    per tuple and shared across every keyword-tuple assignment of a
    query (and across queries in a batch).
    """
    required = list(dict.fromkeys(required))
    if not required:
        return
    graph = data_graph.graph
    for tid in required:
        if tid not in graph:
            return
    if cache is None or cache.data_graph is not data_graph:
        cache = TraversalCache(data_graph)

    distance_maps = [cache.distances(tid) for tid in required]
    for tid in required:
        if any(tid not in dmap for dmap in distance_maps):
            return  # some required pair is disconnected: no joining tree

    produced = 0
    seen: set[frozenset[TupleId]] = set()
    start = required[0]
    frontier: list[frozenset[TupleId]] = [frozenset([start])]
    required_set = frozenset(required)

    while frontier:
        next_frontier: set[frozenset[TupleId]] = set()
        for current in sorted(
            frontier, key=lambda s: sorted(_sort_key(t) for t in s)
        ):
            if required_set <= current:
                if current not in seen:
                    seen.add(current)
                    produced += 1
                    if max_results is not None and produced > max_results:
                        raise SearchLimitError(
                            "joining tree enumeration exceeded budget",
                            max_results=max_results,
                        )
                    cache.trees_enumerated += 1
                    yield current
            if len(current) >= max_tuples:
                continue
            missing = required_set - current
            budget = max_tuples - len(current)
            if missing:
                feasible = True
                for index, tid in enumerate(required):
                    if tid not in missing:
                        continue
                    dmap = distance_maps[index]
                    best = min(
                        (dmap.get(member, _UNREACHABLE) for member in current)
                    )
                    if best > budget:
                        feasible = False
                        break
                if not feasible:
                    continue
            neighbours: set[TupleId] = set()
            for member in current:
                for other in cache.neighbours(member):
                    if other not in current:
                        neighbours.add(other)
            for other in sorted(neighbours, key=_sort_key):
                next_frontier.add(current | {other})
        frontier = list(next_frontier)
