"""Schema graph: relations as nodes, foreign keys as cardinality edges.

Every foreign key ``R(f) -> S(k)`` contributes one undirected edge between
``R`` and ``S``.  Read from ``S`` to ``R`` the edge is ``1:N`` (one ``S``
tuple, many referencing ``R`` tuples); read from ``R`` to ``S`` it is
``N:1``; a unique foreign key is ``1:1``.  The graph is a multigraph because
two relations may be connected by several foreign keys (e.g. a flight's
origin and destination airports).

DISCOVER's candidate network generation and the reverse-engineering of ER
schemas both run over this structure.
"""

from __future__ import annotations

from typing import Iterator

import networkx as nx

from repro.er.cardinality import Cardinality
from repro.errors import UnknownRelationError
from repro.relational.schema import DatabaseSchema, ForeignKey

__all__ = ["SchemaGraph"]


class SchemaGraph:
    """Undirected multigraph over the relations of a schema."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        graph = nx.MultiGraph()
        for relation in schema.relations:
            graph.add_node(relation.name, is_middle=relation.is_middle)
        for fk in schema.foreign_keys:
            graph.add_edge(fk.source, fk.target, key=fk.name, foreign_key=fk)
        self._graph = graph

    @property
    def graph(self) -> nx.MultiGraph:
        """The underlying networkx multigraph (treat as read-only)."""
        return self._graph

    def edge_cardinality(self, fk: ForeignKey, read_from: str) -> Cardinality:
        """The cardinality of an FK edge read from one of its endpoints.

        ``read_from`` names either the FK's source or its target relation.
        Read from the *target* (referenced) side a plain FK is ``1:N``;
        from the *source* (referencing) side it is ``N:1``; unique foreign
        keys are ``1:1`` either way.
        """
        if fk.unique:
            return Cardinality.one_to_one()
        if read_from == fk.target:
            return Cardinality.one_to_many()
        if read_from == fk.source:
            return Cardinality.many_to_one()
        raise UnknownRelationError(
            "relation is not an endpoint of the foreign key",
            foreign_key=fk.name,
            relation=read_from,
        )

    def neighbours(self, relation_name: str) -> Iterator[tuple[str, ForeignKey]]:
        """Yield ``(other_relation, fk)`` for every incident FK edge."""
        if relation_name not in self._graph:
            raise UnknownRelationError("no such relation", relation=relation_name)
        for __, other, data in self._graph.edges(relation_name, data=True):
            yield other, data["foreign_key"]

    def degree(self, relation_name: str) -> int:
        if relation_name not in self._graph:
            raise UnknownRelationError("no such relation", relation=relation_name)
        return self._graph.degree(relation_name)

    def is_connected(self) -> bool:
        """True when every relation is join-reachable from every other."""
        if self._graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(nx.Graph(self._graph))

    def relation_distance(self, left: str, right: str) -> int:
        """Length of the shortest FK chain between two relations."""
        for name in (left, right):
            if name not in self._graph:
                raise UnknownRelationError("no such relation", relation=name)
        return nx.shortest_path_length(nx.Graph(self._graph), left, right)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SchemaGraph(relations={self._graph.number_of_nodes()}, "
            f"fk_edges={self._graph.number_of_edges()})"
        )
