"""Bounded enumeration of paths and joining trees in the data graph.

Two enumeration shapes serve the search engines:

* :func:`enumerate_simple_paths` — every simple path between two tuples up
  to a length bound, in deterministic order.  Two-keyword queries (all of
  the paper's examples) are answered with these.
* :func:`enumerate_joining_trees` — every connected tuple set up to a size
  bound that contains a given set of *required* seed tuples; general
  multi-keyword queries reduce to this.

Both enumerations are exhaustive within their bounds and deterministic
(children are expanded in sorted order), which is what lets the tests assert
paper tables exactly.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.errors import SearchLimitError
from repro.graph.data_graph import DataGraph
from repro.relational.database import TupleId

__all__ = ["TuplePathStep", "enumerate_simple_paths", "enumerate_joining_trees"]


def _sort_key(tid: TupleId) -> tuple:
    return (tid.relation, tuple(str(part) for part in tid.key))


class TuplePathStep:
    """One edge of a tuple path: the edge data plus its two endpoints."""

    __slots__ = ("source", "target", "edge_key", "edge_data")

    def __init__(
        self, source: TupleId, target: TupleId, edge_key: str, edge_data: dict
    ) -> None:
        self.source = source
        self.target = target
        self.edge_key = edge_key
        self.edge_data = edge_data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TuplePathStep({self.source} -> {self.target} via {self.edge_key})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TuplePathStep):
            return NotImplemented
        return (self.source, self.target, self.edge_key) == (
            other.source,
            other.target,
            other.edge_key,
        )

    def __hash__(self) -> int:
        return hash((self.source, self.target, self.edge_key))


def enumerate_simple_paths(
    data_graph: DataGraph,
    source: TupleId,
    target: TupleId,
    max_edges: int,
    max_paths: Optional[int] = None,
) -> Iterator[list[TuplePathStep]]:
    """Yield every simple tuple path from ``source`` to ``target``.

    Paths visit no tuple twice and have at most ``max_edges`` edges.  When
    several parallel edges join two tuples, one path is produced per edge.
    Shorter paths are yielded before longer ones.  ``max_paths`` caps the
    enumeration; exceeding it raises
    :class:`~repro.errors.SearchLimitError` so callers never silently
    truncate results.
    """
    graph = data_graph.graph
    if source not in graph or target not in graph:
        return
    if max_edges < 1:
        return

    produced = 0
    # Iterative deepening keeps the output ordered by length without
    # materialising everything; graphs here are small enough that the
    # repeated work is irrelevant next to determinism.
    for depth in range(1, max_edges + 1):
        stack: list[tuple[TupleId, list[TuplePathStep], frozenset[TupleId]]] = [
            (source, [], frozenset([source]))
        ]
        while stack:
            at, path, visited = stack.pop()
            if len(path) == depth:
                if at == target:
                    produced += 1
                    if max_paths is not None and produced > max_paths:
                        raise SearchLimitError(
                            "path enumeration exceeded budget",
                            max_paths=max_paths,
                            source=str(source),
                            target=str(target),
                        )
                    yield path
                continue
            if at == target and path:
                continue  # simple paths stop at the target
            expansions = sorted(
                (
                    (other, key, data)
                    for __, other, key, data in graph.edges(at, keys=True, data=True)
                    if other not in visited
                ),
                key=lambda item: (_sort_key(item[0]), item[1]),
                reverse=True,  # stack pops reverse the order back
            )
            for other, key, data in expansions:
                stack.append(
                    (
                        other,
                        path + [TuplePathStep(at, other, key, data)],
                        visited | {other},
                    )
                )


def enumerate_joining_trees(
    data_graph: DataGraph,
    required: Sequence[TupleId],
    max_tuples: int,
    max_results: Optional[int] = None,
) -> Iterator[frozenset[TupleId]]:
    """Yield connected tuple sets containing every ``required`` tuple.

    Results are tuple *sets* whose induced subgraph is connected, with at
    most ``max_tuples`` members, smaller sets first.  Supersets of already
    yielded sets are still yielded (minimality is the caller's concern —
    MTJNT filtering happens in :mod:`repro.baselines.discover`).

    The enumeration grows connected sets from the first required tuple and
    prunes branches that cannot absorb the remaining required tuples within
    the size budget (distance-based bound).
    """
    required = list(dict.fromkeys(required))
    if not required:
        return
    graph = data_graph.graph
    for tid in required:
        if tid not in graph:
            return

    import networkx as nx

    # Distance maps from each required tuple prune hopeless branches.
    distance_maps = []
    for tid in required:
        distance_maps.append(nx.single_source_shortest_path_length(graph, tid))
    for tid in required:
        if any(tid not in dmap for dmap in distance_maps):
            return  # some required pair is disconnected: no joining tree

    produced = 0
    seen: set[frozenset[TupleId]] = set()
    start = required[0]
    # Breadth-first over set sizes keeps "smaller first" exact.
    frontier: list[frozenset[TupleId]] = [frozenset([start])]
    required_set = frozenset(required)

    while frontier:
        next_frontier: set[frozenset[TupleId]] = set()
        for current in sorted(
            frontier, key=lambda s: sorted(_sort_key(t) for t in s)
        ):
            if required_set <= current:
                if current not in seen:
                    seen.add(current)
                    produced += 1
                    if max_results is not None and produced > max_results:
                        raise SearchLimitError(
                            "joining tree enumeration exceeded budget",
                            max_results=max_results,
                        )
                    yield current
            if len(current) >= max_tuples:
                continue
            missing = required_set - current
            budget = max_tuples - len(current)
            if missing:
                # Each missing tuple must be reachable within the remaining
                # budget from at least one member of the current set.
                feasible = True
                for index, tid in enumerate(required):
                    if tid not in missing:
                        continue
                    dmap = distance_maps[index]
                    best = min((dmap.get(member, 1 << 30) for member in current))
                    if best > budget:
                        feasible = False
                        break
                if not feasible:
                    continue
            neighbours: set[TupleId] = set()
            for member in current:
                for other in graph.neighbors(member):
                    if other not in current:
                        neighbours.add(other)
            for other in sorted(neighbours, key=_sort_key):
                next_frontier.add(current | {other})
        frontier = list(next_frontier)
