"""Data graph: tuples as nodes, foreign-key references as edges.

This is the graph BANKS-style systems search over.  Nodes are
:class:`~repro.relational.database.TupleId`; each stored foreign-key
reference contributes one undirected edge carrying:

``foreign_key``
    the :class:`~repro.relational.schema.ForeignKey` behind the edge;
``referencing``
    the :class:`TupleId` on the FK's source side — this orients the edge
    semantically and determines its cardinality when read in a direction.

The *conceptual* view (:meth:`DataGraph.conceptual_graph`) removes tuples of
middle relations and reconnects their neighbours directly with an ``N:M``
edge that remembers the middle tuple.  The paper's ER connection length is
the number of edges of a connection in this view.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Optional

import networkx as nx

from repro.er.cardinality import Cardinality
from repro.errors import PathError
from repro.relational.database import Database, Tuple, TupleId
from repro.relational.schema import ForeignKey

__all__ = ["DataGraph", "build_tuple_graph"]


def build_tuple_graph(database: Database) -> nx.MultiGraph:
    """Construct the tuple-level multigraph of one database instance.

    Node and edge insertion order is part of the engine's determinism
    contract (multi-edge iteration follows it), so every construction
    path — eager :class:`DataGraph` build and the snapshot loader's
    deferred materialisation — must go through this one function.
    """
    graph = nx.MultiGraph()
    for record in database.all_tuples():
        graph.add_node(record.tid, relation=record.relation)
    for fk in database.schema.foreign_keys:
        for record in database.tuples(fk.source):
            target = database.referenced_tuple(record, fk)
            if target is None:
                continue
            graph.add_edge(
                record.tid,
                target.tid,
                key=fk.name,
                foreign_key=fk,
                referencing=record.tid,
            )
    return graph


class DataGraph:
    """Tuple-level graph of a database instance."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._graph = build_tuple_graph(database)
        self._conceptual: Optional[nx.MultiGraph] = None
        #: Monotonically increasing mutation stamp.  Every structural
        #: change (node/edge patch, cache invalidation) bumps it, so
        #: callers holding a derived view can detect staleness.
        self.version = 0

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop cached derived views (the conceptual graph) and bump
        :attr:`version`.

        Call after mutating the graph (or the underlying database) so a
        stale cached conceptual view can never be served.  The patching
        methods below call it themselves.
        """
        self._conceptual = None
        self.version += 1

    def add_tuple_node(self, record: Tuple) -> None:
        """Add one tuple as a node (exactly as construction would)."""
        self._graph.add_node(record.tid, relation=record.relation)
        self.invalidate_caches()

    def remove_tuple_node(self, tid: TupleId) -> None:
        """Remove one tuple's node together with any incident edges."""
        if tid in self._graph:
            self._graph.remove_node(tid)
        self.invalidate_caches()

    def add_fk_edge(
        self, referencing: TupleId, referenced: TupleId, foreign_key: ForeignKey
    ) -> None:
        """Add the edge of one stored foreign-key reference."""
        self._graph.add_edge(
            referencing,
            referenced,
            key=foreign_key.name,
            foreign_key=foreign_key,
            referencing=referencing,
        )
        self.invalidate_caches()

    def remove_fk_edge(
        self, referencing: TupleId, referenced: TupleId, foreign_key_name: str
    ) -> None:
        """Remove one foreign-key edge (no-op when absent)."""
        if self._graph.has_edge(referencing, referenced, key=foreign_key_name):
            self._graph.remove_edge(referencing, referenced, key=foreign_key_name)
        self.invalidate_caches()

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.MultiGraph:
        """The underlying networkx multigraph (treat as read-only)."""
        return self._graph

    def number_of_nodes(self) -> int:
        return self._graph.number_of_nodes()

    def number_of_edges(self) -> int:
        return self._graph.number_of_edges()

    def has_node(self, tid: TupleId) -> bool:
        return tid in self._graph

    def neighbours(self, tid: TupleId) -> Iterator[tuple[TupleId, str, dict]]:
        """Yield ``(other, edge_key, edge_data)`` for incident edges."""
        if tid not in self._graph:
            raise PathError("tuple is not in the data graph", tid=str(tid))
        for __, other, key, data in self._graph.edges(tid, keys=True, data=True):
            yield other, key, data

    def degree(self, tid: TupleId) -> int:
        if tid not in self._graph:
            raise PathError("tuple is not in the data graph", tid=str(tid))
        return self._graph.degree(tid)

    def edges_between(self, left: TupleId, right: TupleId) -> list[dict]:
        """Edge data dicts of every edge joining two tuples (may be empty)."""
        if not self._graph.has_edge(left, right):
            return []
        return list(self._graph[left][right].values())

    def edge_cardinality(self, edge_data: dict, read_from: TupleId) -> Cardinality:
        """Cardinality of an edge read from one of its endpoints.

        Read from the referenced (target) tuple the edge is ``1:N``; from
        the referencing tuple ``N:1``; unique FKs give ``1:1``.
        """
        fk: ForeignKey = edge_data["foreign_key"]
        if fk.unique:
            return Cardinality.one_to_one()
        if edge_data["referencing"] == read_from:
            return Cardinality.many_to_one()
        return Cardinality.one_to_many()

    def is_middle(self, tid: TupleId) -> bool:
        """True when the tuple belongs to a middle relation."""
        return self.database.schema.relation(tid.relation).is_middle

    # ------------------------------------------------------------------
    # induced subgraphs (MTJNT evaluation needs these)
    # ------------------------------------------------------------------
    def induced_subgraph(self, tids: Iterable[TupleId]) -> nx.MultiGraph:
        """Subgraph induced on a tuple set, *including* all stored edges.

        This is the structure MTJNT minimality is defined over: a tuple set
        may be connected through edges that are not on the path that
        produced it.
        """
        return self._graph.subgraph(list(tids))

    def is_connected_set(self, tids: Iterable[TupleId]) -> bool:
        """True when the induced subgraph on ``tids`` is connected."""
        tids = list(tids)
        if not tids:
            return False
        subgraph = self.induced_subgraph(tids)
        if subgraph.number_of_nodes() != len(set(tids)):
            return False
        return nx.is_connected(nx.Graph(subgraph))

    # ------------------------------------------------------------------
    # conceptual view
    # ------------------------------------------------------------------
    def conceptual_graph(self) -> nx.MultiGraph:
        """The data graph with middle-relation tuples collapsed away.

        Every middle tuple ``m`` referencing tuples ``a`` and ``b`` (via two
        different foreign keys) becomes a direct ``a -- b`` edge with
        ``middle=m`` and many-to-many semantics.  Non-middle edges are kept
        as-is.  The result is cached; the patching methods (and
        :meth:`invalidate_caches`) drop the cache, so mutation through them
        can never serve a stale view.
        """
        if self._conceptual is not None:
            return self._conceptual
        collapsed = nx.MultiGraph()
        for node, data in self._graph.nodes(data=True):
            if not self.is_middle(node):
                collapsed.add_node(node, **data)
        for left, right, key, data in self._graph.edges(keys=True, data=True):
            if self.is_middle(left) or self.is_middle(right):
                continue
            collapsed.add_edge(left, right, key=key, **data)
        for node in self._graph.nodes:
            if not self.is_middle(node):
                continue
            anchors = []
            for __, other, key, data in self._graph.edges(node, keys=True, data=True):
                if self.is_middle(other):
                    continue
                anchors.append((other, data["foreign_key"]))
            for (a, fk_a), (b, fk_b) in combinations(anchors, 2):
                if a == b:
                    continue
                collapsed.add_edge(
                    a,
                    b,
                    key=f"{node}:{fk_a.name}:{fk_b.name}",
                    middle=node,
                    foreign_keys=(fk_a, fk_b),
                )
        self._conceptual = collapsed
        return collapsed

    def conceptual_edge_cardinality(self, edge_data: dict) -> Cardinality:
        """Cardinality of a conceptual edge (collapsed middles are ``N:M``)."""
        if "middle" in edge_data:
            return Cardinality.many_to_many()
        # Plain FK edge retained in the conceptual view; direction-dependent
        # reading is the caller's business via :meth:`edge_cardinality`.
        fk: ForeignKey = edge_data["foreign_key"]
        return Cardinality.one_to_one() if fk.unique else Cardinality.one_to_many()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataGraph(nodes={self._graph.number_of_nodes()}, "
            f"edges={self._graph.number_of_edges()})"
        )
