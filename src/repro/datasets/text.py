"""Deterministic text synthesis for synthetic instances.

Descriptions are built from a fixed topic vocabulary with a seeded RNG so
that every generated database is reproducible.  Keywords can be *planted*
into a controlled fraction of values, giving workloads a known selectivity
— the property benchmarks sweep.
"""

from __future__ import annotations

import random
from typing import Sequence

__all__ = ["TOPIC_WORDS", "FILLER_WORDS", "make_description", "plant_keyword"]

#: Topic words descriptions draw from (paper-flavoured vocabulary).
TOPIC_WORDS: tuple[str, ...] = (
    "databases", "retrieval", "xml", "programming", "information",
    "indexing", "ranking", "keyword", "search", "semantics", "modeling",
    "integration", "documents", "structured", "relational", "query",
    "optimization", "graphs", "entities", "associations",
)

#: Connective filler so descriptions look like prose, not word soup.
FILLER_WORDS: tuple[str, ...] = (
    "the", "main", "topics", "of", "this", "unit", "are", "and", "with",
    "for", "about", "toward", "advanced", "applied",
)


def make_description(rng: random.Random, words: int = 8,
                     vocabulary: Sequence[str] = TOPIC_WORDS) -> str:
    """A pseudo-sentence of ``words`` tokens from the vocabulary."""
    if words < 1:
        return ""
    tokens = []
    for position in range(words):
        pool = FILLER_WORDS if position % 3 == 2 else vocabulary
        tokens.append(rng.choice(pool))
    sentence = " ".join(tokens)
    return sentence[0].upper() + sentence[1:] + "."


def plant_keyword(description: str, keyword: str, rng: random.Random) -> str:
    """Insert ``keyword`` at a random word boundary of a description."""
    words = description.rstrip(".").split()
    position = rng.randrange(len(words) + 1) if words else 0
    words.insert(position, keyword)
    return " ".join(words) + "."
