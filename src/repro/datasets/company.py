"""The paper's running example: Figure 1 (ER) and Figure 2 (instance).

The ER schema is the Elmasri–Navathe COMPANY fragment of Figure 1:
``DEPARTMENT``, ``EMPLOYEE``, ``DEPENDENT`` and ``PROJECT`` with

* ``WORKS_FOR``   — department 1:N employee,
* ``DEPENDENTS``  — employee 1:N dependent,
* ``WORKS_ON``    — project N:M employee (with ``HOURS``),
* ``CONTROLS``    — department 1:N project.

The relational schema and instance follow Figure 2 *verbatim* — including
the paper's naming quirk: the printed middle relation implementing the
``WORKS_ON`` relationship is called ``WORKS_FOR`` (the same name its ER
diagram uses for the employee–department relationship).  We reproduce the
printed name so every table renders exactly as published; see DESIGN.md.

Tuple labels follow the paper: ``d1..d3``, ``p1..p3``, ``e1..e4``,
``t1..t2`` and ``w_f1..w_f4`` for the middle relation rows in print order.
"""

from __future__ import annotations

from repro.er.cardinality import Cardinality
from repro.er.model import Attribute, EntityType, ERSchema, RelationshipType
from repro.relational.database import Database
from repro.relational.schema import (
    AttributeDef,
    DatabaseSchema,
    ForeignKey,
    Relation,
)

__all__ = [
    "build_company_er_schema",
    "build_company_schema",
    "build_company_database",
    "TABLE1_ENTITY_SEQUENCES",
]

#: The entity sequences of the paper's Table 1, in row order.
TABLE1_ENTITY_SEQUENCES: tuple[tuple[str, ...], ...] = (
    ("DEPARTMENT", "EMPLOYEE"),
    ("PROJECT", "EMPLOYEE"),
    ("DEPARTMENT", "EMPLOYEE", "DEPENDENT"),
    ("DEPARTMENT", "PROJECT", "EMPLOYEE"),
    ("PROJECT", "DEPARTMENT", "EMPLOYEE"),
    ("DEPARTMENT", "PROJECT", "EMPLOYEE", "DEPENDENT"),
)


def build_company_er_schema() -> ERSchema:
    """Figure 1's ER schema, with the attributes Figure 2 reveals."""
    schema = ERSchema(name="company")
    schema.add_entity_type(
        EntityType(
            "DEPARTMENT",
            [
                Attribute("ID", is_key=True),
                Attribute("D_NAME"),
                Attribute("D_DESCRIPTION", is_text=True),
            ],
        )
    )
    schema.add_entity_type(
        EntityType(
            "EMPLOYEE",
            [
                Attribute("SSN", is_key=True),
                Attribute("L_NAME"),
                Attribute("S_NAME"),
            ],
        )
    )
    schema.add_entity_type(
        EntityType(
            "PROJECT",
            [
                Attribute("ID", is_key=True),
                Attribute("P_NAME"),
                Attribute("P_DESCRIPTION", is_text=True),
            ],
        )
    )
    schema.add_entity_type(
        EntityType(
            "DEPENDENT",
            [
                Attribute("ID", is_key=True),
                Attribute("DEPENDENT_NAME"),
            ],
        )
    )
    schema.add_relationship(
        RelationshipType(
            "WORKS_FOR", "DEPARTMENT", "EMPLOYEE", Cardinality.parse("1:N")
        )
    )
    schema.add_relationship(
        RelationshipType(
            "DEPENDENTS", "EMPLOYEE", "DEPENDENT", Cardinality.parse("1:N")
        )
    )
    schema.add_relationship(
        RelationshipType(
            "WORKS_ON",
            "PROJECT",
            "EMPLOYEE",
            Cardinality.parse("N:M"),
            attributes=(Attribute("HOURS", data_type="int"),),
        )
    )
    schema.add_relationship(
        RelationshipType(
            "CONTROLS", "DEPARTMENT", "PROJECT", Cardinality.parse("1:N")
        )
    )
    schema.validate()
    return schema


def build_company_schema() -> DatabaseSchema:
    """Figure 2's relational schema, exactly as printed.

    The middle relation is named ``WORKS_FOR`` (the paper's printed name
    for the relation implementing the ``WORKS_ON`` relationship).
    """
    schema = DatabaseSchema(name="company")
    schema.add_relation(
        Relation(
            "DEPARTMENT",
            [
                AttributeDef("ID"),
                AttributeDef("D_NAME"),
                AttributeDef("D_DESCRIPTION", data_type="text"),
            ],
            primary_key=["ID"],
        )
    )
    schema.add_relation(
        Relation(
            "PROJECT",
            [
                AttributeDef("ID"),
                AttributeDef("D_ID"),
                AttributeDef("P_NAME"),
                AttributeDef("P_DESCRIPTION", data_type="text"),
            ],
            primary_key=["ID"],
        )
    )
    schema.add_relation(
        Relation(
            "EMPLOYEE",
            [
                AttributeDef("SSN"),
                AttributeDef("L_NAME"),
                AttributeDef("S_NAME"),
                AttributeDef("D_ID"),
            ],
            primary_key=["SSN"],
        )
    )
    schema.add_relation(
        Relation(
            "WORKS_FOR",
            [
                AttributeDef("ESSN", nullable=False),
                AttributeDef("P_ID", nullable=False),
                AttributeDef("HOURS", data_type="int"),
            ],
            primary_key=["ESSN", "P_ID"],
            is_middle=True,
            implements_relationship="WORKS_ON",
        )
    )
    schema.add_relation(
        Relation(
            "DEPENDENT",
            [
                AttributeDef("ID"),
                AttributeDef("ESSN"),
                AttributeDef("DEPENDENT_NAME"),
            ],
            primary_key=["ID"],
        )
    )
    schema.add_foreign_key(
        ForeignKey("fk_project_department", "PROJECT", ("D_ID",), "DEPARTMENT", ("ID",))
    )
    schema.add_foreign_key(
        ForeignKey("fk_employee_department", "EMPLOYEE", ("D_ID",), "DEPARTMENT", ("ID",))
    )
    schema.add_foreign_key(
        ForeignKey("fk_works_for_employee", "WORKS_FOR", ("ESSN",), "EMPLOYEE", ("SSN",))
    )
    schema.add_foreign_key(
        ForeignKey("fk_works_for_project", "WORKS_FOR", ("P_ID",), "PROJECT", ("ID",))
    )
    schema.add_foreign_key(
        ForeignKey("fk_dependent_employee", "DEPENDENT", ("ESSN",), "EMPLOYEE", ("SSN",))
    )
    schema.validate()
    return schema


def build_company_database() -> Database:
    """Figure 2's instance, verbatim, with the paper's tuple labels."""
    database = Database(build_company_schema(), enforce_foreign_keys=False)

    database.insert(
        "DEPARTMENT",
        {
            "ID": "d1",
            "D_NAME": "Cs",
            "D_DESCRIPTION": (
                "The main topics of teaching are programming, databases and XML."
            ),
        },
    )
    database.insert(
        "DEPARTMENT",
        {
            "ID": "d2",
            "D_NAME": "inf",
            "D_DESCRIPTION": (
                "The main topics of teaching are information retrieval and XML."
            ),
        },
    )
    database.insert(
        "DEPARTMENT",
        {
            "ID": "d3",
            "D_NAME": "history",
            "D_DESCRIPTION": "The main topics of teaching are history of Scandinavian.",
        },
    )

    database.insert(
        "PROJECT",
        {
            "ID": "p1",
            "D_ID": "d1",
            "P_NAME": "DB-project",
            "P_DESCRIPTION": (
                "Different data models are integrated, such as relational, "
                "object and XML"
            ),
        },
    )
    database.insert(
        "PROJECT",
        {
            "ID": "p2",
            "D_ID": "d2",
            "P_NAME": "XML and IR",
            "P_DESCRIPTION": "XML offers a notation for structured documents.",
        },
    )
    database.insert(
        "PROJECT",
        {
            "ID": "p3",
            "D_ID": "d2",
            "P_NAME": "IR task",
            "P_DESCRIPTION": "Task based information retrieval",
        },
    )

    database.insert(
        "EMPLOYEE", {"SSN": "e1", "L_NAME": "Smith", "S_NAME": "John", "D_ID": "d1"}
    )
    database.insert(
        "EMPLOYEE", {"SSN": "e2", "L_NAME": "Smith", "S_NAME": "Barbara", "D_ID": "d2"}
    )
    database.insert(
        "EMPLOYEE", {"SSN": "e3", "L_NAME": "Miller", "S_NAME": "Melina", "D_ID": "d1"}
    )
    database.insert(
        "EMPLOYEE", {"SSN": "e4", "L_NAME": "Walker", "S_NAME": "John", "D_ID": "d2"}
    )

    database.insert(
        "WORKS_FOR", {"ESSN": "e1", "P_ID": "p1", "HOURS": 40}, label="w_f1"
    )
    database.insert(
        "WORKS_FOR", {"ESSN": "e2", "P_ID": "p3", "HOURS": 56}, label="w_f2"
    )
    database.insert(
        "WORKS_FOR", {"ESSN": "e3", "P_ID": "p2", "HOURS": 70}, label="w_f3"
    )
    database.insert(
        "WORKS_FOR", {"ESSN": "e4", "P_ID": "p3", "HOURS": 60}, label="w_f4"
    )

    database.insert(
        "DEPENDENT", {"ID": "t1", "ESSN": "e3", "DEPENDENT_NAME": "Alice"}
    )
    database.insert(
        "DEPENDENT", {"ID": "t2", "ESSN": "e3", "DEPENDENT_NAME": "Theodore"}
    )

    database.check_integrity()
    database.enforce_foreign_keys = True
    return database
