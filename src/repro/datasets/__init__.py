"""Datasets: the paper's running example plus synthetic generators.

* :mod:`repro.datasets.company` — Figure 1's ER schema and Figure 2's
  database instance, verbatim;
* :mod:`repro.datasets.synthetic` — scalable company-shaped instances with
  planted keywords, for benchmarks;
* :mod:`repro.datasets.schemas` — parametric ER schema generators (chains,
  stars, random) for property-based tests and ablations;
* :mod:`repro.datasets.workload` — keyword query workload generation;
* :mod:`repro.datasets.text` — deterministic text synthesis.
"""

from repro.datasets.company import (
    build_company_database,
    build_company_er_schema,
    build_company_schema,
)
from repro.datasets.synthetic import SyntheticConfig, generate_company_like
from repro.datasets.workload import WorkloadConfig, generate_workload

__all__ = [
    "SyntheticConfig",
    "WorkloadConfig",
    "build_company_database",
    "build_company_er_schema",
    "build_company_schema",
    "generate_company_like",
    "generate_workload",
]
