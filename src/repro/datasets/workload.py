"""Keyword query workload generation with selectivity control.

A workload is a list of queries whose keywords are *planted* into the
database with known match counts, so benchmark sweeps can vary exactly one
variable at a time (number of keywords, selectivity, relation distance).

:func:`generate_mixed_workload` turns a planted query workload into a
mixed read/write operation stream — skewed repeated searches interleaved
with mutation batches for ``engine.apply`` — the shape the live-update
subsystem (:mod:`repro.live`) is benchmarked under.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets import text as text_module
from repro.datasets.synthetic import plant
from repro.live.changes import Delete, Insert, Mutation, Update
from repro.relational.database import Database, TupleId

__all__ = [
    "WorkloadConfig",
    "WorkloadQuery",
    "MixedWorkloadConfig",
    "MixedOperation",
    "SkewedWorkloadConfig",
    "batch_texts",
    "generate_workload",
    "generate_mixed_workload",
    "generate_skewed_workload",
]

#: Relations and text attributes that keywords may be planted into.
_PLANT_SITES = (
    ("DEPARTMENT", "D_DESCRIPTION"),
    ("PROJECT", "P_DESCRIPTION"),
    ("EMPLOYEE", "L_NAME"),
    ("DEPENDENT", "DEPENDENT_NAME"),
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a generated workload."""

    queries: int = 10
    keywords_per_query: int = 2
    matches_per_keyword: int = 3
    seed: int = 13


@dataclass(frozen=True)
class WorkloadQuery:
    """One planted query: the text plus ground-truth match labels."""

    text: str
    keywords: tuple[str, ...]
    planted_labels: dict[str, tuple[str, ...]]


def batch_texts(
    queries: list[WorkloadQuery], repeats: int = 1
) -> list[str]:
    """Flatten a workload into ``engine.search_batch`` input.

    ``repeats`` > 1 cycles the whole workload that many times — the shape
    served engines see (the same popular queries arriving again), which is
    exactly what the engine's traversal cache amortises.
    """
    texts = [query.text for query in queries]
    return texts * max(1, repeats)


@dataclass(frozen=True)
class MixedWorkloadConfig:
    """Shape of a mixed read/write operation stream.

    ``update_ratio`` is the probability an operation is a mutation batch
    rather than a search; ``skew`` is the Zipf-style exponent of query
    popularity (0 = uniform — higher values concentrate reads on the
    first queries, which is what makes an answer cache pay off).
    """

    operations: int = 40
    update_ratio: float = 0.25
    mutations_per_batch: int = 4
    skew: float = 1.0
    seed: int = 29


@dataclass(frozen=True)
class MixedOperation:
    """One step of a mixed workload: a search or a mutation batch."""

    kind: str  # "search" | "apply"
    query: str = ""
    mutations: tuple[Mutation, ...] = ()


def generate_mixed_workload(
    database: Database,
    queries: list[WorkloadQuery],
    config: MixedWorkloadConfig = MixedWorkloadConfig(),
) -> list[MixedOperation]:
    """Interleave skewed searches with mutation batches, deterministically.

    Mutation batches mix the three shapes the live subsystem must stay
    exact under: inserts of ``DEPENDENT`` tuples referencing random
    employees (sometimes carrying a workload keyword, so keyword match
    sets change), description updates on ``DEPARTMENT`` tuples, and
    deletes of dependents this workload inserted earlier.  All draws
    flow from ``config.seed``.
    """
    if not queries:
        raise ValueError("mixed workload needs at least one query")
    rng = random.Random(config.seed)
    weights = [
        1.0 / (rank + 1) ** config.skew for rank in range(len(queries))
    ]
    employees = [record.tid for record in database.tuples("EMPLOYEE")]
    departments = [record.tid for record in database.tuples("DEPARTMENT")]
    keywords = [kw for query in queries for kw in query.keywords]
    live_dependents: list[str] = []
    counter = 0
    operations: list[MixedOperation] = []
    for __ in range(config.operations):
        if rng.random() >= config.update_ratio:
            chosen = rng.choices(queries, weights=weights)[0]
            operations.append(MixedOperation("search", query=chosen.text))
            continue
        batch: list[Mutation] = []
        for __ in range(config.mutations_per_batch):
            roll = rng.random()
            if roll < 0.5 or not live_dependents:
                counter += 1
                name = (
                    rng.choice(keywords)
                    if keywords and rng.random() < 0.3
                    else text_module.make_description(rng, 1)
                )
                essn = rng.choice(employees).key[0]
                key = f"lw{counter}"
                batch.append(
                    Insert(
                        "DEPENDENT",
                        {"ID": key, "ESSN": essn, "DEPENDENT_NAME": name},
                    )
                )
                live_dependents.append(key)
            elif roll < 0.8:
                words = text_module.make_description(rng, 6)
                if keywords and rng.random() < 0.3:
                    words = f"{words} {rng.choice(keywords)}"
                batch.append(
                    Update(
                        rng.choice(departments), {"D_DESCRIPTION": words}
                    )
                )
            else:
                key = live_dependents.pop(
                    rng.randrange(len(live_dependents))
                )
                batch.append(Delete(TupleId("DEPENDENT", (key,))))
        operations.append(MixedOperation("apply", mutations=tuple(batch)))
    return operations


@dataclass(frozen=True)
class SkewedWorkloadConfig:
    """Shape of a skewed workload: Zipfian popularity x mixed selectivity.

    A pool of ``keyword_pool`` keywords is planted once; keyword rank
    decides both how *popular* it is (queries draw keywords with weight
    ``1/(rank+1)**skew``) and how *heavy* it is (match counts interpolate
    from ``max_matches`` at rank 0 down to ``min_matches`` at the coldest
    rank).  Popular keywords are therefore the expensive ones — the shape
    where a static plan-order enumeration wastes the most work and a
    cost-ordered one pays off.
    """

    queries: int = 20
    keywords_per_query: int = 2
    keyword_pool: int = 8
    max_matches: int = 12
    min_matches: int = 1
    skew: float = 1.0
    seed: int = 17


def generate_skewed_workload(
    database: Database, config: SkewedWorkloadConfig = SkewedWorkloadConfig()
) -> list[WorkloadQuery]:
    """Plant a skewed keyword pool and draw Zipf-popular queries from it.

    Pool keywords are fresh unique tokens (``sk<rank>``) planted into a
    round-robin choice of relation; each query samples
    ``config.keywords_per_query`` *distinct* pool keywords by popularity
    weight, so hot (heavy) keywords co-occur often while cold (cheap)
    ones appear in the tail.  All draws flow from ``config.seed``.  As
    with :func:`generate_workload`, the engine must be constructed after
    planting so derived structures see the planted tokens.
    """
    if config.keyword_pool < config.keywords_per_query:
        raise ValueError("keyword_pool must cover keywords_per_query")
    rng = random.Random(config.seed)
    pool: list[str] = []
    planted: dict[str, tuple[str, ...]] = {}
    span = max(1, config.keyword_pool - 1)
    for rank in range(config.keyword_pool):
        keyword = f"sk{rank + 1}"
        relation, attribute = _PLANT_SITES[rank % len(_PLANT_SITES)]
        target = round(
            config.max_matches
            - (config.max_matches - config.min_matches) * rank / span
        )
        count = min(max(1, target), database.count(relation))
        labels = plant(
            database,
            keyword,
            relation,
            attribute,
            count,
            seed=rng.randrange(1 << 30),
        )
        pool.append(keyword)
        planted[keyword] = tuple(labels)
    weights = [
        1.0 / (rank + 1) ** config.skew for rank in range(len(pool))
    ]
    queries: list[WorkloadQuery] = []
    for __ in range(config.queries):
        chosen: list[str] = []
        while len(chosen) < config.keywords_per_query:
            keyword = rng.choices(pool, weights=weights)[0]
            if keyword not in chosen:
                chosen.append(keyword)
        queries.append(
            WorkloadQuery(
                text=" ".join(chosen),
                keywords=tuple(chosen),
                planted_labels={kw: planted[kw] for kw in chosen},
            )
        )
    return queries


def generate_workload(
    database: Database, config: WorkloadConfig = WorkloadConfig()
) -> list[WorkloadQuery]:
    """Plant keywords into a database and return the induced queries.

    Every keyword is a fresh unique token (``qk<i>``), planted into a
    round-robin choice of relation with exactly
    ``config.matches_per_keyword`` matches.  The database's derived
    structures (index, data graph) must be rebuilt afterwards — the engine
    does this when constructed after planting.
    """
    rng = random.Random(config.seed)
    queries = []
    token_counter = 0
    for query_index in range(config.queries):
        keywords = []
        planted: dict[str, tuple[str, ...]] = {}
        for position in range(config.keywords_per_query):
            token_counter += 1
            keyword = f"qk{token_counter}"
            relation, attribute = _PLANT_SITES[
                (query_index + position) % len(_PLANT_SITES)
            ]
            available = database.count(relation)
            count = min(config.matches_per_keyword, available)
            labels = plant(
                database,
                keyword,
                relation,
                attribute,
                count,
                seed=rng.randrange(1 << 30),
            )
            keywords.append(keyword)
            planted[keyword] = tuple(labels)
        queries.append(
            WorkloadQuery(
                text=" ".join(keywords),
                keywords=tuple(keywords),
                planted_labels=planted,
            )
        )
    return queries
