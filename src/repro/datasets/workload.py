"""Keyword query workload generation with selectivity control.

A workload is a list of queries whose keywords are *planted* into the
database with known match counts, so benchmark sweeps can vary exactly one
variable at a time (number of keywords, selectivity, relation distance).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.synthetic import plant
from repro.relational.database import Database

__all__ = [
    "WorkloadConfig",
    "WorkloadQuery",
    "batch_texts",
    "generate_workload",
]

#: Relations and text attributes that keywords may be planted into.
_PLANT_SITES = (
    ("DEPARTMENT", "D_DESCRIPTION"),
    ("PROJECT", "P_DESCRIPTION"),
    ("EMPLOYEE", "L_NAME"),
    ("DEPENDENT", "DEPENDENT_NAME"),
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a generated workload."""

    queries: int = 10
    keywords_per_query: int = 2
    matches_per_keyword: int = 3
    seed: int = 13


@dataclass(frozen=True)
class WorkloadQuery:
    """One planted query: the text plus ground-truth match labels."""

    text: str
    keywords: tuple[str, ...]
    planted_labels: dict[str, tuple[str, ...]]


def batch_texts(
    queries: list[WorkloadQuery], repeats: int = 1
) -> list[str]:
    """Flatten a workload into ``engine.search_batch`` input.

    ``repeats`` > 1 cycles the whole workload that many times — the shape
    served engines see (the same popular queries arriving again), which is
    exactly what the engine's traversal cache amortises.
    """
    texts = [query.text for query in queries]
    return texts * max(1, repeats)


def generate_workload(
    database: Database, config: WorkloadConfig = WorkloadConfig()
) -> list[WorkloadQuery]:
    """Plant keywords into a database and return the induced queries.

    Every keyword is a fresh unique token (``qk<i>``), planted into a
    round-robin choice of relation with exactly
    ``config.matches_per_keyword`` matches.  The database's derived
    structures (index, data graph) must be rebuilt afterwards — the engine
    does this when constructed after planting.
    """
    rng = random.Random(config.seed)
    queries = []
    token_counter = 0
    for query_index in range(config.queries):
        keywords = []
        planted: dict[str, tuple[str, ...]] = {}
        for position in range(config.keywords_per_query):
            token_counter += 1
            keyword = f"qk{token_counter}"
            relation, attribute = _PLANT_SITES[
                (query_index + position) % len(_PLANT_SITES)
            ]
            available = database.count(relation)
            count = min(config.matches_per_keyword, available)
            labels = plant(
                database,
                keyword,
                relation,
                attribute,
                count,
                seed=rng.randrange(1 << 30),
            )
            keywords.append(keyword)
            planted[keyword] = tuple(labels)
        queries.append(
            WorkloadQuery(
                text=" ".join(keywords),
                keywords=tuple(keywords),
                planted_labels=planted,
            )
        )
    return queries
