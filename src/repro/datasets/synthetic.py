"""Scalable company-shaped synthetic instances with planted keywords.

:func:`generate_company_like` grows the paper's schema to arbitrary size
while preserving its shape: departments control projects (1:N), employ
employees (1:N), employees raise dependents (1:N) and work on projects
through the ``WORKS_FOR`` middle relation (N:M).  All randomness flows from
one seed, so a configuration identifies one database exactly.

Keyword planting controls workload selectivity: ``plant("needle",
relation="EMPLOYEE", count=5)`` guarantees the keyword matches exactly five
employee tuples — benches sweep match counts this way.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets import text as text_module
from repro.datasets.company import build_company_schema
from repro.errors import QueryError
from repro.relational.database import Database

__all__ = ["SyntheticConfig", "generate_company_like", "generate_tenants", "plant"]

_LAST_NAMES = (
    "Smith", "Miller", "Walker", "Jones", "Brown", "Wilson", "Moore",
    "Taylor", "Clark", "Lewis", "Young", "Hall", "King", "Wright",
)
_FIRST_NAMES = (
    "John", "Barbara", "Melina", "Alice", "Theodore", "Maria", "Peter",
    "Susan", "David", "Laura", "Frank", "Nina", "Oscar", "Ruth",
)
_DEPARTMENT_NAMES = (
    "cs", "inf", "history", "math", "physics", "biology", "chemistry",
    "law", "economics", "linguistics",
)


@dataclass(frozen=True)
class SyntheticConfig:
    """Size and shape knobs for :func:`generate_company_like`.

    ``works_on_per_employee`` controls ``N:M`` density; ``dependents_per
    _employee`` is an expected value (Poisson-ish via geometric draws).
    """

    departments: int = 5
    projects_per_department: int = 3
    employees_per_department: int = 10
    works_on_per_employee: int = 2
    dependents_per_employee: float = 0.5
    description_words: int = 10
    seed: int = 7

    def expected_tuples(self) -> int:
        """Rough total tuple count, for sizing sweeps."""
        employees = self.departments * self.employees_per_department
        return (
            self.departments
            + self.departments * self.projects_per_department
            + employees
            + employees * self.works_on_per_employee
            + int(employees * self.dependents_per_employee)
        )


def generate_company_like(config: SyntheticConfig = SyntheticConfig()) -> Database:
    """Generate a deterministic company-shaped database."""
    rng = random.Random(config.seed)
    database = Database(build_company_schema(), enforce_foreign_keys=False)
    _populate(database, config, rng, prefix="")
    database.check_integrity()
    database.enforce_foreign_keys = True
    return database


def generate_tenants(
    config: SyntheticConfig = SyntheticConfig(), tenants: int = 4
) -> Database:
    """Generate K independent company instances inside one schema.

    Each tenant's keys carry a ``t<i>`` prefix and its ``WORKS_FOR``
    rows stay inside the tenant, so the data graph decomposes into one
    connected component per tenant (give or take isolated tuples) — the
    multi-tenant shape the sharded serving layer partitions along.
    With ``tenants=1`` and an empty prefix this reduces to
    :func:`generate_company_like`; all randomness flows from
    ``config.seed`` and the tenant number.
    """
    if tenants < 1:
        raise QueryError("tenants must be positive", got=tenants)
    database = Database(build_company_schema(), enforce_foreign_keys=False)
    for tenant in range(tenants):
        rng = random.Random(config.seed * 1_000_003 + tenant)
        _populate(database, config, rng, prefix=f"t{tenant + 1}")
    database.check_integrity()
    database.enforce_foreign_keys = True
    return database


def _populate(
    database: Database, config: SyntheticConfig, rng: random.Random, prefix: str
) -> None:
    """Insert one company instance; ``prefix`` namespaces every key."""
    department_ids = []
    for index in range(config.departments):
        department_id = f"{prefix}d{index + 1}"
        department_ids.append(department_id)
        database.insert(
            "DEPARTMENT",
            {
                "ID": department_id,
                "D_NAME": _DEPARTMENT_NAMES[index % len(_DEPARTMENT_NAMES)],
                "D_DESCRIPTION": text_module.make_description(
                    rng, config.description_words
                ),
            },
        )

    project_ids = []
    for dept_index, department_id in enumerate(department_ids):
        for offset in range(config.projects_per_department):
            project_id = f"{prefix}p{len(project_ids) + 1}"
            project_ids.append(project_id)
            database.insert(
                "PROJECT",
                {
                    "ID": project_id,
                    "D_ID": department_id,
                    "P_NAME": f"project-{dept_index + 1}-{offset + 1}",
                    "P_DESCRIPTION": text_module.make_description(
                        rng, config.description_words
                    ),
                },
            )

    employee_ids = []
    for department_id in department_ids:
        for __ in range(config.employees_per_department):
            employee_id = f"{prefix}e{len(employee_ids) + 1}"
            employee_ids.append(employee_id)
            database.insert(
                "EMPLOYEE",
                {
                    "SSN": employee_id,
                    "L_NAME": rng.choice(_LAST_NAMES),
                    "S_NAME": rng.choice(_FIRST_NAMES),
                    "D_ID": department_id,
                },
            )

    works_for_count = 0
    for employee_id in employee_ids:
        assigned = rng.sample(
            project_ids, min(config.works_on_per_employee, len(project_ids))
        )
        for project_id in assigned:
            works_for_count += 1
            database.insert(
                "WORKS_FOR",
                {
                    "ESSN": employee_id,
                    "P_ID": project_id,
                    "HOURS": rng.randrange(5, 80),
                },
                label=f"{prefix}w_f{works_for_count}",
            )

    dependent_count = 0
    for employee_id in employee_ids:
        # Geometric draw with the configured expectation.
        probability = min(0.95, config.dependents_per_employee / (
            1.0 + config.dependents_per_employee))
        while rng.random() < probability:
            dependent_count += 1
            database.insert(
                "DEPENDENT",
                {
                    "ID": f"{prefix}t{dependent_count}",
                    "ESSN": employee_id,
                    "DEPENDENT_NAME": rng.choice(_FIRST_NAMES),
                },
            )


def plant(
    database: Database,
    keyword: str,
    relation: str,
    attribute: str,
    count: int,
    seed: int = 11,
) -> list[str]:
    """Plant a keyword into exactly ``count`` tuples of one relation.

    Rewrites the chosen attribute of ``count`` uniformly drawn tuples to
    include the keyword, returning the labels of the rewritten tuples.
    Raises :class:`~repro.errors.QueryError` when the relation holds fewer
    than ``count`` tuples.  Callers must rebuild derived indexes/graphs.
    """
    rng = random.Random(seed)
    records = list(database.tuples(relation))
    if count > len(records):
        raise QueryError(
            "cannot plant keyword into more tuples than exist",
            relation=relation,
            requested=count,
            available=len(records),
        )
    chosen = rng.sample(records, count)
    for record in chosen:
        current = record.values.get(attribute)
        base = str(current) if current is not None else ""
        record.values[attribute] = text_module.plant_keyword(base, keyword, rng)
    return [record.label for record in chosen]
