"""Parametric ER schema generators for property tests and ablations.

Three shapes cover the structures the paper's taxonomy distinguishes:

* :func:`chain_schema` — entity types in a line with chosen per-step
  cardinalities: the direct schema-level analogue of a cardinality
  sequence, used to validate the classifier against brute-force instance
  counting;
* :func:`star_schema` — one hub entity with satellites, producing many
  fan-in/fan-out joints;
* :func:`random_schema` — a seeded random connected schema for fuzzing.

Each generator can also materialise a small instance via
:func:`instantiate_er`, which maps the schema to relations (through
:mod:`repro.er.mapping`) and fills them with seeded random tuples.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.er.cardinality import Cardinality
from repro.er.mapping import MappingResult, map_er_to_relational
from repro.er.model import Attribute, EntityType, ERSchema, RelationshipType
from repro.relational.database import Database

__all__ = ["chain_schema", "star_schema", "random_schema", "instantiate_er"]


def _entity(name: str) -> EntityType:
    return EntityType(
        name,
        [
            Attribute("ID", is_key=True),
            Attribute("NAME"),
            Attribute("DESCRIPTION", is_text=True),
        ],
    )


def chain_schema(cardinalities: Sequence[str | Cardinality]) -> ERSchema:
    """A chain ``E0 - E1 - ... - En`` with the given step cardinalities.

    ``chain_schema(["1:N", "N:M"])`` builds three entity types where
    ``E0 1:N E1`` and ``E1 N:M E2`` — the schema-level realisation of the
    cardinality sequence, so classifier verdicts can be cross-checked
    against actual instances.
    """
    schema = ERSchema(name="chain")
    count = len(cardinalities) + 1
    for index in range(count):
        schema.add_entity_type(_entity(f"E{index}"))
    for index, cardinality in enumerate(cardinalities):
        if isinstance(cardinality, str):
            cardinality = Cardinality.parse(cardinality)
        schema.add_relationship(
            RelationshipType(
                f"R{index}", f"E{index}", f"E{index + 1}", cardinality
            )
        )
    schema.validate()
    return schema


def star_schema(satellites: int, cardinality: str | Cardinality = "1:N") -> ERSchema:
    """A hub entity ``HUB`` connected to ``satellites`` satellite entities."""
    if isinstance(cardinality, str):
        cardinality = Cardinality.parse(cardinality)
    schema = ERSchema(name="star")
    schema.add_entity_type(_entity("HUB"))
    for index in range(satellites):
        name = f"S{index}"
        schema.add_entity_type(_entity(name))
        schema.add_relationship(
            RelationshipType(f"R{index}", "HUB", name, cardinality)
        )
    schema.validate()
    return schema


def random_schema(
    entities: int,
    extra_relationships: int = 0,
    seed: int = 3,
    nm_probability: float = 0.3,
) -> ERSchema:
    """A seeded random connected ER schema.

    A random spanning tree guarantees connectivity; ``extra_relationships``
    add cycles.  Each relationship is ``N:M`` with ``nm_probability``,
    otherwise ``1:N``.
    """
    rng = random.Random(seed)
    schema = ERSchema(name="random")
    names = [f"E{index}" for index in range(entities)]
    for name in names:
        schema.add_entity_type(_entity(name))

    relationship_count = 0

    def draw_cardinality() -> Cardinality:
        if rng.random() < nm_probability:
            return Cardinality.many_to_many()
        return Cardinality.one_to_many()

    connected = [names[0]]
    for name in names[1:]:
        other = rng.choice(connected)
        schema.add_relationship(
            RelationshipType(
                f"R{relationship_count}", other, name, draw_cardinality()
            )
        )
        relationship_count += 1
        connected.append(name)

    for __ in range(extra_relationships):
        left, right = rng.sample(names, 2)
        schema.add_relationship(
            RelationshipType(
                f"R{relationship_count}", left, right, draw_cardinality()
            )
        )
        relationship_count += 1
    schema.validate()
    return schema


def instantiate_er(
    er_schema: ERSchema,
    per_entity: int = 5,
    fanout: int = 2,
    seed: int = 5,
    mapping: Optional[MappingResult] = None,
) -> tuple[Database, MappingResult]:
    """Map an ER schema to relations and fill a seeded random instance.

    ``per_entity`` tuples are created for every entity type; each ``1:N``
    relationship assigns every child a random parent; each ``N:M``
    relationship links every left tuple to ``fanout`` random right tuples.
    """
    rng = random.Random(seed)
    if mapping is None:
        mapping = map_er_to_relational(er_schema)
    database = Database(mapping.schema, enforce_foreign_keys=False)

    ids: dict[str, list[str]] = {}
    for entity in er_schema.entity_types:
        relation_name = mapping.relation_of_entity[entity.name]
        ids[entity.name] = []
        for index in range(per_entity):
            identifier = f"{entity.name.lower()}_{index}"
            ids[entity.name].append(identifier)
            database.insert(
                relation_name,
                {
                    "ID": identifier,
                    "NAME": f"{entity.name.lower()}-{index}",
                    "DESCRIPTION": f"instance {index} of {entity.name.lower()}",
                },
            )

    for relationship in er_schema.relationships:
        cardinality = relationship.cardinality
        if cardinality.is_many_to_many:
            middle_name = mapping.relation_of_relationship[relationship.name]
            middle = mapping.schema.relation(middle_name)
            left_column, right_column = middle.primary_key[:2]
            seen = set()
            for left_id in ids[relationship.left]:
                rights = rng.sample(
                    ids[relationship.right],
                    min(fanout, len(ids[relationship.right])),
                )
                for right_id in rights:
                    if (left_id, right_id) in seen:
                        continue
                    seen.add((left_id, right_id))
                    database.insert(
                        middle_name, {left_column: left_id, right_column: right_id}
                    )
            continue

        fk_name = mapping.fk_of_relationship[relationship.name]
        fk = mapping.schema.foreign_key(fk_name)
        column = fk.source_columns[0]
        holder_entity = (
            relationship.left
            if mapping.relation_of_entity[relationship.left] == fk.source
            else relationship.right
        )
        referenced_entity = relationship.other_end(holder_entity)
        used_targets: set[str] = set()
        for holder_id in ids[holder_entity]:
            record = database.get(fk.source, holder_id)
            assert record is not None
            if fk.unique:
                available = [
                    t for t in ids[referenced_entity] if t not in used_targets
                ]
                if not available:
                    continue
                target_id = rng.choice(available)
                used_targets.add(target_id)
            else:
                target_id = rng.choice(ids[referenced_entity])
            record.values[column] = target_id

    database.check_integrity()
    database.enforce_foreign_keys = True
    return database, mapping
