"""Statistics-backed ambiguity ranking — the cheap §4 approximation.

:class:`~repro.core.ranking.InstanceAmbiguityRanker` counts the *actual*
tuples around every loose joint of every candidate answer: exact, but a
graph traversal per joint per answer.  On large instances the paper's §4
idea can be approximated from precomputed aggregate statistics instead:
score a joint by the product of the *average* fan-outs of the two edges
meeting there (:class:`~repro.relational.statistics.DatabaseStatistics`).

:class:`StatisticalAmbiguityRanker` does exactly that.  It keeps the same
shape as the exact ranker — ``(ambiguity estimate, er length)``, lower is
better — so the A1 ablation can compare exact vs estimated directly: on
uniform instances the two agree on order; on skewed instances the
estimate trades accuracy for constant-time scoring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.associations import loose_joints
from repro.core.connections import Connection
from repro.relational.statistics import DatabaseStatistics

__all__ = ["StatisticalAmbiguityRanker"]


@dataclass(frozen=True)
class StatisticalAmbiguityRanker:
    """Rank by estimated joint ambiguity from aggregate fan-out statistics."""

    statistics: DatabaseStatistics
    name: str = "statistical-ambiguity"

    def _joint_estimate(self, connection: Connection, joint: int) -> float:
        steps = connection.conceptual_steps()
        step_in = steps[joint]
        step_out = steps[joint + 1]
        # The edge arriving at the joint entity is step_in's *last* stored
        # edge; the one leaving is step_out's first.
        fk_in = step_in.edge_steps[-1].edge_data["foreign_key"]
        fk_out = step_out.edge_steps[0].edge_data["foreign_key"]
        return self.statistics.expected_joint_ambiguity(fk_in, fk_out)

    def score(self, answer) -> tuple[float, ...]:
        if not isinstance(answer, Connection):
            # Non-path answers degrade to joint-count scoring.
            return (float(answer.loose_joint_count()), float(answer.er_length))
        estimate = 1.0
        for joint in loose_joints(answer.cardinalities()):
            estimate *= max(1.0, self._joint_estimate(answer, joint))
        return (estimate, float(answer.er_length))
