"""Query plans: the IR between keyword matching and answer execution.

Every query the engine can answer — AND or OR semantics, one, two or N
keywords, with or without a top-k cut — compiles to the same small plan
shape, executed by :mod:`repro.core.executor`:

    match → answer sources → merge/coverage → rank → cut

*Match* resolves keywords to tuples (the plan stores the resolved
:class:`~repro.core.matching.KeywordMatch` objects).  *Sources* are the
three enumeration primitives: :class:`SingleScan` (tuples containing
keywords), :class:`PairPaths` (simple tuple paths between two keywords'
matches) and :class:`NetworkGrowth` (joining trees covering one tuple
per keyword).  :class:`Merge` fixes how the source streams combine —
OR semantics orders by keyword coverage before the ranker's score.
:class:`Rank` and :class:`Cut` are the sort and the top-k truncation.

Plans describe *shape*, not execution strategy: the ranker, the
enumeration limits and the traversal core are supplied at execution
time, so one plan serves every ranker and both cores.  Keeping tuple
ids in the source ops (not keyword spellings) is what lets the executor
share enumeration between different query texts in a batch — two
queries whose pair ops name the same (source, target) tuples share one
path stream regardless of how their keywords were spelled.

:func:`lower_bound_for` lives here because it is plan-level metadata:
the best score any answer of a given RDB length can achieve under a
ranker.  The executor uses it to terminate enumeration early for *any*
plan (pair paths, network growth, OR coverage) — the generalisation of
the two-keyword-only logic :mod:`repro.core.topk` started with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Sequence, Union

from repro.core.matching import KeywordMatch
from repro.core.ranking import (
    ClosenessRanker,
    ErLengthRanker,
    Ranker,
    RdbLengthRanker,
)
from repro.errors import QueryError

__all__ = [
    "SingleScan",
    "PairPaths",
    "NetworkGrowth",
    "Merge",
    "Cut",
    "QueryPlan",
    "plan_query",
    "lower_bound_for",
]


def lower_bound_for(ranker: Ranker, rdb_length: int) -> Optional[tuple[float, ...]]:
    """Best possible score of any answer with ``rdb_length`` FK edges.

    Holds for connections *and* joining networks (a network's spanning
    tree has ``|tuples| - 1`` edges; collapsing interior middles can at
    most halve them, and loose joints are never negative).  ``None``
    means "no usable bound" and disables early termination.
    """
    if isinstance(ranker, RdbLengthRanker):
        return (float(rdb_length),)
    if isinstance(ranker, ErLengthRanker):
        return (float(math.ceil(rdb_length / 2)),)
    if isinstance(ranker, ClosenessRanker):
        return (0.0, float(math.ceil(rdb_length / 2)))
    return None


@dataclass(frozen=True, slots=True)
class SingleScan:
    """Emit one :class:`SingleTupleAnswer` per distinct matched tuple.

    ``indices`` selects the keyword matches whose tuples are scanned; a
    tuple matching several of them carries the union of their keywords.
    """

    indices: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class PairPaths:
    """Enumerate simple tuple paths between two keywords' match tuples.

    ``include_single_tuples`` additionally emits tuples matching both
    keywords (the AND two-keyword shape); OR plans emit singles through
    a dedicated :class:`SingleScan` instead.
    """

    first: int
    second: int
    include_single_tuples: bool = True


@dataclass(frozen=True, slots=True)
class NetworkGrowth:
    """Grow joining networks covering one match tuple per keyword."""

    indices: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class Merge:
    """How source streams combine.

    ``coverage_major`` prefixes every score with ``-covered_keywords``
    (OR semantics: answers covering more keywords rank first).
    """

    coverage_major: bool = False


@dataclass(frozen=True, slots=True)
class Cut:
    """Top-k truncation after ranking; ``k=None`` keeps everything."""

    k: Optional[int] = None


PlanSource = Union[SingleScan, PairPaths, NetworkGrowth]


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """One compiled query: resolved matches plus the stage pipeline."""

    keywords: tuple[str, ...]
    semantics: str
    matches: tuple[KeywordMatch, ...]
    sources: tuple[PlanSource, ...]
    merge: Merge
    cut: Cut
    #: Planner cost estimates aligned with ``sources`` by position
    #: (``repro.planner.cost.UnitEstimate``).  Advisory only: attached
    #: post-hoc by an adaptive engine, empty under the static planner,
    #: and never consulted for answer correctness.
    estimates: tuple = ()

    @property
    def is_empty(self) -> bool:
        """True when the plan can produce no answers."""
        return not self.sources

    def distance_sources(self):
        """Every tuple whose BFS distance row this plan's enumeration
        units will request, deduplicated, in plan order.

        The executor prefetches these rows as one multi-source block
        before streaming.  Pair paths prune against the *target* side's
        row (``distances(dst)`` in the path kernel), so each pair op
        contributes its second match's tuples; network growth prunes
        against every required tuple's row.  Single scans enumerate no
        structure and need no rows.
        """
        wanted: dict = {}
        for source in self.sources:
            if isinstance(source, PairPaths):
                for tid in self.matches[source.second].tuple_ids:
                    wanted[tid] = None
            elif isinstance(source, NetworkGrowth):
                for index in source.indices:
                    for tid in self.matches[index].tuple_ids:
                        wanted[tid] = None
        return tuple(wanted)

    def describe(self) -> str:
        """Human-readable stage listing (CLI / debugging aid)."""
        lines = [
            f"match      {', '.join(self.keywords)} "
            f"[{self.semantics}] -> "
            + ", ".join(str(len(match)) for match in self.matches)
            + " tuples"
        ]
        for position, source in enumerate(self.sources):
            if isinstance(source, SingleScan):
                line = f"scan       singles over matches {source.indices}"
            elif isinstance(source, PairPaths):
                singles = "+singles" if source.include_single_tuples else ""
                line = (
                    f"paths      matches ({source.first}, {source.second})"
                    f" {singles}".rstrip()
                )
            else:
                line = f"networks   matches {source.indices}"
            if position < len(self.estimates):
                estimate = self.estimates[position]
                line += (
                    f"  [{estimate.units} units,"
                    f" ~{estimate.est_candidates:g} cands,"
                    f" ~{estimate.est_cost:g} cost]"
                )
            lines.append(line)
        if self.estimates:
            lines.append(
                "order      adaptive: pushdown drains units cheapest "
                "distance bound first"
            )
        mode = "coverage-major" if self.merge.coverage_major else "score"
        lines.append(f"merge      {mode}")
        lines.append("rank       ranker score, render tie-break")
        lines.append(
            f"cut        top-{self.cut.k}" if self.cut.k is not None else "cut        none"
        )
        return "\n".join(lines)


def plan_query(
    matches: Sequence[KeywordMatch],
    semantics: str = "and",
    top_k: Optional[int] = None,
) -> QueryPlan:
    """Compile resolved keyword matches into one :class:`QueryPlan`.

    AND: every keyword must be covered — one keyword scans singles, two
    enumerate pair paths (singles included), three or more grow joining
    networks; an unmatched keyword empties the plan.

    OR: any non-empty keyword subset may be covered — singles over every
    populated keyword, pair paths for each populated pair, plus network
    growth when three or more keywords are populated; the merge becomes
    coverage-major.  Keywords without matches are simply dropped.
    """
    if semantics not in ("and", "or"):
        raise QueryError("semantics must be 'and' or 'or'", got=semantics)
    if not matches:
        raise QueryError("no keywords to plan")
    matches = tuple(matches)
    keywords = tuple(match.keyword for match in matches)
    cut = Cut(top_k)

    if semantics == "and":
        sources: tuple[PlanSource, ...]
        if any(match.is_empty for match in matches):
            sources = ()
        elif len(matches) == 1:
            sources = (SingleScan((0,)),)
        elif len(matches) == 2:
            sources = (PairPaths(0, 1, include_single_tuples=True),)
        else:
            sources = (NetworkGrowth(tuple(range(len(matches)))),)
        return QueryPlan(
            keywords=keywords,
            semantics=semantics,
            matches=matches,
            sources=sources,
            merge=Merge(coverage_major=False),
            cut=cut,
        )

    populated = tuple(
        index for index, match in enumerate(matches) if not match.is_empty
    )
    or_sources: list[PlanSource] = []
    if populated:
        or_sources.append(SingleScan(populated))
        or_sources.extend(
            PairPaths(first, second, include_single_tuples=False)
            for first, second in combinations(populated, 2)
        )
        if len(populated) >= 3:
            or_sources.append(NetworkGrowth(populated))
    return QueryPlan(
        keywords=keywords,
        semantics=semantics,
        matches=matches,
        sources=tuple(or_sources),
        merge=Merge(coverage_major=True),
        cut=cut,
    )
