"""Close and loose associations from cardinality constraints (paper §2).

Given the cardinality sequence ``X1:Y1, …, Xn:Yn`` of a (transitive)
relationship, the paper classifies it as:

* **immediate** (``n == 1``) — always a close association: the relationship
  itself asserts a direct semantic link, whatever its cardinality;
* **transitive functional** (``∀i Xi = 1`` or ``∀i Yi = 1``) — close: the
  connection is (inverse) functional, so entities are associated
  unambiguously;
* anything else — **loose**: the composed end-to-end cardinality is ``N:M``
  and entities may be associated "through a more general entity".

Loose paths are further distinguished by *why* they are loose:

* a **transitive N:M joint** — a middle entity with fan-in on one side and
  fan-out on the other (``… N:1 E 1:N …`` after composition of the
  surrounding steps; paper's relationship 5).  Connections through such a
  joint associate entities that may never interact at all, which is the
  paper's reason to rank connections 3 and 6 *below* 4 and 7;
* an **immediate N:M step** inside the path (paper's relationship 4): every
  adjacent pair on the connection is directly related, only the endpoint
  association is ambiguous.

:func:`loose_joints` finds the joints; :func:`classify_cardinalities`
produces the full verdict.  Both are pure functions over cardinality
sequences so they apply equally to schema-level ER paths and to
instance-level tuple connections (via their conceptual step sequences).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.er.cardinality import Cardinality, compose_path
from repro.er.paths import ERPath
from repro.errors import PathError

__all__ = [
    "AssociationKind",
    "AssociationVerdict",
    "classify_cardinalities",
    "classify_er_path",
    "loose_joints",
]


class AssociationKind(enum.Enum):
    """The paper's taxonomy of (transitive) relationships."""

    #: A single relationship — close regardless of cardinality.
    IMMEDIATE = "immediate"
    #: A transitive path, functional in at least one direction — close.
    TRANSITIVE_FUNCTIONAL = "transitive functional"
    #: A transitive path whose composition is ``N:M`` — loose.
    TRANSITIVE_NM = "transitive N:M"


@dataclass(frozen=True)
class AssociationVerdict:
    """The complete classification of one cardinality sequence.

    Attributes
    ----------
    kind:
        The taxonomy bucket (see :class:`AssociationKind`).
    is_close:
        The paper's binary verdict: immediate and transitive functional
        paths are close, transitive ``N:M`` paths are loose.
    composed:
        End-to-end cardinality of the path.
    loose_joint_positions:
        Indices ``j`` such that the middle entity between steps ``j`` and
        ``j + 1`` is a transitive-N:M joint (fan-in then fan-out).
    nm_step_positions:
        Indices of immediate ``N:M`` steps inside the path.
    """

    kind: AssociationKind
    is_close: bool
    composed: Cardinality
    loose_joint_positions: tuple[int, ...]
    nm_step_positions: tuple[int, ...]

    @property
    def loose_joint_count(self) -> int:
        """The paper's suggested ranking criterion (§4)."""
        return len(self.loose_joint_positions)

    @property
    def is_loose(self) -> bool:
        return not self.is_close

    def describe(self) -> str:
        """One-line human-readable verdict."""
        closeness = "close" if self.is_close else "loose"
        parts = [f"{self.kind.value} ({closeness}, composes to {self.composed})"]
        if self.loose_joint_positions:
            joints = ", ".join(str(i) for i in self.loose_joint_positions)
            parts.append(f"transitive N:M joints at {joints}")
        if self.nm_step_positions:
            steps = ", ".join(str(i) for i in self.nm_step_positions)
            parts.append(f"N:M steps at {steps}")
        return "; ".join(parts)


def loose_joints(cardinalities: Sequence[Cardinality]) -> tuple[int, ...]:
    """Positions of transitive-N:M joints in a cardinality sequence.

    The joint between steps ``j`` and ``j + 1`` sits at the middle entity
    ``E`` of ``… Xj:Yj E X(j+1):Y(j+1) …``.  It is loose exactly when many
    left entities map to ``E`` (``Xj ≠ 1``) *and* ``E`` maps to many right
    entities (``Y(j+1) ≠ 1``): the connection then relates entities whose
    only commonality is the shared middle entity (paper's relationship 5,
    ``project N:1 department 1:N employee``).

    >>> from repro.er.cardinality import Cardinality
    >>> loose_joints([Cardinality.parse("N:1"), Cardinality.parse("1:N")])
    (0,)
    >>> loose_joints([Cardinality.parse("1:N"), Cardinality.parse("N:M")])
    ()
    """
    joints = []
    for position in range(len(cardinalities) - 1):
        fan_in = cardinalities[position].left.is_many
        fan_out = cardinalities[position + 1].right.is_many
        if fan_in and fan_out:
            joints.append(position)
    return tuple(joints)


def classify_cardinalities(
    cardinalities: Sequence[Cardinality],
) -> AssociationVerdict:
    """Classify a cardinality sequence per the paper's taxonomy.

    Raises :class:`~repro.errors.PathError` for an empty sequence.

    >>> from repro.er.cardinality import Cardinality
    >>> verdict = classify_cardinalities(
    ...     [Cardinality.parse("1:N"), Cardinality.parse("1:N")])
    >>> verdict.kind
    <AssociationKind.TRANSITIVE_FUNCTIONAL: 'transitive functional'>
    >>> verdict.is_close
    True
    """
    cardinalities = list(cardinalities)
    if not cardinalities:
        raise PathError("cannot classify an empty cardinality sequence")

    composed = compose_path(cardinalities)
    joints = loose_joints(cardinalities)
    nm_steps = tuple(
        index
        for index, cardinality in enumerate(cardinalities)
        if cardinality.is_many_to_many
    )

    if len(cardinalities) == 1:
        kind = AssociationKind.IMMEDIATE
        close = True
    elif composed.is_functional:
        kind = AssociationKind.TRANSITIVE_FUNCTIONAL
        close = True
    else:
        kind = AssociationKind.TRANSITIVE_NM
        close = False

    return AssociationVerdict(
        kind=kind,
        is_close=close,
        composed=composed,
        loose_joint_positions=joints,
        nm_step_positions=nm_steps,
    )


def classify_er_path(path: ERPath) -> AssociationVerdict:
    """Classify a schema-level ER path (paper Table 1)."""
    return classify_cardinalities(path.cardinalities())
