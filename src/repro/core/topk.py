"""Lazy top-k search with early termination.

Full enumeration (``find_connections``) materialises every connection up
to the length bound and sorts afterwards — fine for reproduction tests,
wasteful when only the best ``k`` answers matter.  This module exploits a
structural property of the library's rankers:

    For :class:`~repro.core.ranking.RdbLengthRanker`,
    :class:`~repro.core.ranking.ErLengthRanker` and
    :class:`~repro.core.ranking.ClosenessRanker`, the score of a
    connection is bounded below by a function of its RDB length alone —
    a path with more FK edges can never score better than
    ``lower_bound(edges)``.

:func:`top_k_connections` therefore enumerates paths in increasing RDB
length (the traversal layer already yields them that way per pair) and
stops as soon as the ``k`` best answers found so far all score no worse
than the lower bound of any answer still unseen.  The result provably
equals "enumerate everything, sort, cut at k" (tested against it).

Lower bounds per ranker:

* ``rdb-length`` — a path with ``n`` edges scores exactly ``(n,)``;
* ``er-length`` — collapsing can halve the length: at least ``ceil(n/2)``;
* ``closeness`` — joints >= 0 and ER length >= ``ceil(n/2)``, so
  ``(0, ceil(n/2))``.

Rankers without a registered bound (instance ambiguity, combined content
scores) fall back to full enumeration — correctness over speed.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator, Optional, Sequence

from repro.core.connections import Connection
from repro.core.matching import KeywordMatch
from repro.core.ranking import (
    ClosenessRanker,
    ErLengthRanker,
    Ranker,
    RdbLengthRanker,
    rank_connections,
)
from repro.core.search import SearchLimits, find_connections
from repro.errors import QueryError
from repro.graph.data_graph import DataGraph
from repro.graph.traversal import enumerate_simple_paths

__all__ = ["lower_bound_for", "top_k_connections"]


def lower_bound_for(ranker: Ranker, rdb_length: int) -> Optional[tuple[float, ...]]:
    """Best possible score of any connection with ``rdb_length`` edges.

    None means "no usable bound" and disables early termination.
    """
    if isinstance(ranker, RdbLengthRanker):
        return (float(rdb_length),)
    if isinstance(ranker, ErLengthRanker):
        return (float(math.ceil(rdb_length / 2)),)
    if isinstance(ranker, ClosenessRanker):
        return (0.0, float(math.ceil(rdb_length / 2)))
    return None


def _keyword_map(matches, tids):
    result = {}
    for match in matches:
        member_set = set(match.tuple_ids)
        for tid in tids:
            if tid in member_set:
                result.setdefault(tid, set()).add(match.keyword)
    return {tid: frozenset(kw) for tid, kw in result.items()}


def _paths_by_length(
    data_graph: DataGraph,
    matches: Sequence[KeywordMatch],
    limits: SearchLimits,
) -> Iterator[Connection]:
    """All pairwise connections, globally ordered by RDB length."""
    first, second = matches
    generators = []
    for source in first.tuple_ids:
        for target in second.tuple_ids:
            if source == target:
                continue
            generators.append(
                enumerate_simple_paths(
                    data_graph,
                    source,
                    target,
                    limits.max_rdb_length,
                    max_paths=limits.max_paths_per_pair,
                )
            )
    # Merge the per-pair (already length-ordered) streams by length.
    heap = []
    for index, generator in enumerate(generators):
        step_list = next(generator, None)
        if step_list is not None:
            heap.append((len(step_list), index, step_list, generator))
    heapq.heapify(heap)
    while heap:
        length, index, step_list, generator = heapq.heappop(heap)
        tids = [step_list[0].source] + [s.target for s in step_list]
        yield Connection(data_graph, step_list, _keyword_map(matches, tids))
        following = next(generator, None)
        if following is not None:
            heapq.heappush(heap, (len(following), index, following, generator))


def top_k_connections(
    data_graph: DataGraph,
    matches: Sequence[KeywordMatch],
    ranker: Ranker,
    k: int,
    limits: SearchLimits = SearchLimits(),
) -> list[tuple[Connection, tuple[float, ...]]]:
    """The best ``k`` connections under ``ranker``, with early termination.

    Equivalent to fully enumerating and sorting (same answers, same order)
    but stops once no unseen path can improve the current top-k.  Two
    keywords only — the paper's query shape.
    """
    if len(matches) != 2:
        raise QueryError(
            "top_k_connections needs exactly two keywords",
            keywords=[m.keyword for m in matches],
        )
    if k <= 0:
        return []
    if any(match.is_empty for match in matches):
        return []

    bound_available = lower_bound_for(ranker, 1) is not None
    if not bound_available:
        answers = [
            answer
            for answer in find_connections(
                data_graph, matches, limits, include_single_tuples=False
            )
            if isinstance(answer, Connection)
        ]
        return rank_connections(answers, ranker)[:k]

    best: list[tuple[tuple[float, ...], str, Connection]] = []
    for connection in _paths_by_length(data_graph, matches, limits):
        bound = lower_bound_for(ranker, connection.rdb_length)
        if len(best) >= k and bound is not None and bound > best[-1][0]:
            # Every remaining path is at least this long, hence at least
            # this badly scored: the top-k is final.
            break
        score = ranker.score(connection)
        entry = (score, connection.render(), connection)
        best.append(entry)
        best.sort(key=lambda item: (item[0], item[1]))
        del best[k:]
    return [(connection, score) for score, __, connection in best]
