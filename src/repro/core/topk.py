"""Lazy top-k search with early termination (legacy two-keyword API).

Full enumeration (``find_connections``) materialises every connection up
to the length bound and sorts afterwards — fine for reproduction tests,
wasteful when only the best ``k`` answers matter.  This module's
ranker-lower-bound trick —

    For :class:`~repro.core.ranking.RdbLengthRanker`,
    :class:`~repro.core.ranking.ErLengthRanker` and
    :class:`~repro.core.ranking.ClosenessRanker`, the score of an answer
    is bounded below by a function of its RDB length alone — a path with
    more FK edges can never score better than ``lower_bound(edges)``

— now lives in the query pipeline, generalised to every plan shape:
:func:`~repro.core.plan.lower_bound_for` is the bound table and
:class:`~repro.core.executor.Executor` applies it to pair paths, joining
networks and OR coverage ordering alike.  :func:`top_k_connections` is
kept as the paper-shaped two-keyword entry point and simply compiles to
a single-source plan (pair paths, no single tuples) with a top-k cut;
the result provably equals "enumerate everything, sort, cut at k"
(tested against it).

Enumeration runs on the pruned bidirectional traversal core by default
and can share the engine's
:class:`~repro.graph.fast_traversal.TraversalCache`;
``use_fast_traversal=False`` is the brute-force escape hatch.  Rankers
without a registered bound (instance ambiguity, combined content
scores) fall back to full enumeration — correctness over speed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.connections import Connection
from repro.core.executor import Executor
from repro.core.matching import KeywordMatch
from repro.core.plan import Cut, Merge, PairPaths, QueryPlan, lower_bound_for
from repro.core.ranking import Ranker
from repro.core.search import SearchLimits
from repro.errors import QueryError
from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import TraversalCache

__all__ = ["lower_bound_for", "top_k_connections"]


def top_k_connections(
    data_graph: DataGraph,
    matches: Sequence[KeywordMatch],
    ranker: Ranker,
    k: int,
    limits: SearchLimits = SearchLimits(),
    *,
    use_fast_traversal: bool = True,
    core: Optional[str] = None,
    cache: Optional[TraversalCache] = None,
) -> list[tuple[Connection, tuple[float, ...]]]:
    """The best ``k`` connections under ``ranker``, with early termination.

    Equivalent to fully enumerating and sorting (same answers, same order)
    but stops once no unseen path can improve the current top-k.  Two
    keywords only — the paper's query shape; the engine's pipeline serves
    every other shape through the same executor.

    Pass the engine's ``cache`` to reuse its distance maps across calls;
    ``use_fast_traversal=False`` enumerates through the brute-force
    networkx core instead (identical answers, no pruning).
    """
    if len(matches) != 2:
        raise QueryError(
            "top_k_connections needs exactly two keywords",
            keywords=[m.keyword for m in matches],
        )
    if k <= 0:
        return []
    if any(match.is_empty for match in matches):
        return []

    matches = tuple(matches)
    plan = QueryPlan(
        keywords=tuple(match.keyword for match in matches),
        semantics="and",
        matches=matches,
        sources=(PairPaths(0, 1, include_single_tuples=False),),
        merge=Merge(coverage_major=False),
        cut=Cut(k),
    )
    executor = Executor(
        data_graph, use_fast_traversal=use_fast_traversal, core=core, cache=cache
    )
    return [
        (result.answer, result.score)
        for result in executor.run(plan, ranker, limits)
    ]
