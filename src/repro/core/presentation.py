"""Result presentation: grouping by closeness and context size (paper §4).

The paper closes with: "there should be an alternative where the user could
select longer paths, if s/he is interested in larger context of matched
values or documents."  This module provides that alternative as a
presentation layer over ranked results:

* :func:`group_results` — partition ranked answers into labelled groups
  (close–short first, then close–long "larger context", then loose), each
  group keeping the ranker's internal order;
* :func:`larger_context` — the §4 selector: answers whose conceptual
  length exceeds a threshold but that do **not** lose the close
  association (schema-close, or loose-but-instance-close);
* :func:`filter_instance_close` — drop answers whose implied association
  has no corroboration in the instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.ambiguity import is_instance_close
from repro.core.connections import Connection
from repro.core.engine import SearchResult

__all__ = ["AnswerGroup", "group_results", "larger_context",
           "filter_instance_close"]


@dataclass(frozen=True)
class AnswerGroup:
    """A labelled slice of ranked results (internal order preserved)."""

    label: str
    results: tuple[SearchResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def describe(self) -> str:
        lines = [f"{self.label} ({len(self.results)})"]
        for result in self.results:
            lines.append(f"  #{result.rank}  {result.answer.render()}")
        return "\n".join(lines)


def _is_close(result: SearchResult) -> bool:
    answer = result.answer
    if isinstance(answer, Connection):
        return answer.verdict().is_close
    # Single tuples are trivially close; networks use their joint count.
    return answer.loose_joint_count() == 0


def group_results(
    results: Sequence[SearchResult], short_er_length: int = 1
) -> tuple[AnswerGroup, ...]:
    """Partition ranked results into the paper's three presentation groups.

    * ``close`` — schema-close answers at conceptual length <=
      ``short_er_length``;
    * ``close, larger context`` — answers that "do not lose the close
      association" but carry more context: schema-close answers that are
      conceptually longer, plus schema-loose answers corroborated at the
      instance level (the paper's connections 4 and 7);
    * ``loose`` — uncorroborated loose answers (the paper's 3 and 6).

    Empty groups are omitted; each group preserves the incoming order.
    """
    close_short: list[SearchResult] = []
    close_long: list[SearchResult] = []
    loose: list[SearchResult] = []
    for result in results:
        answer = result.answer
        if _is_close(result):
            if answer.er_length <= short_er_length:
                close_short.append(result)
            else:
                close_long.append(result)
        elif isinstance(answer, Connection) and is_instance_close(answer):
            close_long.append(result)
        else:
            loose.append(result)
    groups = [
        AnswerGroup("close", tuple(close_short)),
        AnswerGroup("close, larger context", tuple(close_long)),
        AnswerGroup("loose", tuple(loose)),
    ]
    return tuple(group for group in groups if group.results)


def larger_context(
    results: Sequence[SearchResult],
    min_er_length: int = 2,
    require_instance_close: bool = True,
) -> tuple[SearchResult, ...]:
    """The §4 selector: longer answers that keep the close association.

    Returns answers with conceptual length >= ``min_er_length`` that are
    schema-close, or — when ``require_instance_close`` — schema-loose but
    corroborated at the instance level (the paper's connections 4 and 7,
    not 3 and 6).
    """
    selected = []
    for result in results:
        answer = result.answer
        if answer.er_length < min_er_length:
            continue
        if _is_close(result):
            selected.append(result)
            continue
        if (
            require_instance_close
            and isinstance(answer, Connection)
            and is_instance_close(answer)
        ):
            selected.append(result)
    return tuple(selected)


def filter_instance_close(
    results: Sequence[SearchResult],
) -> tuple[SearchResult, ...]:
    """Keep only answers whose association holds at the instance level."""
    kept = []
    for result in results:
        answer = result.answer
        if not isinstance(answer, Connection):
            if _is_close(result):
                kept.append(result)
            continue
        if is_instance_close(answer):
            kept.append(result)
    return tuple(kept)
