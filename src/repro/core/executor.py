"""Plan execution: one streaming path for every query shape.

The executor runs a :class:`~repro.core.plan.QueryPlan` and yields
ranked :class:`SearchResult` objects.  Two modes share all enumeration
machinery:

* **Full mode** reproduces the pre-pipeline engine bit for bit: every
  source is drained in plan order (the exact enumeration order the
  legacy ``search`` / ``_search_or`` code paths had, including where a
  :class:`~repro.errors.SearchLimitError` fires), then answers are
  sorted by ``(score, rendered text)`` and cut.
* **Pushdown mode** (a top-k cut plus a ranker with a registered lower
  bound, see :func:`~repro.core.plan.lower_bound_for`) interleaves the
  sources by their *score lower bounds* and stops enumerating as soon
  as no unseen answer can still enter the result.  The output is
  provably identical to full mode — same answers, same order, same
  scores — because every source yields in non-decreasing bound order:
  pair paths arrive by increasing RDB length (a heap merges the
  per-tuple-pair streams), joining networks by increasing tuple count
  (RDB length is ``|tuples| - 1``), and singles are exact-scored up
  front.  Emission waits until the buffered best *strictly* beats every
  remaining bound, so ties broken by rendered text can never be lost.
  A budget error that full enumeration would hit may simply never be
  reached — that laziness is the point of the pushdown.

OR semantics ride the same machinery: the merge is *coverage-major*, so
scores (and bounds) are prefixed with ``-covered_keywords`` — pair
sources cover exactly their two keywords and networks cover every
populated keyword, which keeps the prefix constant per source and the
bounds monotone.

**Plan sharing.**  All enumeration goes through a
:class:`SharedEnumerations` table of
:class:`~repro.graph.fast_traversal.SharedStream` objects keyed by the
enumeration signature (tuple pair + limits for paths, required tuple
sequence + limits for trees).  Identical sub-plans — across the sources
of one query or across different query texts of a batch — execute once
and fan out; ``KeywordSearchEngine.search_batch`` passes one table for
the whole batch.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from itertools import product
from typing import Iterator, Optional, Sequence, Union

from repro.core.connections import Connection
from repro.core.matching import KeywordMatch
from repro.core.plan import (
    NetworkGrowth,
    PairPaths,
    QueryPlan,
    SingleScan,
    lower_bound_for,
)
from repro.core.ranking import Ranker
from repro.core.search import (
    JoiningNetwork,
    SearchLimits,
    SingleTupleAnswer,
    _keyword_map,
)
from repro.graph.csr import (
    _UNREACHABLE,
    csr_enumerate_joining_trees,
    csr_enumerate_simple_paths,
    resolve_core,
)
from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import (
    SharedStream,
    TraversalCache,
    fast_enumerate_joining_trees,
    fast_enumerate_simple_paths,
)
from repro.graph.traversal import (
    enumerate_joining_trees,
    enumerate_simple_paths,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.planner.cost import resolve_adaptive
from repro.relational.database import TupleId

__all__ = [
    "SearchResult",
    "ExecutionStats",
    "SharedEnumerations",
    "Executor",
]

AnswerType = Union[Connection, JoiningNetwork, SingleTupleAnswer]


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One ranked answer: the answer object, its score and its rank."""

    answer: AnswerType
    score: tuple[float, ...]
    rank: int

    def render(self) -> str:
        return self.answer.render()


@dataclass(slots=True)
class ExecutionStats:
    """Observability for one plan execution.

    ``candidates`` counts answers constructed and scored — in pushdown
    mode this is how far enumeration actually ran before terminating,
    the number benchmarks compare against a full run to measure skipped
    work.  ``emitted`` counts results yielded; ``pushdown`` records
    whether early termination was active.  ``shard_skips`` counts
    enumeration units (tuple pairs, network assignments) a shard plan
    proved cross-component and never set up — the sharded serving win.
    ``pruned`` counts units the adaptive planner proved empty from
    distance bounds and likewise never set up.
    """

    candidates: int = 0
    emitted: int = 0
    pushdown: bool = False
    shard_skips: int = 0
    pruned: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        """Fold another run's counters in (batch aggregation).

        Every field folds with a commutative, associative operation
        (sums and a disjunction), so aggregating worker results in
        whatever order a process pool completes them yields one
        deterministic total — the parallel executor relies on this.
        """
        self.candidates += other.candidates
        self.emitted += other.emitted
        self.pushdown = self.pushdown or other.pushdown
        self.shard_skips += other.shard_skips
        self.pruned += other.pruned

    def to_dict(self) -> dict:
        """JSON-safe view (CLI ``--json``, trace summaries)."""
        return {
            "candidates": self.candidates,
            "emitted": self.emitted,
            "pushdown": self.pushdown,
            "shard_skips": self.shard_skips,
            "pruned": self.pruned,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionStats":
        return cls(
            candidates=int(payload.get("candidates", 0)),
            emitted=int(payload.get("emitted", 0)),
            pushdown=bool(payload.get("pushdown", False)),
            shard_skips=int(payload.get("shard_skips", 0)),
            pruned=int(payload.get("pruned", 0)),
        )


class SharedEnumerations:
    """Keyed table of shared enumeration streams (plan-level sharing).

    ``hits`` counts sub-plan requests served by an existing stream —
    enumerations that would have run again without sharing; ``misses``
    counts streams actually created.
    """

    def __init__(self) -> None:
        self._streams: dict[tuple, SharedStream] = {}
        self.hits = 0
        self.misses = 0

    def stream(self, key: tuple, factory) -> SharedStream:
        shared = self._streams.get(key)
        if shared is None:
            self.misses += 1
            shared = SharedStream(factory)
            self._streams[key] = shared
        else:
            self.hits += 1
        return shared

    def __len__(self) -> int:
        return len(self._streams)


#: Heap-entry marker for an enumeration unit whose stream has not been
#: built yet (adaptive pushdown): the entry carries an admissible
#: distance bound and the unit signature instead of real items.  Never
#: compared — the unique unit index before it settles every heap order.
_LAZY = object()


def _op_label(op) -> str:
    """Span name of one plan source (explain keys ops by tag, not name)."""
    if isinstance(op, SingleScan):
        return "op.scan"
    if isinstance(op, PairPaths):
        return "op.paths"
    return "op.networks"


def _coverage(answer: AnswerType) -> int:
    """Distinct query keywords an answer covers (OR-semantics major key)."""
    if isinstance(answer, (SingleTupleAnswer, JoiningNetwork)):
        return len(answer.covered_keywords)
    covered: set[str] = set()
    for keywords in answer.keyword_matches.values():
        covered |= keywords
    return len(covered)


class Executor:
    """Runs query plans over one data graph, streaming ranked answers."""

    def __init__(
        self,
        data_graph: DataGraph,
        *,
        use_fast_traversal: bool = True,
        core: Optional[str] = None,
        cache: Optional[TraversalCache] = None,
        shared: Optional[SharedEnumerations] = None,
        shard_plan=None,
        adaptive: Optional[bool] = None,
    ) -> None:
        self.data_graph = data_graph
        #: Traversal kernel: ``csr`` (compiled integer kernels, the
        #: default), ``fast`` (pruned TupleId core) or ``reference``
        #: (brute-force networkx).  ``use_fast_traversal`` is the legacy
        #: boolean selector; ``core`` wins when both are given.
        self.core = resolve_core(use_fast_traversal, core)
        self.use_fast_traversal = self.core != "reference"
        if cache is None or cache.data_graph is not data_graph:
            cache = TraversalCache(data_graph)
        self.cache = cache
        self.shared = shared if shared is not None else SharedEnumerations()
        #: Optional :class:`~repro.scale.shards.ShardPlan`.  Execution
        #: stays bit-identical with or without one: every answer lives
        #: inside one connected component, so an enumeration unit whose
        #: tuples the plan maps to *different* shards can yield nothing
        #: and is skipped before any stream is set up; same-shard units
        #: additionally run the CSR kernels on the shard's own compiled
        #: graph, whose scratch state is O(shard) instead of O(graph).
        self.shard_plan = shard_plan
        #: Selectivity-ordered pushdown: enumeration units enter the
        #: state heaps on admissible BFS distance bounds (streams built
        #: lazily, provably-empty units skipped) instead of eagerly
        #: pulling every unit's first item.  Answers are bit-identical
        #: either way — the bounds are admissible, so emission only gets
        #: cheaper.  Resolved here so ``REPRO_STATIC_PLAN`` freezes the
        #: whole process; requires the compiled ``csr`` core's cheap
        #: distance rows, other cores keep the static order.
        self.adaptive = resolve_adaptive(adaptive)
        self.stats = ExecutionStats()
        #: Live span of the run in flight (``None`` while tracing is
        #: off or between runs); the mode-specific emitters hang their
        #: per-op and rank/cut children off it.
        self._exec_span = None

    # ------------------------------------------------------------------
    # shard routing
    # ------------------------------------------------------------------
    def _unit_shard(self, tids) -> object:
        """Classify one enumeration unit against the shard plan.

        Returns a shard id (run on that shard's graph), ``None`` (no
        plan, or a tuple unknown to it — run globally, never skip), or
        the :data:`~repro.scale.shards.CROSS_SHARD` sentinel (provably
        unanswerable — skip the unit entirely).
        """
        if self.shard_plan is None:
            return None
        return self.shard_plan.shard_of_all(tids)

    def _unit_cache(self, shard) -> TraversalCache:
        """The cache a same-shard unit's kernels should run on."""
        if shard is None or self.core != "csr":
            return self.cache
        return self.shard_plan.cache_for(shard)

    def _prefetch_distances(self, plan: QueryPlan) -> None:
        """Warm the compiled graph's distance-row cache for every source
        the plan's enumeration units will prune against, as one
        multi-source BFS block per graph instead of one probe at a time.

        Purely a cache effect: blocks are bit-identical to on-demand
        rows on either backend, so answers, order and budget points are
        unchanged.  Rows for units the kernels later skip (disconnected
        or over-budget pairs) may be computed ahead of need; the LRU
        keeps that bounded.  Under a shard plan the tuples are grouped
        per shard graph — cross-shard/unknown tuples are left to the
        global on-demand path.
        """
        tids = plan.distance_sources()
        if not tids or self.cache is None:
            return
        if self.shard_plan is None:
            graphs = {None: (self.cache.frozen(), tids)}
        else:
            graphs = {}
            for tid in tids:
                shard = self.shard_plan.shard_of(tid)
                if shard is None:
                    continue
                if shard not in graphs:
                    graphs[shard] = (self.shard_plan.graph_for(shard), [])
                graphs[shard][1].append(tid)
        for frozen, members in graphs.values():
            nodes = [
                node
                for tid in members
                if (node := frozen.node_of(tid)) is not None
            ]
            if len(nodes) > 1:
                frozen.distances_block(nodes)

    # ------------------------------------------------------------------
    # adaptive bounds (selectivity-ordered pushdown, csr core only)
    # ------------------------------------------------------------------
    def _unit_distance(self, source, target, shard, rows) -> Optional[int]:
        """Admissible lower bound on the RDB length of any simple path
        between two tuples: their BFS distance in the compiled graph
        (rows are warmed by :meth:`_prefetch_distances` and memoised in
        ``rows`` per target).  ``None`` means no bound is available
        (tuple not interned) and the caller must fall back to eager
        static setup; :data:`_UNREACHABLE` or more proves the pair
        yields nothing.
        """
        frozen = self._unit_cache(shard).frozen()
        row_key = (shard, target)
        row = rows.get(row_key)
        if row is None:
            node = frozen.node_of(target)
            if node is None:
                return None
            row = frozen.distances(node)
            rows[row_key] = row
        source_node = frozen.node_of(source)
        if source_node is None:
            return None
        if source_node >= len(row):
            return _UNREACHABLE
        return row[source_node]

    def _network_bound(self, required, shard, rows) -> Optional[int]:
        """Admissible lower bound on the tuple count of any joining tree
        over ``required``: a connected tree must contain a path between
        its two farthest required tuples, so it holds at least
        ``max(len(required), max pairwise BFS distance + 1)`` tuples.
        ``None`` → fall back to eager setup; :data:`_UNREACHABLE` or
        more → provably no tree exists.
        """
        frozen = self._unit_cache(shard).frozen()
        nodes = []
        for tid in required:
            node = frozen.node_of(tid)
            if node is None:
                return None
            nodes.append((tid, node))
        bound = len(required)
        for position, (tid, node) in enumerate(nodes[:-1]):
            row_key = (shard, tid)
            row = rows.get(row_key)
            if row is None:
                row = frozen.distances(node)
                rows[row_key] = row
            for __, other in nodes[position + 1:]:
                if other >= len(row):
                    return _UNREACHABLE
                distance = row[other]
                if distance >= _UNREACHABLE:
                    return _UNREACHABLE
                if distance + 1 > bound:
                    bound = distance + 1
        return bound

    def _note_adaptive(self, heap, pruned: int) -> None:
        """Planner metrics for one adaptive heap build (metered runs).

        ``planner.reorders`` counts units whose drain rank differs from
        their static plan position — how much the distance bounds
        actually reshuffled enumeration; ``planner.pruned_units`` counts
        units proven empty and never set up.
        """
        if not obs_metrics.ENABLED:
            return
        registry = obs_metrics.REGISTRY
        if pruned:
            registry.inc("planner.pruned_units", pruned)
        if len(heap) > 1:
            drained = [
                entry[1]
                for entry in sorted(
                    heap, key=lambda entry: (entry[0], entry[1])
                )
            ]
            moved = sum(
                1
                for drain, plan_order in zip(drained, sorted(drained))
                if drain != plan_order
            )
            if moved:
                registry.inc("planner.reorders", moved)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run(
        self,
        plan: QueryPlan,
        ranker: Ranker,
        limits: Optional[SearchLimits] = None,
        pushdown: Optional[bool] = None,
    ) -> list[SearchResult]:
        """Execute a plan to completion, best answers first."""
        return list(self.stream(plan, ranker, limits, pushdown=pushdown))

    def stream(
        self,
        plan: QueryPlan,
        ranker: Ranker,
        limits: Optional[SearchLimits] = None,
        pushdown: Optional[bool] = None,
    ) -> Iterator[SearchResult]:
        """Execute a plan lazily, yielding ranked answers incrementally.

        ``pushdown=None`` (auto) enables early termination when the plan
        has a top-k cut and the ranker has a lower bound; ``True`` forces
        bound-ordered streaming even without a cut (answers emerge as
        soon as they are provably final); ``False`` forces the legacy
        enumerate-sort-cut path.  Modes are bit-identical in output.
        """
        limits = limits or SearchLimits()
        self.stats = stats = ExecutionStats()
        bounded = lower_bound_for(ranker, 1) is not None
        if pushdown is None:
            use_pushdown = bounded and plan.cut.k is not None
        else:
            use_pushdown = pushdown and bounded
        stats.pushdown = use_pushdown

        # Observability is sampled once per run; with both layers off
        # the whole run pays two module-attribute reads and no more.
        # Spans are accumulated as direct children (never pushed on the
        # trace stack) because this generator can suspend mid-span.
        tracing = obs_trace.ENABLED
        metered = obs_metrics.ENABLED
        exec_span = None
        started = 0.0
        cache_hits = cache_misses = shared_hits = shared_misses = 0
        if tracing or metered:
            cache_hits, cache_misses = self.cache.hits, self.cache.misses
            shared_hits, shared_misses = self.shared.hits, self.shared.misses
        if tracing:
            host = obs_trace.current_trace()
            if host is None:
                host = obs_trace.ambient_trace()
            exec_span = host.current().child(
                "executor.execute",
                mode="pushdown" if use_pushdown else "full",
                core=self.core,
            )
            started = time.perf_counter()
        self._exec_span = exec_span

        if self.core == "csr":
            if exec_span is not None:
                t0 = time.perf_counter()
                self._prefetch_distances(plan)
                exec_span.child("prefetch").add_time(time.perf_counter() - t0)
            else:
                self._prefetch_distances(plan)

        if use_pushdown:
            emitter = self._stream_pushdown(plan, ranker, limits)
        else:
            emitter = self._stream_full(plan, ranker, limits)
        try:
            for position, (answer, score) in enumerate(emitter):
                stats.emitted += 1
                yield SearchResult(answer=answer, score=score, rank=position + 1)
        finally:
            # Runs at exhaustion *and* when a streaming consumer closes
            # the generator early — the span/metric totals always land.
            if exec_span is not None:
                exec_span.add_time(time.perf_counter() - started)
                frozen = self.cache._frozen
                exec_span.tag(
                    backend=(
                        frozen.backend_name
                        if self.core == "csr" and frozen is not None
                        else "-"
                    )
                )
                exec_span.add(
                    candidates=stats.candidates,
                    emitted=stats.emitted,
                    shard_skips=stats.shard_skips,
                    pruned=stats.pruned,
                    cache_hits=self.cache.hits - cache_hits,
                    cache_misses=self.cache.misses - cache_misses,
                )
                self._exec_span = None
            if metered:
                registry = obs_metrics.REGISTRY
                registry.inc("executor.runs")
                registry.inc("executor.candidates", stats.candidates)
                registry.inc("executor.emitted", stats.emitted)
                if stats.shard_skips:
                    registry.inc("executor.shard_skips", stats.shard_skips)
                if use_pushdown:
                    registry.inc("executor.pushdown_runs")
                for name, delta in (
                    ("traversal_cache.hits", self.cache.hits - cache_hits),
                    ("traversal_cache.misses", self.cache.misses - cache_misses),
                    ("shared_enum.hits", self.shared.hits - shared_hits),
                    ("shared_enum.misses", self.shared.misses - shared_misses),
                ):
                    if delta:
                        registry.inc(name, delta)
                registry.observe("executor.candidates_per_run", stats.candidates)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def _score(
        self, answer: AnswerType, ranker: Ranker, coverage_major: bool
    ) -> tuple[float, ...]:
        self.stats.candidates += 1
        score = ranker.score(answer)
        if coverage_major:
            score = (-_coverage(answer),) + score
        return score

    # ------------------------------------------------------------------
    # shared enumeration streams
    # ------------------------------------------------------------------
    def _path_stream(
        self,
        source: TupleId,
        target: TupleId,
        limits: SearchLimits,
        cache: Optional[TraversalCache] = None,
    ) -> SharedStream:
        cache = cache if cache is not None else self.cache
        key = (
            "paths",
            source,
            target,
            limits.max_rdb_length,
            limits.max_paths_per_pair,
            self.core,
        )
        if self.core == "csr":
            factory = lambda: csr_enumerate_simple_paths(
                self.data_graph,
                source,
                target,
                limits.max_rdb_length,
                max_paths=limits.max_paths_per_pair,
                cache=cache,
            )
        elif self.core == "fast":
            factory = lambda: fast_enumerate_simple_paths(
                self.data_graph,
                source,
                target,
                limits.max_rdb_length,
                max_paths=limits.max_paths_per_pair,
                cache=cache,
            )
        else:
            factory = lambda: enumerate_simple_paths(
                self.data_graph,
                source,
                target,
                limits.max_rdb_length,
                max_paths=limits.max_paths_per_pair,
            )
        return self.shared.stream(key, factory)

    def _tree_stream(
        self,
        required: tuple[TupleId, ...],
        limits: SearchLimits,
        cache: Optional[TraversalCache] = None,
    ) -> SharedStream:
        cache = cache if cache is not None else self.cache
        key = (
            "trees",
            required,
            limits.max_tuples,
            limits.max_networks,
            self.core,
        )
        if self.core == "csr":
            factory = lambda: csr_enumerate_joining_trees(
                self.data_graph,
                list(required),
                limits.max_tuples,
                max_results=limits.max_networks,
                cache=cache,
            )
        elif self.core == "fast":
            factory = lambda: fast_enumerate_joining_trees(
                self.data_graph,
                list(required),
                limits.max_tuples,
                max_results=limits.max_networks,
                cache=cache,
            )
        else:
            factory = lambda: enumerate_joining_trees(
                self.data_graph,
                list(required),
                limits.max_tuples,
                max_results=limits.max_networks,
            )
        return self.shared.stream(key, factory)

    # ------------------------------------------------------------------
    # source enumeration (legacy order — full mode)
    # ------------------------------------------------------------------
    def _iter_singles(
        self, matches: Sequence[KeywordMatch], op: SingleScan
    ) -> Iterator[SingleTupleAnswer]:
        covered: dict[TupleId, set[str]] = {}
        for index in op.indices:
            match = matches[index]
            for tid in match.tuple_ids:
                covered.setdefault(tid, set()).add(match.keyword)
        for tid, keywords in covered.items():
            yield SingleTupleAnswer(self.data_graph, tid, frozenset(keywords))

    def _pair_singles(
        self, first: KeywordMatch, second: KeywordMatch
    ) -> list[SingleTupleAnswer]:
        """Tuples matching both keywords of a pair, in first-match order."""
        second_set = set(second.tuple_ids)
        return [
            SingleTupleAnswer(
                self.data_graph,
                tid,
                frozenset((first.keyword, second.keyword)),
            )
            for tid in first.tuple_ids
            if tid in second_set
        ]

    def _iter_pair(
        self, matches: Sequence[KeywordMatch], op: PairPaths, limits: SearchLimits
    ) -> Iterator[Connection | SingleTupleAnswer]:
        first, second = matches[op.first], matches[op.second]
        if op.include_single_tuples:
            yield from self._pair_singles(first, second)
        pair = (first, second)
        from repro.scale.shards import CROSS_SHARD

        for source in first.tuple_ids:
            for target in second.tuple_ids:
                if source == target:
                    continue
                shard = self._unit_shard((source, target))
                if shard is CROSS_SHARD:
                    # Different components: the pair can have no paths
                    # (and therefore no budget error either) — exactly
                    # what an unsharded run would discover the slow way.
                    self.stats.shard_skips += 1
                    continue
                stream = self._path_stream(
                    source, target, limits, cache=self._unit_cache(shard)
                )
                for steps in stream:
                    tids = [steps[0].source] + [s.target for s in steps]
                    yield Connection(
                        self.data_graph, steps, _keyword_map(pair, tids)
                    )

    def _network_assignments(
        self, matches: Sequence[KeywordMatch], op: NetworkGrowth
    ) -> Iterator[tuple[dict[str, TupleId], tuple[TupleId, ...]]]:
        picked = [matches[index] for index in op.indices]
        for assignment in product(*(match.tuple_ids for match in picked)):
            keyword_tuples = {
                match.keyword: tid for match, tid in zip(picked, assignment)
            }
            yield keyword_tuples, tuple(dict.fromkeys(assignment))

    def _iter_networks(
        self,
        matches: Sequence[KeywordMatch],
        op: NetworkGrowth,
        limits: SearchLimits,
    ) -> Iterator[JoiningNetwork]:
        from repro.scale.shards import CROSS_SHARD

        seen: set[tuple] = set()
        for keyword_tuples, required in self._network_assignments(matches, op):
            shard = self._unit_shard(required)
            if shard is CROSS_SHARD:
                # A joining tree is connected; tuples in different
                # components can never share one.
                self.stats.shard_skips += 1
                continue
            stream = self._tree_stream(
                required, limits, cache=self._unit_cache(shard)
            )
            for tuple_set in stream:
                key = (tuple_set, tuple(sorted(keyword_tuples.items())))
                if key in seen:
                    continue
                seen.add(key)
                yield JoiningNetwork(self.data_graph, tuple_set, keyword_tuples)

    def _stream_full(
        self, plan: QueryPlan, ranker: Ranker, limits: SearchLimits
    ) -> Iterator[tuple[AnswerType, tuple[float, ...]]]:
        coverage_major = plan.merge.coverage_major
        exec_span = self._exec_span
        answers: list[AnswerType] = []
        for position, op in enumerate(plan.sources):
            if exec_span is not None:
                op_span = exec_span.child(_op_label(op), op=position)
                produced0 = len(answers)
                skips0 = self.stats.shard_skips
                t0 = time.perf_counter()
            if isinstance(op, SingleScan):
                answers.extend(self._iter_singles(plan.matches, op))
            elif isinstance(op, PairPaths):
                answers.extend(self._iter_pair(plan.matches, op, limits))
            else:
                answers.extend(self._iter_networks(plan.matches, op, limits))
            if exec_span is not None:
                op_span.add_time(time.perf_counter() - t0)
                op_span.add(
                    produced=len(answers) - produced0,
                    shard_skips=self.stats.shard_skips - skips0,
                )
        if exec_span is not None:
            t0 = time.perf_counter()
        scored = [
            (answer, self._score(answer, ranker, coverage_major))
            for answer in answers
        ]
        scored.sort(key=lambda pair: (pair[1], pair[0].render()))
        if plan.cut.k is not None:
            scored = scored[: plan.cut.k]
        if exec_span is not None:
            exec_span.child("rank_cut").add_time(time.perf_counter() - t0)
        yield from scored

    # ------------------------------------------------------------------
    # pushdown mode: bound-ordered streaming with early termination
    # ------------------------------------------------------------------
    def _scored_singles(self, answers, ranker, coverage_major):
        scored = [
            (self._score(answer, ranker, coverage_major), answer.render(), answer)
            for answer in answers
        ]
        scored.sort(key=lambda item: (item[0], item[1]))
        return scored

    def _make_state(self, plan, op, ranker, limits):
        coverage_major = plan.merge.coverage_major
        if isinstance(op, SingleScan):
            return _SinglesState(
                self._scored_singles(
                    self._iter_singles(plan.matches, op), ranker, coverage_major
                )
            )
        if isinstance(op, PairPaths):
            return _PairState(self, plan, op, ranker, limits)
        return _NetworkState(self, plan, op, ranker, limits)

    def _stream_pushdown(
        self, plan: QueryPlan, ranker: Ranker, limits: SearchLimits
    ) -> Iterator[tuple[AnswerType, tuple[float, ...]]]:
        k = plan.cut.k
        if k is not None and k <= 0:
            return
        # Per-op attribution works by stats-counter deltas around each
        # bound()/pull() call (which is where lazy heap setup, shard
        # skips and candidate scoring actually happen), so the state
        # classes stay untouched; disabled mode pays one local-bool
        # branch per call.
        exec_span = self._exec_span
        tracing = exec_span is not None
        stats = self.stats
        states = []
        op_spans = []
        if tracing:
            for position, op in enumerate(plan.sources):
                op_span = exec_span.child(_op_label(op), op=position)
                skips0 = stats.shard_skips
                t0 = time.perf_counter()
                states.append(self._make_state(plan, op, ranker, limits))
                op_span.add_time(time.perf_counter() - t0)
                delta = stats.shard_skips - skips0
                if delta:
                    op_span.add(shard_skips=delta)
                op_spans.append(op_span)
        else:
            states = [
                self._make_state(plan, op, ranker, limits)
                for op in plan.sources
            ]
        buffer: list[tuple] = []  # (score, render, sequence, answer)
        sequence = 0
        emitted = 0
        while True:
            best = None
            best_index = -1
            best_bound = None
            for index, state in enumerate(states):
                if tracing:
                    skips0 = stats.shard_skips
                    t0 = time.perf_counter()
                    bound = state.bound()
                    op_span = op_spans[index]
                    op_span.add_time(time.perf_counter() - t0)
                    delta = stats.shard_skips - skips0
                    if delta:
                        op_span.add(shard_skips=delta)
                else:
                    bound = state.bound()
                if bound is None:
                    continue
                if best_bound is None or bound < best_bound:
                    best_bound = bound
                    best = state
                    best_index = index
            # Everything buffered that strictly beats every remaining
            # bound is final — equal bounds must wait, because an unseen
            # answer could tie the score and win the render tie-break.
            while buffer and (best_bound is None or buffer[0][0] < best_bound):
                score, __, __, answer = heapq.heappop(buffer)
                yield answer, score
                emitted += 1
                if k is not None and emitted >= k:
                    return
            if best is None:
                return
            if tracing:
                candidates0 = stats.candidates
                t0 = time.perf_counter()
                pulled = best.pull()
                op_span = op_spans[best_index]
                op_span.add_time(time.perf_counter() - t0)
                op_span.add(pulls=1)
                delta = stats.candidates - candidates0
                if delta:
                    op_span.add(produced=delta)
            else:
                pulled = best.pull()
            if pulled is not None:
                answer, score = pulled
                heapq.heappush(buffer, (score, answer.render(), sequence, answer))
                sequence += 1


class _SinglesState:
    """Exhaustively pre-scored single-tuple answers (cheap, no traversal)."""

    def __init__(self, scored: list) -> None:
        self._scored = scored
        self._position = 0

    def bound(self) -> Optional[tuple]:
        if self._position >= len(self._scored):
            return None
        return self._scored[self._position][0]

    def pull(self) -> Optional[tuple]:
        score, __, answer = self._scored[self._position]
        self._position += 1
        return answer, score


class _PairState:
    """Pair-path source yielding connections by non-decreasing RDB length.

    Single-tuple answers (AND two-keyword plans) are exact-scored up
    front; they always bound below any path of length >= 1, so the path
    heap — one entry per (source, target) tuple pair, merged by next
    path length — is only initialised once the singles are drained.

    After an entry is consumed its stream re-enters the heap as a
    *placeholder* carrying the consumed length (per-pair streams are
    non-decreasing, so that length stays an admissible bound) and is
    only re-peeked when it reaches the top again — enumeration never
    runs one item past what the emitted results needed, so a budget
    error beyond the top-k is never touched.

    Under the adaptive planner (csr core) the heap is built without
    pulling anything: each pair enters as a :data:`_LAZY` entry on its
    BFS distance — an admissible lower bound on its first path length —
    and its stream is only created when the entry reaches the top.
    Pairs whose distance exceeds ``max_rdb_length`` (incl. disconnected
    pairs) are provably empty and skipped outright.  Because every
    bound is admissible and placeholder re-entry is unchanged, the
    emitted answers, order and scores are bit-identical to the static
    build — cheap pairs just reach the top (and the score lower bound)
    without the expensive pairs ever running their first DFS.
    """

    def __init__(self, executor: Executor, plan, op, ranker, limits) -> None:
        self._executor = executor
        self._ranker = ranker
        self._limits = limits
        self._coverage_major = plan.merge.coverage_major
        first, second = plan.matches[op.first], plan.matches[op.second]
        self._matches = (first, second)
        self._prefix = (-2,) if self._coverage_major else ()
        singles = []
        if op.include_single_tuples:
            singles = executor._pair_singles(first, second)
        self._singles = executor._scored_singles(
            singles, ranker, self._coverage_major
        )
        self._singles_position = 0
        self._heap: Optional[list] = None

    def _ensure_heap(self) -> list:
        if self._heap is None:
            from repro.scale.shards import CROSS_SHARD

            executor = self._executor
            adaptive = executor.adaptive and executor.core == "csr"
            limits = self._limits
            rows: dict = {}
            pruned = 0
            heap = []
            first, second = self._matches
            index = 0
            for source in first.tuple_ids:
                for target in second.tuple_ids:
                    if source == target:
                        continue
                    # Cross-shard pairs would enter the serial heap as
                    # immediately-empty streams; skipping them (while
                    # keeping the global pair index) changes nothing in
                    # the heap's contents or tie-breaking.
                    shard = executor._unit_shard((source, target))
                    if shard is CROSS_SHARD:
                        executor.stats.shard_skips += 1
                        index += 1
                        continue
                    if adaptive:
                        bound = executor._unit_distance(
                            source, target, shard, rows
                        )
                        if bound is not None:
                            if bound > limits.max_rdb_length:
                                # No path fits the length budget: eager
                                # setup would build a stream that yields
                                # nothing (and can raise nothing).
                                executor.stats.pruned += 1
                                pruned += 1
                                index += 1
                                continue
                            heap.append(
                                (bound, index, _LAZY, (source, target, shard))
                            )
                            index += 1
                            continue
                    stream = iter(
                        executor._path_stream(
                            source,
                            target,
                            limits,
                            cache=executor._unit_cache(shard),
                        )
                    )
                    steps = next(stream, None)
                    if steps is not None:
                        heap.append((len(steps), index, steps, stream))
                    index += 1
            heapq.heapify(heap)
            self._heap = heap
            if adaptive:
                executor._note_adaptive(heap, pruned)
        return self._heap

    def bound(self) -> Optional[tuple]:
        if self._singles_position < len(self._singles):
            return self._singles[self._singles_position][0]
        heap = self._ensure_heap()
        if not heap:
            return None
        return self._prefix + lower_bound_for(self._ranker, heap[0][0])

    def pull(self) -> Optional[tuple]:
        if self._singles_position < len(self._singles):
            score, __, answer = self._singles[self._singles_position]
            self._singles_position += 1
            return answer, score
        heap = self._ensure_heap()
        length, index, steps, stream = heapq.heappop(heap)
        if steps is _LAZY:  # adaptive: build the stream at first top
            source, target, shard = stream
            executor = self._executor
            stream = iter(
                executor._path_stream(
                    source,
                    target,
                    self._limits,
                    cache=executor._unit_cache(shard),
                )
            )
            steps = next(stream, None)
            if steps is None:
                return None
            if len(steps) > length:
                heapq.heappush(heap, (len(steps), index, steps, stream))
                return None
        elif steps is None:  # placeholder: re-peek the stream now
            steps = next(stream, None)
            if steps is None:
                return None
            if len(steps) > length:
                heapq.heappush(heap, (len(steps), index, steps, stream))
                return None
        heapq.heappush(heap, (len(steps), index, None, stream))
        tids = [steps[0].source] + [s.target for s in steps]
        answer = Connection(
            self._executor.data_graph, steps, _keyword_map(self._matches, tids)
        )
        return answer, self._executor._score(
            answer, self._ranker, self._coverage_major
        )


class _NetworkState:
    """Network source yielding by non-decreasing tuple count.

    One stream per keyword-tuple assignment (shared by required-tuple
    signature), heap-merged on the size of each stream's next tuple set;
    a network over ``s`` tuples has RDB length ``s - 1``, which drives
    the bound.  Consumed streams re-enter as placeholders (see
    :class:`_PairState`) so growth beyond the emitted top-k never runs.

    Under the adaptive planner (csr core) assignments enter the heap
    lazily on an admissible size bound — ``max(len(required), max
    pairwise BFS distance + 1)`` — and grow their first tree only when
    they reach the top; assignments whose bound exceeds ``max_tuples``
    (incl. tuples in different components) are provably empty and
    skipped.  Bit-identical to the static build for the same reason as
    pair paths.
    """

    def __init__(self, executor: Executor, plan, op, ranker, limits) -> None:
        self._executor = executor
        self._ranker = ranker
        self._limits = limits
        self._coverage_major = plan.merge.coverage_major
        self._prefix = (-len(op.indices),) if self._coverage_major else ()
        from repro.scale.shards import CROSS_SHARD

        adaptive = executor.adaptive and executor.core == "csr"
        rows: dict = {}
        pruned = 0
        self._seen: set[tuple] = set()
        heap = []
        for index, (keyword_tuples, required) in enumerate(
            executor._network_assignments(plan.matches, op)
        ):
            shard = executor._unit_shard(required)
            if shard is CROSS_SHARD:  # index keeps counting: tie-breaks stay global
                executor.stats.shard_skips += 1
                continue
            if adaptive:
                bound = executor._network_bound(required, shard, rows)
                if bound is not None:
                    if bound > limits.max_tuples:
                        # Every joining tree over this assignment needs
                        # more tuples than the budget allows (or spans
                        # components): growth would yield nothing.
                        executor.stats.pruned += 1
                        pruned += 1
                        continue
                    heap.append(
                        (bound, index, _LAZY, (required, shard), keyword_tuples)
                    )
                    continue
            stream = iter(
                executor._tree_stream(
                    required, limits, cache=executor._unit_cache(shard)
                )
            )
            tuple_set = next(stream, None)
            if tuple_set is not None:
                heap.append((len(tuple_set), index, tuple_set, stream, keyword_tuples))
        heapq.heapify(heap)
        self._heap = heap
        if adaptive:
            executor._note_adaptive(heap, pruned)

    def bound(self) -> Optional[tuple]:
        if not self._heap:
            return None
        return self._prefix + lower_bound_for(self._ranker, self._heap[0][0] - 1)

    def pull(self) -> Optional[tuple]:
        size, index, tuple_set, stream, keyword_tuples = heapq.heappop(self._heap)
        if tuple_set is _LAZY:  # adaptive: build the stream at first top
            required, shard = stream
            executor = self._executor
            stream = iter(
                executor._tree_stream(
                    required, self._limits, cache=executor._unit_cache(shard)
                )
            )
            tuple_set = next(stream, None)
            if tuple_set is None:
                return None
            if len(tuple_set) > size:
                heapq.heappush(
                    self._heap,
                    (len(tuple_set), index, tuple_set, stream, keyword_tuples),
                )
                return None
        elif tuple_set is None:  # placeholder: re-peek the stream now
            tuple_set = next(stream, None)
            if tuple_set is None:
                return None
            if len(tuple_set) > size:
                heapq.heappush(
                    self._heap,
                    (len(tuple_set), index, tuple_set, stream, keyword_tuples),
                )
                return None
        heapq.heappush(
            self._heap,
            (len(tuple_set), index, None, stream, keyword_tuples),
        )
        key = (tuple_set, tuple(sorted(keyword_tuples.items())))
        if key in self._seen:
            return None
        self._seen.add(key)
        answer = JoiningNetwork(
            self._executor.data_graph, tuple_set, keyword_tuples
        )
        return answer, self._executor._score(
            answer, self._ranker, self._coverage_major
        )
