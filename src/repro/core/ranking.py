"""Ranking strategies for keyword-search answers (paper §3 and §4).

A ranker maps an answer (a :class:`~repro.core.connections.Connection`, a
:class:`~repro.core.search.JoiningNetwork` or a
:class:`~repro.core.search.SingleTupleAnswer`) to a score tuple; **lower
scores rank better** and ties are broken deterministically by the answer's
rendered form.

Implemented strategies:

:class:`RdbLengthRanker`
    the traditional baseline the paper criticises: number of FK joins;
:class:`ErLengthRanker`
    the paper's conceptual length: middle relations do not count;
:class:`ClosenessRanker`
    the paper's proposal: fewest transitive-N:M joints first, conceptual
    length second — reproduces the order ``{1,2,5} ≻ {4,7} ≻ {3,6}`` for
    the running example;
:class:`InstanceAmbiguityRanker`
    the future-work refinement: replace the joint *count* with the actual
    number of participating tuples at each joint;
:class:`WeightedRanker`
    a linear combination for ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from repro.core import ambiguity as ambiguity_module
from repro.core.connections import Connection

__all__ = [
    "Answer",
    "Ranker",
    "RdbLengthRanker",
    "ErLengthRanker",
    "ClosenessRanker",
    "InstanceAmbiguityRanker",
    "WeightedRanker",
    "rank_connections",
]


class Answer(Protocol):
    """The interface every rankable answer exposes."""

    rdb_length: int
    er_length: int

    def render(self) -> str: ...


def _loose_joint_count(answer: object) -> int:
    if isinstance(answer, Connection):
        return answer.verdict().loose_joint_count
    return answer.loose_joint_count()  # type: ignore[attr-defined]


def _ambiguity_factor(answer: object) -> int:
    if isinstance(answer, Connection):
        return ambiguity_module.ambiguity_factor(answer)
    return answer.ambiguity_factor()  # type: ignore[attr-defined]


class Ranker(Protocol):
    """Scoring strategy: lower score tuples rank first."""

    name: str

    def score(self, answer: Answer) -> tuple[float, ...]: ...


@dataclass(frozen=True)
class RdbLengthRanker:
    """Rank by number of FK joins (the approach the paper criticises)."""

    name: str = "rdb-length"

    def score(self, answer: Answer) -> tuple[float, ...]:
        return (float(answer.rdb_length),)


@dataclass(frozen=True)
class ErLengthRanker:
    """Rank by conceptual (ER) length — middle relations do not count."""

    name: str = "er-length"

    def score(self, answer: Answer) -> tuple[float, ...]:
        return (float(answer.er_length),)


@dataclass(frozen=True)
class ClosenessRanker:
    """The paper's proposal: loose joints first, then conceptual length."""

    name: str = "closeness"

    def score(self, answer: Answer) -> tuple[float, ...]:
        return (float(_loose_joint_count(answer)), float(answer.er_length))


@dataclass(frozen=True)
class InstanceAmbiguityRanker:
    """Future-work refinement: actual tuple participation at loose joints.

    The primary component is the instance ambiguity factor (1 for close
    connections); conceptual length breaks ties.
    """

    name: str = "instance-ambiguity"

    def score(self, answer: Answer) -> tuple[float, ...]:
        return (float(_ambiguity_factor(answer)), float(answer.er_length))


@dataclass(frozen=True)
class WeightedRanker:
    """Linear combination of the individual criteria, for ablations.

    ``score = w_joints * joints + w_er * er_length + w_rdb * rdb_length
    + w_ambiguity * (ambiguity_factor - 1)``
    """

    w_joints: float = 1.0
    w_er: float = 0.1
    w_rdb: float = 0.0
    w_ambiguity: float = 0.0
    name: str = "weighted"

    def score(self, answer: Answer) -> tuple[float, ...]:
        total = (
            self.w_joints * _loose_joint_count(answer)
            + self.w_er * answer.er_length
            + self.w_rdb * answer.rdb_length
        )
        if self.w_ambiguity:
            total += self.w_ambiguity * (_ambiguity_factor(answer) - 1)
        return (total,)


def rank_connections(
    answers: Iterable[Answer], ranker: Ranker
) -> list[tuple[Answer, tuple[float, ...]]]:
    """Sort answers by a ranker, best first, with deterministic ties.

    Returns ``(answer, score)`` pairs; ties on the score tuple are broken
    by the rendered answer text so that repeated runs produce identical
    orders.
    """
    scored = [(answer, ranker.score(answer)) for answer in answers]
    scored.sort(key=lambda pair: (pair[1], pair[0].render()))
    return scored
