"""The :class:`KeywordSearchEngine` facade — the library's main entry point.

The engine owns the derived structures (data graph, inverted index) of one
database instance and answers keyword queries ranked by a configurable
strategy:

>>> from repro.datasets.company import build_company_database   # doctest: +SKIP
>>> engine = KeywordSearchEngine(build_company_database())      # doctest: +SKIP
>>> results = engine.search("Smith XML")                        # doctest: +SKIP
>>> results[0].answer.render()                                  # doctest: +SKIP
'd1(xml) – e1(smith)'

Queries with two keywords produce path answers (the paper's connections);
queries with one keyword produce the matching tuples; queries with three or
more keywords produce joining networks.  All enumeration bounds live in
:class:`~repro.core.search.SearchLimits`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.core.ambiguity import is_instance_close
from repro.core.connections import Connection
from repro.core.matching import KeywordMatch, match_keywords, parse_query
from repro.core.ranking import ClosenessRanker, Ranker, rank_connections
from repro.core.search import (
    JoiningNetwork,
    SearchLimits,
    SingleTupleAnswer,
    find_connections,
    find_joining_networks,
)
from repro.errors import QueryError
from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import TraversalCache
from repro.relational.database import Database, TupleId
from repro.relational.index import InvertedIndex

__all__ = ["SearchResult", "KeywordSearchEngine"]

AnswerType = Union[Connection, JoiningNetwork, SingleTupleAnswer]


@dataclass(frozen=True)
class SearchResult:
    """One ranked answer: the answer object, its score and its rank."""

    answer: AnswerType
    score: tuple[float, ...]
    rank: int

    def render(self) -> str:
        return self.answer.render()


class KeywordSearchEngine:
    """Keyword search over one database with close/loose-aware ranking."""

    def __init__(
        self,
        database: Database,
        ranker: Optional[Ranker] = None,
        limits: SearchLimits = SearchLimits(),
        use_fast_traversal: bool = True,
    ) -> None:
        self.database = database
        self.data_graph = DataGraph(database)
        self.index = InvertedIndex(database)
        self.ranker = ranker or ClosenessRanker()
        self.limits = limits
        self.use_fast_traversal = use_fast_traversal
        self.traversal_cache = TraversalCache(self.data_graph)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def match(self, query: str) -> tuple[KeywordMatch, ...]:
        """Resolve a query's keywords without searching for connections."""
        return match_keywords(self.index, parse_query(query))

    def search(
        self,
        query: str,
        ranker: Optional[Ranker] = None,
        limits: Optional[SearchLimits] = None,
        top_k: Optional[int] = None,
        semantics: str = "and",
    ) -> list[SearchResult]:
        """Answer a keyword query, best answers first.

        AND semantics (default): every keyword must be covered by every
        answer; a keyword with no matches yields an empty result list.

        OR semantics (``semantics="or"``): answers may cover any non-empty
        keyword subset — single matching tuples always qualify, connections
        and networks add multi-keyword coverage.  Results are ordered by
        keyword coverage first (more covered keywords rank higher), the
        ranker's score second.
        """
        if semantics not in ("and", "or"):
            raise QueryError("semantics must be 'and' or 'or'", got=semantics)
        ranker = ranker or self.ranker
        limits = limits or self.limits
        matches = self.match(query)

        if semantics == "or":
            return self._search_or(matches, ranker, limits, top_k)
        if any(match.is_empty for match in matches):
            return []

        answers: list[AnswerType]
        if len(matches) == 1:
            answers = [
                SingleTupleAnswer(
                    self.data_graph, tid, frozenset((matches[0].keyword,))
                )
                for tid in matches[0].tuple_ids
            ]
        elif len(matches) == 2:
            answers = list(
                find_connections(
                    self.data_graph,
                    matches,
                    limits,
                    use_fast_traversal=self.use_fast_traversal,
                    cache=self.traversal_cache,
                )
            )
        else:
            answers = list(
                find_joining_networks(
                    self.data_graph,
                    matches,
                    limits,
                    use_fast_traversal=self.use_fast_traversal,
                    cache=self.traversal_cache,
                )
            )

        ranked = rank_connections(answers, ranker)
        if top_k is not None:
            ranked = ranked[:top_k]
        return [
            SearchResult(answer=answer, score=score, rank=position + 1)
            for position, (answer, score) in enumerate(ranked)
        ]

    def search_batch(
        self,
        queries: Sequence[str],
        ranker: Optional[Ranker] = None,
        limits: Optional[SearchLimits] = None,
        top_k: Optional[int] = None,
        semantics: str = "and",
    ) -> list[list[SearchResult]]:
        """Answer many queries, one result list per query (input order).

        Each query is answered exactly as :meth:`search` would — the win
        is amortisation, not approximation: all queries share the
        engine's :class:`~repro.graph.fast_traversal.TraversalCache`
        (adjacency and distance maps survive across queries), and a query
        text appearing several times is searched once with its result
        list reused.
        """
        resolved: dict[str, list[SearchResult]] = {}
        batched = []
        for query in queries:
            if query not in resolved:
                resolved[query] = self.search(
                    query,
                    ranker=ranker,
                    limits=limits,
                    top_k=top_k,
                    semantics=semantics,
                )
            batched.append(resolved[query])
        return batched

    def _search_or(
        self,
        matches: Sequence[KeywordMatch],
        ranker: Ranker,
        limits: SearchLimits,
        top_k: Optional[int],
    ) -> list[SearchResult]:
        """OR semantics: cover any keyword subset, coverage-major ranking."""
        from itertools import combinations

        populated = [match for match in matches if not match.is_empty]
        if not populated:
            return []

        answers: list[AnswerType] = []
        seen_singles: dict[object, set[str]] = {}
        for match in populated:
            for tid in match.tuple_ids:
                seen_singles.setdefault(tid, set()).add(match.keyword)
        for tid, keywords in seen_singles.items():
            answers.append(
                SingleTupleAnswer(self.data_graph, tid, frozenset(keywords))
            )
        if len(populated) >= 2:
            for first, second in combinations(populated, 2):
                answers.extend(
                    answer
                    for answer in find_connections(
                        self.data_graph,
                        (first, second),
                        limits,
                        include_single_tuples=False,
                        use_fast_traversal=self.use_fast_traversal,
                        cache=self.traversal_cache,
                    )
                )
        if len(populated) >= 3:
            answers.extend(
                find_joining_networks(
                    self.data_graph,
                    populated,
                    limits,
                    use_fast_traversal=self.use_fast_traversal,
                    cache=self.traversal_cache,
                )
            )

        def coverage(answer: AnswerType) -> int:
            if isinstance(answer, SingleTupleAnswer):
                return len(answer.covered_keywords)
            if isinstance(answer, JoiningNetwork):
                return len(answer.covered_keywords)
            covered: set[str] = set()
            for keywords in answer.keyword_matches.values():
                covered |= keywords
            return len(covered)

        scored = [
            (answer, (-coverage(answer),) + ranker.score(answer))
            for answer in answers
        ]
        scored.sort(key=lambda pair: (pair[1], pair[0].render()))
        if top_k is not None:
            scored = scored[:top_k]
        return [
            SearchResult(answer=answer, score=score, rank=position + 1)
            for position, (answer, score) in enumerate(scored)
        ]

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def explain(self, result: SearchResult) -> str:
        """A human-readable explanation of one ranked answer."""
        answer = result.answer
        lines = [f"#{result.rank}  {answer.render()}  score={result.score}"]
        if isinstance(answer, Connection):
            verdict = answer.verdict()
            lines.append(f"  cardinalities: {answer.render_with_cardinalities()}")
            lines.append(f"  conceptual:    {answer.render_conceptual()}")
            lines.append(
                f"  rdb length {answer.rdb_length}, er length {answer.er_length}"
            )
            lines.append(f"  verdict: {verdict.describe()}")
            if verdict.is_loose:
                level = "close" if is_instance_close(answer) else "loose"
                lines.append(f"  instance level: {level}")
        elif isinstance(answer, JoiningNetwork):
            lines.append(
                f"  tuples {len(answer.tuples)}, rdb length {answer.rdb_length}, "
                f"er length {answer.er_length}, "
                f"loose joints {answer.loose_joint_count()}"
            )
        return "\n".join(lines)

    def rebuild(self) -> None:
        """Refresh derived structures after database mutations.

        The traversal cache is bound to the discarded data graph, so a
        fresh one replaces it.
        """
        self.data_graph = DataGraph(self.database)
        self.index.build()
        self.traversal_cache = TraversalCache(self.data_graph)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KeywordSearchEngine(db={self.database.schema.name!r}, "
            f"ranker={self.ranker.name!r})"
        )
