"""The :class:`KeywordSearchEngine` facade — the library's main entry point.

The engine owns the derived structures (data graph, inverted index) of one
database instance and answers keyword queries ranked by a configurable
strategy:

>>> from repro.datasets.company import build_company_database   # doctest: +SKIP
>>> engine = KeywordSearchEngine(build_company_database())      # doctest: +SKIP
>>> results = engine.search("Smith XML")                        # doctest: +SKIP
>>> results[0].answer.render()                                  # doctest: +SKIP
'd1(xml) – e1(smith)'

Queries with two keywords produce path answers (the paper's connections);
queries with one keyword produce the matching tuples; queries with three or
more keywords produce joining networks.  All enumeration bounds live in
:class:`~repro.core.search.SearchLimits`.

Every query — AND or OR, any keyword count, with or without ``top_k`` —
runs through one pipeline: :func:`~repro.core.plan.plan_query` compiles
the resolved matches into a :class:`~repro.core.plan.QueryPlan` and a
:class:`~repro.core.executor.Executor` streams its ranked answers.
``search`` materialises the stream, :meth:`search_stream` exposes it
incrementally, and ``search_batch`` additionally shares identical
enumeration sub-plans between the queries of one batch.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

from repro.core.ambiguity import is_instance_close
from repro.core.connections import Connection
from repro.core.executor import (
    ExecutionStats,
    Executor,
    SearchResult,
    SharedEnumerations,
)
from repro.core.matching import KeywordMatch, match_keywords, parse_query
from repro.core.plan import QueryPlan, plan_query
from repro.core.ranking import ClosenessRanker, Ranker
from repro.core.search import JoiningNetwork, SearchLimits, SingleTupleAnswer
from repro.errors import QueryError
from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import TraversalCache
from repro.relational.database import Database
from repro.relational.index import InvertedIndex

__all__ = ["SearchResult", "KeywordSearchEngine"]

AnswerType = Union[Connection, JoiningNetwork, SingleTupleAnswer]


class KeywordSearchEngine:
    """Keyword search over one database with close/loose-aware ranking."""

    def __init__(
        self,
        database: Database,
        ranker: Optional[Ranker] = None,
        limits: SearchLimits = SearchLimits(),
        use_fast_traversal: bool = True,
    ) -> None:
        self.database = database
        self.data_graph = DataGraph(database)
        self.index = InvertedIndex(database)
        self.ranker = ranker or ClosenessRanker()
        self.limits = limits
        self.use_fast_traversal = use_fast_traversal
        self.traversal_cache = TraversalCache(self.data_graph)
        #: Counters of the most recent search/stream/batch call (the
        #: CLI's ``--top`` report and the pipeline benchmark read them).
        self.last_stats = ExecutionStats()
        #: Sub-plan sharing table of the most recent ``search_batch``.
        self.last_shared = SharedEnumerations()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def match(self, query: str) -> tuple[KeywordMatch, ...]:
        """Resolve a query's keywords without searching for connections."""
        return match_keywords(self.index, parse_query(query))

    def plan(
        self,
        query: str,
        top_k: Optional[int] = None,
        semantics: str = "and",
    ) -> QueryPlan:
        """Compile a query into its :class:`~repro.core.plan.QueryPlan`."""
        if semantics not in ("and", "or"):
            raise QueryError("semantics must be 'and' or 'or'", got=semantics)
        return plan_query(self.match(query), semantics=semantics, top_k=top_k)

    def _executor(self, shared: Optional[SharedEnumerations] = None) -> Executor:
        return Executor(
            self.data_graph,
            use_fast_traversal=self.use_fast_traversal,
            cache=self.traversal_cache,
            shared=shared,
        )

    def search(
        self,
        query: str,
        ranker: Optional[Ranker] = None,
        limits: Optional[SearchLimits] = None,
        top_k: Optional[int] = None,
        semantics: str = "and",
        pushdown: Optional[bool] = None,
    ) -> list[SearchResult]:
        """Answer a keyword query, best answers first.

        AND semantics (default): every keyword must be covered by every
        answer; a keyword with no matches yields an empty result list.

        OR semantics (``semantics="or"``): answers may cover any non-empty
        keyword subset — single matching tuples always qualify, connections
        and networks add multi-keyword coverage.  Results are ordered by
        keyword coverage first (more covered keywords rank higher), the
        ranker's score second.

        With ``top_k`` and a ranker that has a score lower bound, the
        executor pushes the cut into enumeration and stops early — the
        results stay bit-identical to enumerate-sort-cut, but a budget
        that full enumeration would exceed may never be reached.  Pass
        ``pushdown=False`` to force full enumeration (exact legacy
        budget-error behaviour), ``True`` to force bound-ordered
        streaming.
        """
        plan = self.plan(query, top_k=top_k, semantics=semantics)
        executor = self._executor()
        results = executor.run(
            plan, ranker or self.ranker, limits or self.limits, pushdown=pushdown
        )
        self.last_stats = executor.stats
        return results

    def search_stream(
        self,
        query: str,
        ranker: Optional[Ranker] = None,
        limits: Optional[SearchLimits] = None,
        top_k: Optional[int] = None,
        semantics: str = "and",
        pushdown: Optional[bool] = None,
    ) -> Iterator[SearchResult]:
        """Answer a query incrementally, yielding ranked answers as the
        executor proves them final.

        Identical results in identical order to :meth:`search`; with a
        bounded ranker the first answers arrive before enumeration
        finishes, and a ``top_k`` cut stops enumeration early.  Rankers
        without a lower bound degrade to materialise-then-yield.
        ``last_stats`` is final once the iterator is exhausted.
        """
        plan = self.plan(query, top_k=top_k, semantics=semantics)
        executor = self._executor()
        try:
            for result in executor.stream(
                plan,
                ranker or self.ranker,
                limits or self.limits,
                pushdown=pushdown,
            ):
                self.last_stats = executor.stats
                yield result
        finally:
            # Capture the run's counters even when the stream yields
            # nothing or the consumer stops early (stream() replaces
            # executor.stats once it starts running).
            self.last_stats = executor.stats

    def search_batch(
        self,
        queries: Sequence[str],
        ranker: Optional[Ranker] = None,
        limits: Optional[SearchLimits] = None,
        top_k: Optional[int] = None,
        semantics: str = "and",
        pushdown: Optional[bool] = None,
    ) -> list[list[SearchResult]]:
        """Answer many queries, one result list per query (input order).

        Each query is answered exactly as :meth:`search` would — the win
        is amortisation, not approximation, on three levels: all queries
        share the engine's
        :class:`~repro.graph.fast_traversal.TraversalCache` (adjacency
        and distance maps survive across queries); identical enumeration
        sub-plans — the same (source, target) tuple pair or the same
        required tuple set under the same limits — are executed once per
        batch and their streams fanned out to every query that contains
        them, even across different query texts; and a query text
        appearing several times is searched once with its result list
        reused.
        """
        shared = SharedEnumerations()
        stats = ExecutionStats()
        resolved: dict[str, list[SearchResult]] = {}
        batched = []
        for query in queries:
            if query not in resolved:
                plan = self.plan(query, top_k=top_k, semantics=semantics)
                executor = self._executor(shared)
                resolved[query] = executor.run(
                    plan,
                    ranker or self.ranker,
                    limits or self.limits,
                    pushdown=pushdown,
                )
                stats.merge(executor.stats)
            batched.append(resolved[query])
        self.last_stats = stats
        self.last_shared = shared
        return batched

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def explain(self, result: SearchResult) -> str:
        """A human-readable explanation of one ranked answer."""
        answer = result.answer
        lines = [f"#{result.rank}  {answer.render()}  score={result.score}"]
        if isinstance(answer, Connection):
            verdict = answer.verdict()
            lines.append(f"  cardinalities: {answer.render_with_cardinalities()}")
            lines.append(f"  conceptual:    {answer.render_conceptual()}")
            lines.append(
                f"  rdb length {answer.rdb_length}, er length {answer.er_length}"
            )
            lines.append(f"  verdict: {verdict.describe()}")
            if verdict.is_loose:
                level = "close" if is_instance_close(answer) else "loose"
                lines.append(f"  instance level: {level}")
        elif isinstance(answer, JoiningNetwork):
            lines.append(
                f"  tuples {len(answer.tuples)}, rdb length {answer.rdb_length}, "
                f"er length {answer.er_length}, "
                f"loose joints {answer.loose_joint_count()}"
            )
        return "\n".join(lines)

    def rebuild(self) -> None:
        """Refresh derived structures after database mutations.

        The traversal cache is bound to the discarded data graph, so a
        fresh one replaces it.
        """
        self.data_graph = DataGraph(self.database)
        self.index.build()
        self.traversal_cache = TraversalCache(self.data_graph)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KeywordSearchEngine(db={self.database.schema.name!r}, "
            f"ranker={self.ranker.name!r})"
        )
