"""The :class:`KeywordSearchEngine` facade — the library's main entry point.

The engine owns the derived structures (data graph, inverted index) of one
database instance and answers keyword queries ranked by a configurable
strategy:

>>> from repro.datasets.company import build_company_database   # doctest: +SKIP
>>> engine = KeywordSearchEngine(build_company_database())      # doctest: +SKIP
>>> results = engine.search("Smith XML")                        # doctest: +SKIP
>>> results[0].answer.render()                                  # doctest: +SKIP
'd1(xml) – e1(smith)'

Queries with two keywords produce path answers (the paper's connections);
queries with one keyword produce the matching tuples; queries with three or
more keywords produce joining networks.  All enumeration bounds live in
:class:`~repro.core.search.SearchLimits`.

Every query — AND or OR, any keyword count, with or without ``top_k`` —
runs through one pipeline: :func:`~repro.core.plan.plan_query` compiles
the resolved matches into a :class:`~repro.core.plan.QueryPlan` and a
:class:`~repro.core.executor.Executor` streams its ranked answers.
``search`` materialises the stream, :meth:`search_stream` exposes it
incrementally, and ``search_batch`` additionally shares identical
enumeration sub-plans between the queries of one batch.

The engine is live-updatable: :meth:`apply` routes a validated mutation
batch through :mod:`repro.live`, patching the index, graph and caches
in place and invalidating exactly the affected entries of the
dependency-tracked answer cache (:attr:`result_cache`); results stay
bit-identical to a freshly rebuilt engine, and :meth:`rebuild` remains
the escape hatch.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Hashable, Iterable, Iterator, Optional, Sequence, Union

from repro.core.ambiguity import is_instance_close
from repro.core.connections import Connection
from repro.core.executor import (
    ExecutionStats,
    Executor,
    SearchResult,
    SharedEnumerations,
)
from repro.core.matching import KeywordMatch, match_keywords, parse_query
from repro.core.plan import QueryPlan, plan_query
from repro.core.ranking import ClosenessRanker, Ranker
from repro.core.search import JoiningNetwork, SearchLimits, SingleTupleAnswer
from repro.durable import fault
from repro.errors import MutationError, QueryError, WalError
from repro.graph.csr import resolve_core
from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import TraversalCache
from repro.live.changes import (
    ChangeSet,
    Mutation,
    apply_to_database,
    changeset_to_record,
)
from repro.live.maintain import affected_tuples, apply_changeset
from repro.live.result_cache import CacheEntry, ResultCache
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.planner.cost import CalibrationTable, CostModel, resolve_adaptive
from repro.relational.database import Database
from repro.relational.index import InvertedIndex

__all__ = ["SearchResult", "KeywordSearchEngine"]

AnswerType = Union[Connection, JoiningNetwork, SingleTupleAnswer]


class KeywordSearchEngine:
    """Keyword search over one database with close/loose-aware ranking."""

    def __init__(
        self,
        database: Database,
        ranker: Optional[Ranker] = None,
        limits: SearchLimits = SearchLimits(),
        use_fast_traversal: bool = True,
        result_cache_entries: int = 256,
        core: Optional[str] = None,
        shards: Optional[int] = None,
        vector: Optional[bool] = None,
        adaptive: Optional[bool] = None,
    ) -> None:
        self._wire(
            database=database,
            data_graph=DataGraph(database),
            index=InvertedIndex(database),
            traversal_cache=None,
            ranker=ranker,
            limits=limits,
            use_fast_traversal=use_fast_traversal,
            result_cache_entries=result_cache_entries,
            core=core,
            shards=shards,
            vector=vector,
            adaptive=adaptive,
            version=0,
        )

    def _wire(
        self,
        *,
        database: Database,
        data_graph: DataGraph,
        index: InvertedIndex,
        traversal_cache: Optional[TraversalCache],
        ranker: Optional[Ranker],
        limits: SearchLimits,
        use_fast_traversal: bool,
        result_cache_entries: int,
        core: Optional[str],
        shards: Optional[int],
        version: int,
        vector: Optional[bool] = None,
        adaptive: Optional[bool] = None,
    ) -> None:
        """Shared field wiring of cold construction and snapshot restore."""
        self.database = database
        self.data_graph = data_graph
        self.index = index
        self.ranker = ranker or ClosenessRanker()
        self.limits = limits
        #: Traversal kernel every query runs on: ``csr`` (compiled
        #: integer kernels, the default), ``fast`` (pruned TupleId
        #: core) or ``reference`` (brute-force networkx) — answers are
        #: bit-identical across all three.  ``use_fast_traversal`` is
        #: the legacy boolean spelling (``False`` → ``reference``);
        #: ``core`` wins when both are given.
        self.core = resolve_core(use_fast_traversal, core)
        self.use_fast_traversal = self.core != "reference"
        #: Vector-backend override for the compiled CSR kernels:
        #: ``None`` uses the import-time default (numpy when available),
        #: ``False`` forces the pure-stdlib fallback, ``True`` demands
        #: numpy and raises when it is unavailable.  Answers are
        #: bit-identical across backends.
        self.vector = (
            vector if traversal_cache is None else traversal_cache.vector
        )
        self.traversal_cache = (
            traversal_cache
            if traversal_cache is not None
            else TraversalCache(self.data_graph, vector=vector)
        )
        #: Number of shards query execution routes over (``None``
        #: disables sharding).  The plan itself builds lazily — see
        #: :attr:`shard_plan` — and answers stay bit-identical to the
        #: unsharded engine: sharding only skips enumeration units whose
        #: tuples provably lie in different connected components.
        self.shards = shards or None
        self._shard_plan = None
        #: Cost-based adaptive planning (see :mod:`repro.planner`):
        #: pushdown enumeration drains units by admissible distance
        #: bounds, plans carry cost estimates, batch dispatch routes by
        #: predicted cost, and observed stats recalibrate the estimates.
        #: Answers are bit-identical either way; ``adaptive=False`` (or
        #: the ``REPRO_STATIC_PLAN`` environment variable) restores the
        #: static order as escape hatch and differential oracle.
        self.adaptive = resolve_adaptive(adaptive)
        #: Learned per-kind candidate-count correction factors; attached
        #: to the snapshot's stats section on :meth:`save` and restored
        #: lazily on :meth:`open`.  Lives on the engine (not on
        #: ``statistics``) so it survives live updates.
        self.calibration = CalibrationTable()
        self._calibration_loader = None
        self._cost_model = None
        #: Counters of the most recent search/stream/batch call (the
        #: CLI's ``--top`` report and the pipeline benchmark read them).
        self.last_stats = ExecutionStats()
        #: :class:`~repro.obs.trace.QueryTrace` of the most recent
        #: search/stream/batch/explain call while tracing is enabled
        #: (``repro.obs.set_enabled``); ``None`` otherwise.
        self.last_trace = None
        #: Sub-plan sharing table of the most recent ``search_batch``.
        self.last_shared = SharedEnumerations()
        #: Monotonically increasing engine state version; every
        #: :meth:`apply` batch and every :meth:`rebuild` bumps it.
        self.version = version
        #: Dependency-tracked answer cache consulted by ``search``,
        #: ``search_batch`` and ``search_stream``; ``apply`` invalidates
        #: exactly the entries a changeset can affect.  Pass
        #: ``result_cache_entries=0`` to disable.
        self.result_cache = ResultCache(result_cache_entries)
        # Corpus statistics (see the `statistics` property): restored
        # lazily from a snapshot; dropped by apply()/rebuild() because
        # instance statistics move with the data.
        self._statistics = None
        self._statistics_loader = None
        #: Snapshot bookkeeping: the path this engine was opened from or
        #: last saved to, and the engine version / content generation it
        #: held at that moment.
        self.snapshot_path: Optional[str] = None
        self._snapshot_version: Optional[int] = None
        self._snapshot_generation: Optional[str] = None
        self._snapshot = None
        #: Attached :class:`~repro.durable.wal.WriteAheadLog`, or
        #: ``None``.  While attached, every :meth:`apply` batch is made
        #: durable before any in-memory structure is patched.  The WAL
        #: stays paired with the snapshot it was attached against
        #: (:attr:`_wal_snapshot_path`), which internal autosaves never
        #: touch.
        self.wal = None
        self._wal_snapshot_path: Optional[str] = None
        self._searcher = None
        self._searcher_key = None
        self._autosave_dir = None

    @classmethod
    def _from_parts(
        cls,
        *,
        database: Database,
        data_graph: DataGraph,
        index: InvertedIndex,
        traversal_cache: TraversalCache,
        ranker: Optional[Ranker] = None,
        limits: SearchLimits = SearchLimits(),
        use_fast_traversal: bool = True,
        result_cache_entries: int = 256,
        core: Optional[str] = None,
        shards: Optional[int] = None,
        version: int = 0,
        vector: Optional[bool] = None,
        adaptive: Optional[bool] = None,
    ) -> "KeywordSearchEngine":
        """Assemble an engine from restored structures (snapshot path)."""
        engine = cls.__new__(cls)
        engine._wire(
            database=database,
            data_graph=data_graph,
            index=index,
            traversal_cache=traversal_cache,
            ranker=ranker,
            limits=limits,
            use_fast_traversal=use_fast_traversal,
            result_cache_entries=result_cache_entries,
            core=core,
            shards=shards,
            version=version,
            vector=vector,
            adaptive=adaptive,
        )
        return engine

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def match(self, query: str) -> tuple[KeywordMatch, ...]:
        """Resolve a query's keywords without searching for connections."""
        return match_keywords(self.index, parse_query(query))

    def plan(
        self,
        query: str,
        top_k: Optional[int] = None,
        semantics: str = "and",
    ) -> QueryPlan:
        """Compile a query into its :class:`~repro.core.plan.QueryPlan`."""
        plan, __ = self._plan(query, top_k, semantics)
        return plan

    def _plan(
        self, query: str, top_k: Optional[int], semantics: str
    ) -> tuple[QueryPlan, tuple[KeywordMatch, ...]]:
        if semantics not in ("and", "or"):
            raise QueryError("semantics must be 'and' or 'or'", got=semantics)
        matches = self.match(query)
        plan = plan_query(matches, semantics=semantics, top_k=top_k)
        if self.adaptive and plan.sources:
            # Advisory annotation only: estimates order/route/report,
            # never filter — plan shape and answers are untouched.
            plan = self._ensure_cost_model().annotate(plan)
        return plan, matches

    def _ensure_cost_model(self) -> CostModel:
        """The engine's cost model, with persisted calibration folded in.

        A snapshot-opened engine defers reading the stored calibration
        payload until the first estimate needs it, mirroring how every
        other snapshot section restores lazily.
        """
        if self._calibration_loader is not None:
            loader, self._calibration_loader = self._calibration_loader, None
            payload = loader()
            if payload:
                self.calibration.load(payload)
        if self._cost_model is None:
            self._cost_model = CostModel(
                index=self.index,
                statistics=lambda: self.statistics,
                calibration=self.calibration,
            )
        return self._cost_model

    def query_cost(self, query: str, semantics: str = "and") -> float:
        """Predicted execution cost of one query (a routing weight).

        Computed from posting lengths, fan-outs and calibration alone —
        no matching, no enumeration — so batch dispatch can weigh a
        query before any work runs.  Sharded engines additionally scale
        by the routed shards' share of the graph.
        """
        try:
            keywords = parse_query(query)
        except QueryError:
            return 1.0
        cost = self._ensure_cost_model().query_cost(keywords, semantics)
        router = self.router()
        if router is not None:
            cost *= router.cost_weight(keywords, semantics)
        return cost

    def _observe_run(self, plan: QueryPlan, stats: ExecutionStats) -> None:
        """Fold one run's observed candidate count into the calibration.

        Scan estimates are exact (units == candidates), so the scan
        share is subtracted and the structural remainder attributed to
        the pair/network estimates — exactly when one structural kind
        ran, proportionally when both did (OR plans over >= 3 populated
        keywords).  Calibration only reshapes *future* estimates;
        answers never depend on it.
        """
        estimates = plan.estimates
        if not estimates:
            return
        structural = [
            estimate for estimate in estimates if estimate.kind != "scan"
        ]
        if not structural:
            return
        scan_predicted = sum(
            estimate.est_candidates
            for estimate in estimates
            if estimate.kind == "scan"
        )
        observed = max(0.0, stats.candidates - scan_predicted)
        predicted = sum(estimate.est_candidates for estimate in structural)
        if predicted <= 0.0:
            return
        kinds = sorted({estimate.kind for estimate in structural})
        if len(kinds) == 1:
            self.calibration.observe(kinds[0], predicted, observed)
        else:
            for estimate in structural:
                share = estimate.est_candidates / predicted
                self.calibration.observe(
                    estimate.kind, estimate.est_candidates, observed * share
                )
        if obs_metrics.ENABLED:
            obs_metrics.REGISTRY.inc("planner.calibrations")

    @property
    def statistics(self):
        """Corpus statistics of this engine's instance, or ``None``.

        Restored (lazily) when the engine was opened from a snapshot;
        :meth:`apply` and :meth:`rebuild` drop them because instance
        statistics move with the data.  Assign a fresh
        :class:`~repro.relational.statistics.DatabaseStatistics` to
        attach recomputed values.
        """
        if self._statistics is None and self._statistics_loader is not None:
            self._statistics = self._statistics_loader()
        return self._statistics

    @statistics.setter
    def statistics(self, value) -> None:
        self._statistics = value
        if value is None:
            self._statistics_loader = None

    @property
    def shard_plan(self):
        """The engine's :class:`~repro.scale.shards.ShardPlan` (lazy).

        ``None`` unless the engine was configured with ``shards=``.
        Built on first use from the compiled graph's components and kept
        current by :meth:`apply`; :meth:`rebuild` drops it.
        """
        if self.shards is None:
            return None
        if self._shard_plan is None:
            from repro.scale.shards import ShardPlan

            self._shard_plan = ShardPlan(self.traversal_cache, self.shards)
        return self._shard_plan

    def router(self):
        """Keyword→shard router over the current plan (``None`` unsharded)."""
        if self.shard_plan is None:
            return None
        from repro.scale.shards import KeywordRouter

        return KeywordRouter(self.shard_plan, self.index)

    def _executor(self, shared: Optional[SharedEnumerations] = None) -> Executor:
        return Executor(
            self.data_graph,
            core=self.core,
            cache=self.traversal_cache,
            shared=shared,
            shard_plan=self.shard_plan,
            adaptive=self.adaptive,
        )

    # ------------------------------------------------------------------
    # answer cache plumbing
    # ------------------------------------------------------------------
    def _cache_key(
        self,
        query: str,
        ranker: Ranker,
        limits: SearchLimits,
        top_k: Optional[int],
        semantics: str,
        pushdown: Optional[bool],
    ) -> Optional[Hashable]:
        # SearchLimits is a frozen dataclass, so the whole value is the
        # key component — a future budget field can never be silently
        # missing.  The built-in rankers are value-repr'd dataclasses,
        # so equal configurations share entries while differently-
        # parameterised ones never collide; a ranker whose repr leaks an
        # object address (default object repr — e.g. a held TfIdfScorer)
        # has no stable value identity, and an id-based key could collide
        # with a later object at a recycled address, so such queries stay
        # uncached (None key).
        if self.result_cache.max_entries <= 0:
            return None
        if getattr(ranker, "uses_corpus_stats", False):
            # Scores move with corpus-wide statistics; any changeset would
            # drop the entry anyway, so skip caching (and skip the repr,
            # which for such rankers can serialize held match sets).
            return None
        identity = repr(ranker)
        if " at 0x" in identity:
            return None
        return (
            query,
            semantics,
            top_k,
            pushdown,
            limits,
            getattr(ranker, "name", type(ranker).__name__),
            identity,
        )

    def _cache_store(
        self,
        key: Hashable,
        ranker: Ranker,
        matches: Sequence[KeywordMatch],
        results: Sequence[SearchResult],
        stats: ExecutionStats,
    ) -> None:
        footprint: set = set()
        for match in matches:
            footprint.update(match.tuple_ids)
        for result in results:
            footprint.update(result.answer.tuple_ids())
        # Corpus-stats rankers never reach here — _cache_key already
        # declared them uncacheable — so entries are never volatile.
        self.result_cache.store(
            key,
            CacheEntry(
                results=tuple(results),
                stats=replace(stats),
                keywords=tuple(match.keyword for match in matches),
                footprint=frozenset(footprint),
                fingerprint=tuple(match.tuple_ids for match in matches),
            ),
        )

    def search(
        self,
        query: str,
        ranker: Optional[Ranker] = None,
        limits: Optional[SearchLimits] = None,
        top_k: Optional[int] = None,
        semantics: str = "and",
        pushdown: Optional[bool] = None,
    ) -> list[SearchResult]:
        """Answer a keyword query, best answers first.

        AND semantics (default): every keyword must be covered by every
        answer; a keyword with no matches yields an empty result list.

        OR semantics (``semantics="or"``): answers may cover any non-empty
        keyword subset — single matching tuples always qualify, connections
        and networks add multi-keyword coverage.  Results are ordered by
        keyword coverage first (more covered keywords rank higher), the
        ranker's score second.

        With ``top_k`` and a ranker that has a score lower bound, the
        executor pushes the cut into enumeration and stops early — the
        results stay bit-identical to enumerate-sort-cut, but a budget
        that full enumeration would exceed may never be reached.  Pass
        ``pushdown=False`` to force full enumeration (exact legacy
        budget-error behaviour), ``True`` to force bound-ordered
        streaming.

        Results are served from :attr:`result_cache` when a live entry
        exists for the exact query identity; ``apply`` keeps the cache
        consistent, so a hit is always bit-identical to a fresh run.
        """
        ranker = ranker or self.ranker
        limits = limits or self.limits
        qtrace = None
        if obs_trace.ENABLED:
            qtrace = obs_trace.begin_trace(
                "query", query=query, semantics=semantics
            )
            self.last_trace = qtrace
        try:
            key = self._cache_key(
                query, ranker, limits, top_k, semantics, pushdown
            )
            with obs_trace.span("result_cache.lookup") as lookup_span:
                entry = (
                    self.result_cache.lookup(key) if key is not None else None
                )
                if lookup_span is not None:
                    lookup_span.tag(hit=entry is not None)
            if entry is not None:
                self.last_stats = replace(entry.stats)
                return list(entry.results)
            with obs_trace.span("plan.compile"):
                plan, matches = self._plan(query, top_k, semantics)
            version = self.version
            executor = self._executor()
            results = executor.run(plan, ranker, limits, pushdown=pushdown)
            self.last_stats = executor.stats
            if self.adaptive:
                self._observe_run(plan, executor.stats)
            if key is not None and self.version == version:
                self._cache_store(key, ranker, matches, results, executor.stats)
            return results
        finally:
            if qtrace is not None:
                obs_trace.end_trace(qtrace)

    def search_stream(
        self,
        query: str,
        ranker: Optional[Ranker] = None,
        limits: Optional[SearchLimits] = None,
        top_k: Optional[int] = None,
        semantics: str = "and",
        pushdown: Optional[bool] = None,
    ) -> Iterator[SearchResult]:
        """Answer a query incrementally, yielding ranked answers as the
        executor proves them final.

        Identical results in identical order to :meth:`search`; with a
        bounded ranker the first answers arrive before enumeration
        finishes, and a ``top_k`` cut stops enumeration early.  Rankers
        without a lower bound degrade to materialise-then-yield.
        ``last_stats`` is final once the iterator is exhausted.

        A live answer-cache entry replays instantly; a fully consumed
        stream populates the cache (an abandoned one does not — its
        enumeration may be incomplete).
        """
        ranker = ranker or self.ranker
        limits = limits or self.limits
        qtrace = None
        if obs_trace.ENABLED:
            qtrace = obs_trace.begin_trace(
                "query.stream", query=query, semantics=semantics
            )
            self.last_trace = qtrace
        try:
            key = self._cache_key(
                query, ranker, limits, top_k, semantics, pushdown
            )
            version = self.version
            with obs_trace.span("result_cache.lookup") as lookup_span:
                entry = (
                    self.result_cache.lookup(key) if key is not None else None
                )
                if lookup_span is not None:
                    lookup_span.tag(hit=entry is not None)
            if entry is not None:
                self.last_stats = replace(entry.stats)
                for result in entry.results:
                    self._check_stream_version(version)
                    yield result
                return
            with obs_trace.span("plan.compile"):
                plan, matches = self._plan(query, top_k, semantics)
            executor = self._executor()
            # Buffered only while a cache store is still possible — an
            # uncacheable query keeps the O(1) streaming memory profile.
            collected: Optional[list[SearchResult]] = (
                [] if key is not None else None
            )
            stream = executor.stream(plan, ranker, limits, pushdown=pushdown)
            try:
                while True:
                    # Checked on every resume, before the executor touches
                    # state an interleaved apply() may have mutated.
                    self._check_stream_version(version)
                    try:
                        result = next(stream)
                    except StopIteration:
                        break
                    self.last_stats = executor.stats
                    if collected is not None:
                        collected.append(result)
                    yield result
            finally:
                # Capture the run's counters even when the stream yields
                # nothing or the consumer stops early (stream() replaces
                # executor.stats once it starts running).  Close the
                # executor's generator inside the trace window so its
                # span totals land on this query's trace, not ambient.
                stream.close()
                self.last_stats = executor.stats
            # Only a fully consumed stream observes: abandoning it
            # mid-way would record a consumer-dependent partial count.
            if self.adaptive:
                self._observe_run(plan, executor.stats)
            if collected is not None and self.version == version:
                self._cache_store(key, ranker, matches, collected, executor.stats)
        finally:
            if qtrace is not None:
                obs_trace.end_trace(qtrace)

    def _check_stream_version(self, version: int) -> None:
        """Refuse to keep streaming across an interleaved mutation.

        A live ``search_stream`` iterator enumerates against the engine
        state it started from; once ``apply`` (or ``rebuild``) has run,
        continuing could yield answers referencing deleted tuples — the
        opposite of the bit-identical-to-rebuilt contract.  Restart the
        stream after mutating.
        """
        if self.version != version:
            raise MutationError(
                "engine mutated while a search stream was being consumed; "
                "restart the stream",
                started_at_version=version,
                engine_version=self.version,
            )

    def search_batch(
        self,
        queries: Sequence[str],
        ranker: Optional[Ranker] = None,
        limits: Optional[SearchLimits] = None,
        top_k: Optional[int] = None,
        semantics: str = "and",
        pushdown: Optional[bool] = None,
        jobs: Optional[int] = None,
    ) -> list[list[SearchResult]]:
        """Answer many queries, one result list per query (input order).

        Each query is answered exactly as :meth:`search` would — the win
        is amortisation, not approximation, on three levels: all queries
        share the engine's
        :class:`~repro.graph.fast_traversal.TraversalCache` (adjacency
        and distance maps survive across queries); identical enumeration
        sub-plans — the same (source, target) tuple pair or the same
        required tuple set under the same limits — are executed once per
        batch and their streams fanned out to every query that contains
        them, even across different query texts; and a query text
        appearing several times is searched once with its result list
        reused.

        ``jobs`` > 1 fans the batch out over a process pool
        (:mod:`repro.scale.parallel`): every worker opens the engine's
        snapshot once (auto-saved to a temporary file when the engine
        was never saved, refreshed after mutations) and answers whole
        queries with the same core/shard configuration.  Results, order
        and the first raised error are identical to the serial path;
        ``last_stats`` merges the workers' counters.
        """
        ranker = ranker or self.ranker
        limits = limits or self.limits
        if jobs is not None and jobs > 1:
            from repro.scale.parallel import run_batch

            return run_batch(
                self,
                queries,
                jobs=jobs,
                ranker=ranker,
                limits=limits,
                top_k=top_k,
                semantics=semantics,
                pushdown=pushdown,
            )
        shared = SharedEnumerations()
        stats = ExecutionStats()
        resolved: dict[str, list[SearchResult]] = {}
        batched = []
        qtrace = None
        if obs_trace.ENABLED:
            qtrace = obs_trace.begin_trace(
                "query.batch", queries=len(queries), semantics=semantics
            )
            self.last_trace = qtrace
        try:
            for query in queries:
                if query not in resolved:
                    key = self._cache_key(
                        query, ranker, limits, top_k, semantics, pushdown
                    )
                    with obs_trace.span(
                        "result_cache.lookup", query=query
                    ) as lookup_span:
                        entry = (
                            self.result_cache.lookup(key)
                            if key is not None
                            else None
                        )
                        if lookup_span is not None:
                            lookup_span.tag(hit=entry is not None)
                    if entry is not None:
                        resolved[query] = list(entry.results)
                        stats.merge(entry.stats)
                    else:
                        with obs_trace.span("plan.compile", query=query):
                            plan, matches = self._plan(query, top_k, semantics)
                        version = self.version
                        executor = self._executor(shared)
                        resolved[query] = executor.run(
                            plan, ranker, limits, pushdown=pushdown
                        )
                        stats.merge(executor.stats)
                        if self.adaptive:
                            self._observe_run(plan, executor.stats)
                        if key is not None and self.version == version:
                            self._cache_store(
                                key, ranker, matches,
                                resolved[query], executor.stats,
                            )
                batched.append(resolved[query])
        finally:
            if qtrace is not None:
                obs_trace.end_trace(qtrace)
        self.last_stats = stats
        self.last_shared = shared
        return batched

    # ------------------------------------------------------------------
    # live updates
    # ------------------------------------------------------------------
    def apply(self, mutations: Iterable[Mutation]) -> ChangeSet:
        """Apply one mutation batch and keep every derived structure live.

        The batch (``Insert`` / ``Update`` / ``Delete`` from
        :mod:`repro.live.changes`) is validated against key and
        foreign-key constraints and applied atomically — on failure the
        database rolls back and nothing else changes.  On success the
        net :class:`~repro.live.changes.ChangeSet` is applied in place
        to the inverted index, the data graph and the traversal cache
        (fine-grained: only touched components drop), the answer cache
        invalidates exactly the affected entries, and the engine
        :attr:`version` is bumped and stamped onto the returned
        changeset.  Results after ``apply`` are bit-identical to a
        freshly rebuilt engine; ``rebuild()`` stays available as the
        escape hatch.

        With a WAL attached (:meth:`attach_wal`) the batch is appended
        to the log — and fsynced — *before* any in-memory structure is
        patched, so a crash at any instant after the append can replay
        it; a crash during the append loses at most this batch, never
        an earlier one.
        """
        changeset = apply_to_database(self.database, mutations)
        if self.wal is not None:
            # Every batch gets a record — empty ones too — so the
            # replayed version counter matches the live engine exactly.
            self.wal.append(
                changeset_to_record(changeset, self.database, self.version + 1)
            )
            fault.maybe("wal.append")
        if not changeset.is_empty():
            with obs_trace.span("live.apply"):
                apply_changeset(
                    changeset,
                    self.database,
                    index=self.index,
                    data_graph=self.data_graph,
                    traversal_cache=self.traversal_cache,
                    shard_plan=self._shard_plan,
                )
            if len(self.result_cache):
                # Component tainting costs a BFS; with no live entries
                # there is nothing it could invalidate.
                with obs_trace.span("result_cache.invalidate") as inv_span:
                    dropped = self.result_cache.invalidate(
                        affected_tuples(self.data_graph, changeset), self.index
                    )
                    if inv_span is not None:
                        inv_span.add(dropped=dropped)
            # Instance statistics move with the data; recomputed lazily.
            self.statistics = None
            if obs_metrics.ENABLED:
                obs_metrics.REGISTRY.inc("engine.changesets_applied")
        self.version += 1
        changeset.version = self.version
        return changeset

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def explain_analyze(
        self,
        query: str,
        ranker: Optional[Ranker] = None,
        limits: Optional[SearchLimits] = None,
        top_k: Optional[int] = None,
        semantics: str = "and",
        pushdown: Optional[bool] = None,
        jobs: Optional[int] = None,
    ):
        """Run a query with tracing forced on and fuse its plan with the
        collected trace into a per-node report.

        Returns an :class:`~repro.obs.explain.ExplainReport` — call
        ``.render()`` for the table, ``.results`` for the (bit-identical)
        answers, ``.trace`` for the raw spans.  ``jobs > 1`` additionally
        routes one pass through the worker pool so the report carries the
        pooled trace (transport used, per-worker batches).
        """
        from repro.obs.explain import analyze

        return analyze(
            self,
            query,
            ranker=ranker,
            limits=limits,
            top_k=top_k,
            semantics=semantics,
            pushdown=pushdown,
            jobs=jobs,
        )

    def metrics_snapshot(self) -> dict:
        """Plain-dict view of the process metrics registry (counters,
        gauges, histogram buckets) — empty unless metrics are enabled
        via ``repro.obs.set_enabled``."""
        return obs_metrics.REGISTRY.snapshot()

    def save_trace(self, path) -> bool:
        """Write :attr:`last_trace` as JSONL; False when no trace exists."""
        if self.last_trace is None:
            return False
        self.last_trace.save_jsonl(path)
        return True

    def explain(self, result: SearchResult) -> str:
        """A human-readable explanation of one ranked answer."""
        answer = result.answer
        lines = [f"#{result.rank}  {answer.render()}  score={result.score}"]
        if isinstance(answer, Connection):
            verdict = answer.verdict()
            lines.append(f"  cardinalities: {answer.render_with_cardinalities()}")
            lines.append(f"  conceptual:    {answer.render_conceptual()}")
            lines.append(
                f"  rdb length {answer.rdb_length}, er length {answer.er_length}"
            )
            lines.append(f"  verdict: {verdict.describe()}")
            if verdict.is_loose:
                level = "close" if is_instance_close(answer) else "loose"
                lines.append(f"  instance level: {level}")
        elif isinstance(answer, JoiningNetwork):
            lines.append(
                f"  tuples {len(answer.tuples)}, rdb length {answer.rdb_length}, "
                f"er length {answer.er_length}, "
                f"loose joints {answer.loose_joint_count()}"
            )
        return "\n".join(lines)

    def rebuild(self) -> None:
        """Refresh derived structures after direct database mutations.

        The traversal cache is bound to the discarded data graph, so a
        fresh one replaces it.  All pipeline state is reset too: the
        answer cache (its entries reference the old graph), the last-run
        diagnostics (``last_stats``) and any retained ``search_batch``
        sharing table with its ``SharedStream`` fan-outs — nothing stale
        survives a rebuild.  :meth:`apply` is the incremental
        alternative; ``rebuild()`` is the escape hatch and the
        differential oracle the live subsystem is tested against.

        Refused while a WAL is attached: a rebuild absorbs direct
        database mutations that never produced WAL records, so the log
        could no longer replay to this state.  Detach (or compact and
        detach) first.
        """
        if self.wal is not None:
            raise WalError(
                "rebuild() would desynchronise the attached WAL; call "
                "detach_wal() first",
                wal=self.wal.path,
            )
        self.data_graph = DataGraph(self.database)
        self.index.build()
        self.traversal_cache = TraversalCache(self.data_graph, vector=self.vector)
        self.result_cache.clear()
        self.last_stats = ExecutionStats()
        self.last_shared = SharedEnumerations()
        self._shard_plan = None
        self.statistics = None
        self.close_pool()
        self.version += 1

    # ------------------------------------------------------------------
    # snapshots & parallel serving
    # ------------------------------------------------------------------
    def save(self, path) -> dict:
        """Write the engine's full state as a binary snapshot.

        The snapshot (see :mod:`repro.scale.snapshot`) captures the
        database, the compiled CSR graph, the inverted index, corpus
        statistics and the shard assignment at the engine's current
        :attr:`version`; :meth:`open` restores a bit-identical engine
        an order of magnitude faster than a cold build.  Returns the
        snapshot's meta dict.
        """
        from repro.scale.snapshot import write_snapshot

        meta = write_snapshot(self, path)
        self.snapshot_path = str(path)
        self._snapshot_version = self.version
        self._snapshot_generation = meta.get("generation")
        return meta

    @classmethod
    def open(
        cls, path, wal=None, wal_sync: bool = True, **options
    ) -> "KeywordSearchEngine":
        """Open a snapshot written by :meth:`save` into a ready engine.

        ``core=`` / ``shards=`` default to the writer's configuration;
        every other construction option (``ranker``, ``limits``,
        ``result_cache_entries``, ...) passes through.  The CSR array
        sections stay ``mmap``-backed, so concurrently opened processes
        share their pages.

        ``wal=True`` attaches (and replays) the snapshot's conventional
        write-ahead log — ``<path>.wal`` — creating it when absent; a
        string/path names the log file explicitly.  See
        :meth:`attach_wal`.
        """
        from repro.scale.snapshot import load_engine

        engine = load_engine(path, **options)
        if wal:
            engine.attach_wal(
                None if wal is True else wal, sync=wal_sync
            )
        return engine

    # ------------------------------------------------------------------
    # durability (write-ahead log)
    # ------------------------------------------------------------------
    def attach_wal(self, path=None, *, sync: bool = True) -> int:
        """Pair this snapshot-backed engine with a write-ahead log.

        Creates ``path`` (default: ``<snapshot>.wal``) when absent;
        otherwise validates the generation handshake and replays the
        log's records through the incremental maintenance path,
        returning how many were replayed.  A torn tail record —
        the only damage a crashed append can cause — is tolerated and
        truncated by the next append; any other mismatch refuses:

        * generation match → replay (engine ends bit-identical to one
          that executed the batches live);
        * generation mismatch, every record already folded into this
          snapshot (all versions ≤ the snapshot's) → the log is a
          leftover of an interrupted compaction: reset it, replay
          nothing;
        * generation mismatch with newer records → ``WalError`` — the
          log belongs to a different snapshot and silently dropping or
          replaying it would corrupt state.
        """
        from repro.durable.wal import (
            WriteAheadLog,
            default_wal_path,
            replay_into,
        )

        if self.wal is not None:
            raise WalError("a WAL is already attached", path=self.wal.path)
        if self.snapshot_path is None or self._snapshot_generation is None:
            raise WalError(
                "attach_wal needs a snapshot-backed engine; save() or "
                "open() first"
            )
        if self._snapshot_version != self.version:
            raise WalError(
                "engine has moved past its snapshot; save() before "
                "attaching a WAL",
                engine_version=self.version,
                snapshot_version=self._snapshot_version,
            )
        wal_path = (
            str(path) if path is not None
            else default_wal_path(self.snapshot_path)
        )
        replayed = 0
        import os

        exists = os.path.exists(wal_path) and os.path.getsize(wal_path) > 0
        if exists:
            wal = WriteAheadLog(wal_path, sync=sync)
            if wal.generation == self._snapshot_generation:
                replayed = replay_into(self, wal)
            else:
                records = wal.scan()
                if records and records[-1][1].get("version", 0) > self.version:
                    wal.close()
                    raise WalError(
                        "WAL belongs to a different snapshot generation",
                        wal=wal_path,
                        wal_generation=wal.generation,
                        snapshot_generation=self._snapshot_generation,
                    )
                # Interrupted compaction: the snapshot already contains
                # every record. Start the log over for this generation.
                wal.reset(
                    generation=self._snapshot_generation,
                    base_version=self.version,
                )
        else:
            wal = WriteAheadLog(
                wal_path,
                generation=self._snapshot_generation,
                base_version=self.version,
                sync=sync,
            )
        self.wal = wal
        self._wal_snapshot_path = self.snapshot_path
        return replayed

    def detach_wal(self) -> None:
        """Close and detach the WAL (no-op when none is attached).

        The log file stays on disk, fully replayable against its
        snapshot; only this engine stops appending to it.
        """
        if self.wal is not None:
            self.wal.close()
            self.wal = None
            self._wal_snapshot_path = None

    def compact_wal(self, out=None):
        """Fold the attached WAL into a fresh snapshot and swap it in.

        Delegates to :func:`repro.durable.compact.hot_compact`: the
        paired snapshot is atomically replaced with the engine's
        current state, the WAL resets to empty, and a running worker
        pool reopens onto the new snapshot one worker at a time.
        Returns the :class:`~repro.durable.compact.CompactionReport`.
        """
        from repro.durable.compact import hot_compact

        return hot_compact(self, out=out)

    def _ensure_snapshot(self) -> str:
        """A snapshot path matching the engine's current version.

        Reuses the last saved/opened snapshot while the version still
        matches; otherwise (never saved, or mutated since) writes to a
        private temporary file that is overwritten on every refresh.
        """
        if (
            self.snapshot_path is not None
            and self._snapshot_version == self.version
        ):
            return self.snapshot_path
        import os
        import tempfile

        if self._autosave_dir is None:
            self._autosave_dir = tempfile.TemporaryDirectory(prefix="repro-snap-")
        path = os.path.join(self._autosave_dir.name, "engine.snap")
        self.save(path)
        return path

    def _ensure_searcher(self, jobs: int):
        """The engine's parallel searcher, rebuilt when state moved on."""
        key = (self.version, jobs)
        if self._searcher is not None and self._searcher_key == key:
            return self._searcher
        self.close_pool()
        from repro.scale.parallel import ParallelSearcher

        self._searcher = ParallelSearcher(
            self._ensure_snapshot(),
            jobs,
            core=self.core,
            shards=self.shards,
            result_cache_entries=self.result_cache.max_entries,
            adaptive=self.adaptive,
        )
        self._searcher_key = key
        return self._searcher

    def close_pool(self) -> None:
        """Shut down the parallel worker pool (no-op when none is open)."""
        if self._searcher is not None:
            self._searcher.close()
            self._searcher = None
            self._searcher_key = None

    def close(self) -> None:
        """Release serving resources: the worker pool and, for
        snapshot-opened engines, the snapshot's mmap-backed views.

        A closed snapshot engine must not answer further queries — its
        compiled state references the released pages and fails loudly.
        Idempotent; engines built directly from a database only shut
        their pool down.
        """
        self.detach_wal()
        self.close_pool()
        if self._snapshot is not None:
            # Backend views pin the snapshot's exported mmap buffers
            # (mmap.close() raises BufferError while any live): drop
            # them first.
            frozen = self.traversal_cache._frozen
            if frozen is not None:
                frozen.release_vector_views()
            self._snapshot.close()

    def __enter__(self) -> "KeywordSearchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KeywordSearchEngine(db={self.database.schema.name!r}, "
            f"ranker={self.ranker.name!r})"
        )
