"""Schema-level closeness analysis and query planning.

The paper's classification runs over *schema-level* paths (Table 1) before
any instance is consulted.  This module precomputes that analysis for a
whole schema and puts it to work:

* :class:`SchemaAnalyzer` — enumerate and classify every ER path up to a
  length bound between every pair of entity types; expose the *closeness
  matrix* (can these two entity types be closely associated at all, and at
  what minimal conceptual distance?);
* :meth:`SchemaAnalyzer.suggest_limits` — query planning: given the
  relations two keywords can match in, derive the smallest enumeration
  bounds that cannot miss a close connection (plus a slack for loose
  ones), so instance search does not over-explore;
* :func:`analyze_relational_schema` — the same analysis for a plain
  relational schema via reverse engineering (middle relations collapse to
  one conceptual step, exactly like instance-level ER length).

The analyzer is deterministic and cached per (source, target).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement
from typing import Iterable, Optional

from repro.core.associations import AssociationVerdict, classify_er_path
from repro.core.search import SearchLimits
from repro.er.model import ERSchema
from repro.er.paths import ERPath, enumerate_paths
from repro.er.reverse import reverse_engineer
from repro.relational.schema import DatabaseSchema

__all__ = ["SchemaPathSummary", "SchemaAnalyzer", "analyze_relational_schema"]


@dataclass(frozen=True)
class SchemaPathSummary:
    """One classified schema path."""

    path: ERPath
    verdict: AssociationVerdict

    @property
    def er_length(self) -> int:
        return self.path.length

    def describe(self) -> str:
        return f"{self.path}  ->  {self.verdict.describe()}"


class SchemaAnalyzer:
    """Exhaustive close/loose analysis of an ER schema up to a path bound."""

    def __init__(self, er_schema: ERSchema, max_length: int = 4) -> None:
        self.er_schema = er_schema
        self.max_length = max_length
        self._cache: dict[tuple[str, str], tuple[SchemaPathSummary, ...]] = {}

    # ------------------------------------------------------------------
    # path-level analysis
    # ------------------------------------------------------------------
    def paths_between(self, source: str, target: str) -> tuple[SchemaPathSummary, ...]:
        """Every classified path between two entity types (cached)."""
        key = (source, target)
        if key not in self._cache:
            summaries = tuple(
                SchemaPathSummary(path=path, verdict=classify_er_path(path))
                for path in enumerate_paths(
                    self.er_schema, source, target, self.max_length
                )
            )
            self._cache[key] = summaries
        return self._cache[key]

    def close_paths(self, source: str, target: str) -> tuple[SchemaPathSummary, ...]:
        return tuple(
            s for s in self.paths_between(source, target) if s.verdict.is_close
        )

    def closest_distance(self, source: str, target: str) -> Optional[int]:
        """Minimal conceptual length of a *close* path, None when none exists."""
        close = self.close_paths(source, target)
        if not close:
            return None
        return min(summary.er_length for summary in close)

    def any_distance(self, source: str, target: str) -> Optional[int]:
        """Minimal conceptual length of any path within the bound."""
        paths = self.paths_between(source, target)
        if not paths:
            return None
        return min(summary.er_length for summary in paths)

    # ------------------------------------------------------------------
    # matrix view
    # ------------------------------------------------------------------
    def closeness_matrix(self) -> dict[tuple[str, str], str]:
        """For every unordered entity pair: 'close', 'loose', 'both' or 'none'.

        'close' — every path within the bound is close; 'loose' — every
        path is loose; 'both' — the pair has close and loose paths (the
        interesting case: ranking must discriminate); 'none' — no path
        within the bound.
        """
        names = sorted(entity.name for entity in self.er_schema.entity_types)
        matrix: dict[tuple[str, str], str] = {}
        for source, target in combinations_with_replacement(names, 2):
            if source == target:
                continue
            paths = self.paths_between(source, target)
            if not paths:
                matrix[(source, target)] = "none"
                continue
            close = sum(1 for s in paths if s.verdict.is_close)
            if close == len(paths):
                matrix[(source, target)] = "close"
            elif close == 0:
                matrix[(source, target)] = "loose"
            else:
                matrix[(source, target)] = "both"
        return matrix

    def report(self) -> str:
        """Printable per-pair analysis (Table 1 generalised to the schema)."""
        lines = [f"schema closeness analysis (paths up to {self.max_length})"]
        for (source, target), verdict in sorted(self.closeness_matrix().items()):
            lines.append(f"  {source} -- {target}: {verdict}")
            for summary in self.paths_between(source, target):
                closeness = "close" if summary.verdict.is_close else "loose"
                lines.append(f"    [{closeness}] {summary.path}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # query planning
    # ------------------------------------------------------------------
    def suggest_limits(
        self,
        source_entities: Iterable[str],
        target_entities: Iterable[str],
        loose_slack: int = 1,
        defaults: SearchLimits = SearchLimits(),
    ) -> SearchLimits:
        """Smallest enumeration bounds that cover every close association.

        Takes the maximum over entity pairs of the minimal close-path
        length (falling back to the minimal any-path length when no close
        path exists), adds ``loose_slack`` so strictly longer loose
        connections are still found, and converts conceptual length to an
        RDB-edge bound (each conceptual N:M step costs up to two FK edges).
        Pairs with no schema path at all are ignored; when *no* pair is
        connected the defaults are returned unchanged.
        """
        needed = 0
        connected = False
        for source in set(source_entities):
            for target in set(target_entities):
                if source == target:
                    connected = True
                    continue
                distance = self.closest_distance(source, target)
                if distance is None:
                    distance = self.any_distance(source, target)
                if distance is None:
                    continue
                connected = True
                needed = max(needed, distance)
        if not connected:
            return defaults
        er_bound = needed + loose_slack
        rdb_bound = 2 * er_bound  # every conceptual step is at most 2 edges
        return SearchLimits(
            max_rdb_length=max(1, rdb_bound),
            max_tuples=max(2, rdb_bound + 1),
            max_paths_per_pair=defaults.max_paths_per_pair,
            max_networks=defaults.max_networks,
        )


def analyze_relational_schema(
    schema: DatabaseSchema, max_length: int = 4
) -> SchemaAnalyzer:
    """Analyze a relational schema's conceptual view.

    Reverse-engineers the ER view (middle relations become ``N:M``
    relationships, so conceptual path lengths match instance-level ER
    lengths) and wraps it in a :class:`SchemaAnalyzer`.
    """
    result = reverse_engineer(schema)
    return SchemaAnalyzer(result.er_schema, max_length=max_length)
