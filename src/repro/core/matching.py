"""Keyword-to-tuple matching.

A keyword matches a tuple when it equals a whole attribute value or occurs
as a word inside a (text) attribute — both modes are served by the inverted
index.  :func:`match_keywords` resolves a whole query and keeps the posting
provenance so results can explain *why* a tuple matched (attribute name,
whole-value vs word match).

**Role-qualified keywords** (in the spirit of MeanKS, which the paper
cites): ``smith@EMPLOYEE`` restricts the keyword's matches to tuples of
one relation, letting the user disambiguate which role a keyword plays.
The qualifier is case-insensitive and applies per keyword.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import QueryError
from repro.relational.database import TupleId
from repro.relational.index import InvertedIndex, Posting

__all__ = ["KeywordMatch", "match_keywords", "parse_query", "split_role"]


@dataclass(frozen=True)
class KeywordMatch:
    """All matches of one keyword."""

    keyword: str
    tuple_ids: tuple[TupleId, ...]
    postings: tuple[Posting, ...]

    @property
    def is_empty(self) -> bool:
        return not self.tuple_ids

    def matched_attributes(self, tid: TupleId) -> tuple[str, ...]:
        """Attribute names in which the keyword occurred for one tuple."""
        return tuple(
            dict.fromkeys(p.attribute for p in self.postings if p.tid == tid)
        )

    def __len__(self) -> int:
        return len(self.tuple_ids)


def parse_query(query: str) -> tuple[str, ...]:
    """Split a query string into keywords.

    Whitespace separates keywords; duplicates collapse case-insensitively
    (first-seen spelling wins, order preserved) — matching is always case
    insensitive but results render keywords as the user typed them, like
    the paper's ``d1(XML) – e1(Smith)``.  An empty query raises
    :class:`~repro.errors.QueryError`.
    """
    seen: dict[str, str] = {}
    for token in query.split():
        seen.setdefault(token.lower(), token)
    if not seen:
        raise QueryError("empty keyword query", query=query)
    return tuple(seen.values())


def split_role(keyword: str) -> tuple[str, Optional[str]]:
    """Split ``term@RELATION`` into (term, relation); relation is optional.

    A trailing or leading ``@`` (no term or no relation) is a query error;
    at most one qualifier is allowed.
    """
    keyword = keyword.strip()
    if "@" not in keyword:
        return keyword, None
    term, __, relation = keyword.partition("@")
    if not term or not relation or "@" in relation:
        raise QueryError("malformed role-qualified keyword", keyword=keyword)
    return term, relation


def match_keywords(
    index: InvertedIndex, keywords: Sequence[str]
) -> tuple[KeywordMatch, ...]:
    """Resolve each keyword against the index, preserving query order.

    Role-qualified keywords (``term@RELATION``) match only tuples of the
    named relation; the :attr:`KeywordMatch.keyword` keeps the full
    qualified spelling so rendered answers show the user's intent.
    """
    if not keywords:
        raise QueryError("no keywords to match")
    matches = []
    for keyword in keywords:
        term, role = split_role(keyword)
        tuple_ids = index.matching_tuples(term)
        postings = index.postings(term)
        if role is not None:
            wanted = role.upper()
            tuple_ids = tuple(
                tid for tid in tuple_ids if tid.relation.upper() == wanted
            )
            postings = tuple(
                posting
                for posting in postings
                if posting.tid.relation.upper() == wanted
            )
        matches.append(
            KeywordMatch(
                keyword=keyword.strip(),
                tuple_ids=tuple_ids,
                postings=postings,
            )
        )
    return tuple(matches)
