"""Enumeration of keyword-search answers over the data graph.

Answers come in two shapes:

* :class:`~repro.core.connections.Connection` — a tuple *path* between two
  keyword tuples.  This is the paper's setting (all of its examples are
  two-keyword queries) and the default for queries with two keywords.
* :class:`JoiningNetwork` — a connected tuple *tree* covering one match
  tuple per keyword, for queries with three or more keywords.  A joining
  network aggregates the paper's per-path metrics over the tree paths
  between its keyword tuples.

Both shapes expose the same ranking interface: ``rdb_length``,
``er_length``, ``loose_joint_count()``, ``ambiguity_factor()`` and
``covered_keywords``.  Enumeration is exhaustive within explicit bounds and
deterministic, so the reproduction tests can assert paper tables exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, product
from typing import Iterator, Optional, Sequence

import networkx as nx

from repro.core import ambiguity as ambiguity_module
from repro.core.connections import Connection
from repro.core.matching import KeywordMatch
from repro.errors import QueryError
from repro.graph.csr import (
    csr_enumerate_joining_trees,
    csr_enumerate_simple_paths,
    resolve_core,
)
from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import (
    TraversalCache,
    fast_enumerate_joining_trees,
    fast_enumerate_simple_paths,
)
from repro.graph.traversal import (
    TuplePathStep,
    _sort_key,
    enumerate_joining_trees,
    enumerate_simple_paths,
)
from repro.relational.database import TupleId

__all__ = [
    "SearchLimits",
    "SingleTupleAnswer",
    "JoiningNetwork",
    "find_connections",
    "find_joining_networks",
]


@dataclass(frozen=True)
class SearchLimits:
    """Bounds on answer enumeration.

    ``max_rdb_length`` bounds path answers in FK edges; ``max_tuples``
    bounds joining networks in tuples; the ``max_*_results`` budgets raise
    :class:`~repro.errors.SearchLimitError` when exceeded rather than
    silently truncating.
    """

    max_rdb_length: int = 5
    max_tuples: int = 6
    max_paths_per_pair: Optional[int] = 100_000
    max_networks: Optional[int] = 100_000

    def __post_init__(self) -> None:
        if self.max_rdb_length < 1:
            raise QueryError(
                "max_rdb_length must be at least 1", got=self.max_rdb_length
            )
        if self.max_tuples < 1:
            raise QueryError(
                "max_tuples must be at least 1", got=self.max_tuples
            )
        for name in ("max_paths_per_pair", "max_networks"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise QueryError(f"{name} must be positive or None", got=value)


class SingleTupleAnswer:
    """A degenerate answer: one tuple containing every query keyword."""

    def __init__(self, data_graph: DataGraph, tid: TupleId,
                 keywords: frozenset[str]) -> None:
        self.data_graph = data_graph
        self.tid = tid
        self.covered_keywords = keywords
        self.rdb_length = 0
        self.er_length = 0

    def loose_joint_count(self) -> int:
        return 0

    def ambiguity_factor(self) -> int:
        return 1

    def tuple_ids(self) -> tuple[TupleId, ...]:
        return (self.tid,)

    def render(self) -> str:
        record = self.data_graph.database.tuple(self.tid)
        rendered = ",".join(sorted(self.covered_keywords))
        return f"{record.label}({rendered})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SingleTupleAnswer({self.render()!r})"


class JoiningNetwork:
    """A connected tuple tree covering one match tuple per keyword.

    The network stores a spanning tree of the induced subgraph on its tuple
    set (minimum-edge, deterministic) and derives the paper's metrics from
    the tree paths between keyword tuples:

    * ``rdb_length`` — number of tree edges;
    * ``er_length`` — tree edges after collapsing interior middle tuples of
      degree two;
    * ``loose_joint_count`` / ``ambiguity_factor`` — summed / multiplied
      over the pairwise tree paths between keyword tuples.
    """

    def __init__(
        self,
        data_graph: DataGraph,
        tuple_ids: frozenset[TupleId],
        keyword_tuples: dict[str, TupleId],
    ) -> None:
        self.data_graph = data_graph
        self.tuples = tuple_ids
        self.keyword_tuples = dict(keyword_tuples)
        self.covered_keywords = frozenset(keyword_tuples)
        # Computed on first metric access: rendering and identity don't
        # need the tree, so reconstructing a network (e.g. from a
        # parallel worker's portable answer) stays allocation-cheap.
        self._tree_cache: Optional[nx.Graph] = None
        self._paths: Optional[tuple[Connection, ...]] = None

    @property
    def _tree(self) -> nx.Graph:
        if self._tree_cache is None:
            self._tree_cache = self._spanning_tree()
        return self._tree_cache

    def _spanning_tree(self) -> nx.Graph:
        # networkx preserves the node order it is handed, and the
        # minimum-spanning-tree tie-break among equal-weight edges
        # follows it.  ``self.tuples`` is a frozenset whose iteration
        # order depends on the process hash seed *and* on how the
        # enumeration core assembled it — inducing over a sorted list
        # pins one deterministic tree for every core and every run.
        induced = self.data_graph.induced_subgraph(
            sorted(self.tuples, key=_sort_key)
        )
        simple = nx.Graph()
        simple.add_nodes_from(induced.nodes)
        for left, right, key, data in sorted(
            induced.edges(keys=True, data=True),
            key=lambda item: (str(item[0]), str(item[1]), item[2]),
        ):
            if not simple.has_edge(left, right):
                simple.add_edge(left, right, edge_key=key, edge_data=data)
        return nx.minimum_spanning_tree(simple)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def rdb_length(self) -> int:
        return self._tree.number_of_edges()

    @property
    def er_length(self) -> int:
        collapsed = 0
        for node in self._tree.nodes:
            if not self.data_graph.is_middle(node):
                continue
            neighbours = list(self._tree.neighbors(node))
            if len(neighbours) == 2 and not any(
                self.data_graph.is_middle(n) for n in neighbours
            ):
                collapsed += 1
        return self._tree.number_of_edges() - collapsed

    def keyword_pair_paths(self) -> tuple[Connection, ...]:
        """Tree paths between every pair of keyword tuples."""
        if self._paths is not None:
            return self._paths
        paths = []
        tids = sorted(set(self.keyword_tuples.values()), key=str)
        for left, right in combinations(tids, 2):
            node_path = nx.shortest_path(self._tree, left, right)
            steps = []
            for source, target in zip(node_path, node_path[1:]):
                data = self._tree.edges[source, target]
                steps.append(
                    TuplePathStep(
                        source, target, data["edge_key"], data["edge_data"]
                    )
                )
            if steps:
                paths.append(Connection(self.data_graph, steps))
        self._paths = tuple(paths)
        return self._paths

    def loose_joint_count(self) -> int:
        return sum(
            path.verdict().loose_joint_count for path in self.keyword_pair_paths()
        )

    def ambiguity_factor(self) -> int:
        factor = 1
        for path in self.keyword_pair_paths():
            factor *= ambiguity_module.ambiguity_factor(path)
        return factor

    def tuple_ids(self) -> tuple[TupleId, ...]:
        return tuple(sorted(self.tuples, key=str))

    def render(self) -> str:
        labels = []
        database = self.data_graph.database
        inverse: dict[TupleId, list[str]] = {}
        for keyword, tid in self.keyword_tuples.items():
            inverse.setdefault(tid, []).append(keyword)
        for tid in self.tuple_ids():
            record = database.tuple(tid)
            keywords = inverse.get(tid)
            if keywords:
                labels.append(f"{record.label}({','.join(sorted(keywords))})")
            else:
                labels.append(record.label)
        return "{" + ", ".join(labels) + "}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoiningNetwork):
            return NotImplemented
        return self.tuples == other.tuples and self.keyword_tuples == other.keyword_tuples

    def __hash__(self) -> int:
        return hash((self.tuples, tuple(sorted(self.keyword_tuples.items()))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JoiningNetwork({self.render()!r})"


def _keyword_map(
    matches: Sequence[KeywordMatch], tids: Sequence[TupleId]
) -> dict[TupleId, frozenset[str]]:
    """Map each tuple to the query keywords it contains."""
    result: dict[TupleId, set[str]] = {}
    for match in matches:
        for tid in match.tuple_ids:
            if tid in tids:
                result.setdefault(tid, set()).add(match.keyword)
    return {tid: frozenset(keywords) for tid, keywords in result.items()}


def find_connections(
    data_graph: DataGraph,
    matches: Sequence[KeywordMatch],
    limits: SearchLimits = SearchLimits(),
    include_single_tuples: bool = True,
    *,
    use_fast_traversal: bool = True,
    core: Optional[str] = None,
    cache: Optional[TraversalCache] = None,
) -> Iterator[Connection | SingleTupleAnswer]:
    """Enumerate path answers for a two-keyword query (AND semantics).

    Yields one :class:`Connection` per simple path between a tuple matching
    the first keyword and a tuple matching the second (shorter paths
    first per pair), plus :class:`SingleTupleAnswer` for tuples matching
    both keywords when ``include_single_tuples``.

    ``core`` selects the traversal kernel (``"csr"`` compiled integer
    kernels — the default, ``"fast"`` pruned TupleId core,
    ``"reference"`` brute force); ``use_fast_traversal=False`` is the
    legacy spelling of ``core="reference"``.  Answers and order are
    identical across cores, only the speed differs.  Pass a
    :class:`TraversalCache` to share adjacency, distance maps and the
    compiled CSR graph across calls — the engine passes its own.

    Raises :class:`~repro.errors.QueryError` unless exactly two keyword
    matches are supplied — use :func:`find_joining_networks` otherwise.
    """
    if len(matches) != 2:
        raise QueryError(
            "find_connections needs exactly two keywords",
            keywords=[m.keyword for m in matches],
        )
    core = resolve_core(use_fast_traversal, core)
    if core != "reference" and cache is None:
        cache = TraversalCache(data_graph)
    first, second = matches
    if include_single_tuples:
        second_set = set(second.tuple_ids)
        both = [tid for tid in first.tuple_ids if tid in second_set]
        for tid in both:
            yield SingleTupleAnswer(
                data_graph, tid, frozenset((first.keyword, second.keyword))
            )
    for source in first.tuple_ids:
        for target in second.tuple_ids:
            if source == target:
                continue
            if core == "csr":
                paths = csr_enumerate_simple_paths(
                    data_graph,
                    source,
                    target,
                    limits.max_rdb_length,
                    max_paths=limits.max_paths_per_pair,
                    cache=cache,
                )
            elif core == "fast":
                paths = fast_enumerate_simple_paths(
                    data_graph,
                    source,
                    target,
                    limits.max_rdb_length,
                    max_paths=limits.max_paths_per_pair,
                    cache=cache,
                )
            else:
                paths = enumerate_simple_paths(
                    data_graph,
                    source,
                    target,
                    limits.max_rdb_length,
                    max_paths=limits.max_paths_per_pair,
                )
            for steps in paths:
                tids = [steps[0].source] + [s.target for s in steps]
                yield Connection(
                    data_graph, steps, _keyword_map(matches, tids)
                )


def find_joining_networks(
    data_graph: DataGraph,
    matches: Sequence[KeywordMatch],
    limits: SearchLimits = SearchLimits(),
    *,
    use_fast_traversal: bool = True,
    core: Optional[str] = None,
    cache: Optional[TraversalCache] = None,
) -> Iterator[JoiningNetwork]:
    """Enumerate joining networks for a query with any number of keywords.

    For every assignment of one match tuple per keyword, connected tuple
    sets containing the assigned tuples are enumerated (smaller first) and
    wrapped as :class:`JoiningNetwork`.  Distinct assignments may produce
    the same tuple set with different keyword bindings; both are yielded —
    deduplication by tuple set is the caller's choice.

    ``core`` / ``use_fast_traversal`` / ``cache`` behave as in
    :func:`find_connections`; the cache pays off especially here because
    every keyword-tuple assignment shares its distance maps.
    """
    if not matches:
        raise QueryError("no keywords to search")
    if any(match.is_empty for match in matches):
        return
    core = resolve_core(use_fast_traversal, core)
    if core != "reference" and cache is None:
        cache = TraversalCache(data_graph)
    seen: set[tuple[frozenset[TupleId], tuple[tuple[str, TupleId], ...]]] = set()
    assignments = product(*(match.tuple_ids for match in matches))
    for assignment in assignments:
        keyword_tuples = {
            match.keyword: tid for match, tid in zip(matches, assignment)
        }
        required = list(dict.fromkeys(assignment))
        if core == "csr":
            tuple_sets = csr_enumerate_joining_trees(
                data_graph,
                required,
                limits.max_tuples,
                max_results=limits.max_networks,
                cache=cache,
            )
        elif core == "fast":
            tuple_sets = fast_enumerate_joining_trees(
                data_graph,
                required,
                limits.max_tuples,
                max_results=limits.max_networks,
                cache=cache,
            )
        else:
            tuple_sets = enumerate_joining_trees(
                data_graph,
                required,
                limits.max_tuples,
                max_results=limits.max_networks,
            )
        for tuple_set in tuple_sets:
            key = (tuple_set, tuple(sorted(keyword_tuples.items())))
            if key in seen:
                continue
            seen.add(key)
            yield JoiningNetwork(data_graph, tuple_set, keyword_tuples)
