"""Instance-level closeness and ambiguity (paper §3 and §4).

Two instance-level refinements of the schema-level close/loose verdict:

* :func:`is_instance_close` — a schema-loose connection is *instance close*
  when the association it implies between its endpoint tuples is
  corroborated by a close connection elsewhere in the instance.  The paper's
  connections 3 and 4 are instance close (John Smith really works on
  project ``p1`` and for department ``d1``); connection 6 is not (Barbara
  Smith never works on project ``p2``).
* :func:`ambiguity_factor` — the paper's "more precise approach": score a
  connection by the *actual number of participating tuples* at each
  transitive-N:M joint.  A joint with fan-in ``a`` and fan-out ``b``
  contributes ``a * b`` alternative endpoint pairs; the factor is the
  product over all loose joints (1 for close connections).
"""

from __future__ import annotations

from typing import Optional

from repro.core.associations import loose_joints
from repro.core.connections import ConceptualStep, Connection
from repro.errors import SearchLimitError
from repro.graph.data_graph import DataGraph
from repro.graph.traversal import enumerate_simple_paths
from repro.relational.database import TupleId

__all__ = [
    "joint_fan_counts",
    "ambiguity_factor",
    "close_connection_exists",
    "is_instance_close",
]


def _related_count(
    data_graph: DataGraph,
    anchor: TupleId,
    step: ConceptualStep,
    side_relation: str,
) -> int:
    """Number of tuples of ``side_relation`` related to ``anchor`` like ``step``.

    For a plain FK step this counts data-graph neighbours of ``anchor`` via
    the step's foreign key that live in ``side_relation``; for a collapsed
    ``N:M`` step it counts distinct ``side_relation`` tuples reachable
    through tuples of the step's middle relation.
    """
    if step.middle is not None:
        middle_relation = step.middle.relation
        related: set[TupleId] = set()
        for neighbour, __, __ in data_graph.neighbours(anchor):
            if neighbour.relation != middle_relation:
                continue
            for other, __, __ in data_graph.neighbours(neighbour):
                if other.relation == side_relation and other != anchor:
                    related.add(other)
        return len(related)
    fk_name = step.edge_steps[0].edge_key
    related = set()
    for neighbour, key, __ in data_graph.neighbours(anchor):
        if key == fk_name and neighbour.relation == side_relation:
            related.add(neighbour)
    return len(related)


def joint_fan_counts(
    connection: Connection, joint_position: int
) -> tuple[int, int]:
    """Actual (fan-in, fan-out) tuple counts at one loose joint.

    ``joint_position`` indexes the conceptual step *before* the joint, as in
    :func:`repro.core.associations.loose_joints`.
    """
    steps = connection.conceptual_steps()
    step_in = steps[joint_position]
    step_out = steps[joint_position + 1]
    anchor = step_in.target
    data_graph = connection.data_graph
    fan_in = _related_count(data_graph, anchor, step_in, step_in.source.relation)
    fan_out = _related_count(data_graph, anchor, step_out, step_out.target.relation)
    return fan_in, fan_out


def ambiguity_factor(connection: Connection) -> int:
    """Product of ``fan_in * fan_out`` over all transitive-N:M joints.

    1 for connections without loose joints; larger values mean the joint
    entities associate more endpoint pairs and the connection is vaguer.
    """
    joints = loose_joints(connection.cardinalities())
    factor = 1
    for joint in joints:
        fan_in, fan_out = joint_fan_counts(connection, joint)
        factor *= max(1, fan_in) * max(1, fan_out)
    return factor


def close_connection_exists(
    data_graph: DataGraph,
    source: TupleId,
    target: TupleId,
    max_rdb_length: int,
    max_paths: Optional[int] = 10_000,
) -> bool:
    """True when some close connection joins the two tuples.

    Enumerates simple paths up to ``max_rdb_length`` edges and stops at the
    first whose conceptual classification is close.
    """
    try:
        for steps in enumerate_simple_paths(
            data_graph, source, target, max_rdb_length, max_paths=max_paths
        ):
            if Connection(data_graph, steps).verdict().is_close:
                return True
    except SearchLimitError:
        # The budget guards pathological graphs; treat as "not shown close".
        return False
    return False


def is_instance_close(
    connection: Connection, max_rdb_length: Optional[int] = None
) -> bool:
    """Paper §3: is a connection close at the *instance* level?

    Schema-close connections are trivially instance close.  A schema-loose
    connection is instance close when a close connection exists between the
    same endpoint tuples within ``max_rdb_length`` edges (default: the
    connection's own RDB length — corroboration may not be farther away
    than the claim).
    """
    if connection.verdict().is_close:
        return True
    if max_rdb_length is None:
        max_rdb_length = connection.rdb_length
    return close_connection_exists(
        connection.data_graph,
        connection.source,
        connection.target,
        max_rdb_length,
    )
