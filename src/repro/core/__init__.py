"""The paper's contribution: close/loose association analysis for keyword search.

* :mod:`repro.core.associations` — classify (transitive) relationships by
  their cardinality constraints (paper section 2, Table 1);
* :mod:`repro.core.connections` — tuple connections with RDB and conceptual
  (ER) lengths (paper section 3, Tables 2 and 3);
* :mod:`repro.core.matching` — keyword-to-tuple matching;
* :mod:`repro.core.search` — enumeration of connections / joining networks;
* :mod:`repro.core.ranking` — ranking strategies, including the paper's
  closeness-first proposal and the instance-level refinement its future
  work sketches;
* :mod:`repro.core.plan` — the query plan IR and planner (every query
  shape compiles to one plan);
* :mod:`repro.core.executor` — streaming plan execution with generalized
  top-k pushdown and batch-level enumeration sharing;
* :mod:`repro.core.engine` — the :class:`KeywordSearchEngine` facade.
"""

from repro.core.associations import (
    AssociationKind,
    AssociationVerdict,
    classify_cardinalities,
    classify_er_path,
    loose_joints,
)
from repro.core.connections import Connection, ConceptualStep
from repro.core.matching import KeywordMatch, match_keywords
from repro.core.ranking import (
    ClosenessRanker,
    ErLengthRanker,
    InstanceAmbiguityRanker,
    Ranker,
    RdbLengthRanker,
    WeightedRanker,
    rank_connections,
)
from repro.core.executor import ExecutionStats, Executor, SharedEnumerations
from repro.core.plan import QueryPlan, lower_bound_for, plan_query
from repro.core.engine import KeywordSearchEngine, SearchResult

__all__ = [
    "AssociationKind",
    "AssociationVerdict",
    "ClosenessRanker",
    "ConceptualStep",
    "Connection",
    "ErLengthRanker",
    "ExecutionStats",
    "Executor",
    "InstanceAmbiguityRanker",
    "KeywordMatch",
    "KeywordSearchEngine",
    "QueryPlan",
    "Ranker",
    "RdbLengthRanker",
    "SearchResult",
    "SharedEnumerations",
    "WeightedRanker",
    "classify_cardinalities",
    "classify_er_path",
    "loose_joints",
    "lower_bound_for",
    "match_keywords",
    "plan_query",
    "rank_connections",
]
