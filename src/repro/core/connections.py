"""Tuple connections and their two lengths (paper §3, Tables 2 and 3).

A :class:`Connection` is a path of joined tuples between two keyword
tuples.  It exposes both length notions the paper contrasts:

* **RDB length** — the number of foreign-key edges on the path;
* **ER length** — the number of *conceptual* steps after collapsing middle
  relation tuples: a middle tuple sitting between two entity tuples merges
  its two FK edges into one ``N:M`` step ("in conceptual approach middle
  relations should not be taken into account when calculating the length of
  a connection").

The conceptual step sequence also carries the cardinalities that drive the
close/loose verdict, so a connection can be classified exactly like a
schema-level ER path.

Middle tuples at the *ends* of a path (a keyword matching the payload of a
middle relation, e.g. ``HOURS``) cannot be collapsed and count as ordinary
steps; only interior middle tuples flanked by entity tuples merge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.core.associations import AssociationVerdict, classify_cardinalities
from repro.er.cardinality import Cardinality
from repro.errors import PathError
from repro.graph.data_graph import DataGraph
from repro.graph.traversal import TuplePathStep
from repro.relational.database import TupleId

__all__ = ["ConceptualStep", "Connection"]


@dataclass(frozen=True)
class ConceptualStep:
    """One step of a connection at the conceptual (ER) level.

    ``middle`` is the collapsed middle-relation tuple for ``N:M`` steps and
    ``None`` for plain foreign-key steps.  ``cardinality`` is read from
    ``source`` to ``target``.  ``edge_steps`` keeps the underlying stored
    edges (one for a plain step, two for a collapsed middle) so the
    instance-level ambiguity analysis can count actual participating
    tuples.
    """

    source: TupleId
    target: TupleId
    cardinality: Cardinality
    middle: Optional[TupleId] = None
    edge_steps: tuple[TuplePathStep, ...] = ()

    def __str__(self) -> str:
        return f"{self.source} {self.cardinality} {self.target}"


class Connection:
    """A path of joined tuples between two keyword-matching endpoints."""

    def __init__(
        self,
        data_graph: DataGraph,
        steps: Sequence[TuplePathStep],
        keyword_matches: Optional[Mapping[TupleId, frozenset[str]]] = None,
    ) -> None:
        if not steps:
            raise PathError("a connection needs at least one step")
        for previous, step in zip(steps, steps[1:]):
            if previous.target != step.source:
                raise PathError(
                    "disconnected connection",
                    after=str(previous.target),
                    next_source=str(step.source),
                )
        self._data_graph = data_graph
        self._steps = tuple(steps)
        self.keyword_matches: dict[TupleId, frozenset[str]] = {
            tid: frozenset(keywords)
            for tid, keywords in (keyword_matches or {}).items()
        }
        self._conceptual: Optional[tuple[ConceptualStep, ...]] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tuple_ids(
        cls,
        data_graph: DataGraph,
        tids: Sequence[TupleId],
        keyword_matches: Optional[Mapping[TupleId, frozenset[str]]] = None,
    ) -> "Connection":
        """Build a connection from consecutive tuple ids.

        Every consecutive pair must be joined by exactly one stored edge;
        parallel edges make the path ambiguous and raise
        :class:`~repro.errors.PathError` (build from explicit steps then).
        """
        if len(tids) < 2:
            raise PathError("a connection needs at least two tuples")
        steps = []
        for source, target in zip(tids, tids[1:]):
            candidates = data_graph.edges_between(source, target)
            if not candidates:
                raise PathError(
                    "tuples are not joined", source=str(source), target=str(target)
                )
            if len(candidates) > 1:
                raise PathError(
                    "tuples are joined by several foreign keys",
                    source=str(source),
                    target=str(target),
                )
            data = candidates[0]
            steps.append(
                TuplePathStep(source, target, data["foreign_key"].name, data)
            )
        return cls(data_graph, steps, keyword_matches)

    @classmethod
    def from_labels(
        cls,
        data_graph: DataGraph,
        labels: Sequence[str],
        keyword_matches: Optional[Mapping[str, Iterable[str]]] = None,
    ) -> "Connection":
        """Build a connection from tuple display labels (test convenience).

        ``keyword_matches`` maps labels to keyword iterables.
        """
        database = data_graph.database
        tids = [database.by_label(label).tid for label in labels]
        matches = None
        if keyword_matches:
            matches = {
                database.by_label(label).tid: frozenset(keywords)
                for label, keywords in keyword_matches.items()
            }
        return cls.from_tuple_ids(data_graph, tids, matches)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def steps(self) -> tuple[TuplePathStep, ...]:
        return self._steps

    @property
    def data_graph(self) -> DataGraph:
        return self._data_graph

    def tuple_ids(self) -> tuple[TupleId, ...]:
        """Tuples on the path, endpoints included, in order."""
        return (self._steps[0].source,) + tuple(s.target for s in self._steps)

    @property
    def source(self) -> TupleId:
        return self._steps[0].source

    @property
    def target(self) -> TupleId:
        return self._steps[-1].target

    @property
    def endpoints(self) -> tuple[TupleId, TupleId]:
        return (self.source, self.target)

    @property
    def rdb_length(self) -> int:
        """Number of foreign-key edges (the traditional length)."""
        return len(self._steps)

    def middle_tuples(self) -> tuple[TupleId, ...]:
        """Interior middle-relation tuples that collapse away."""
        return tuple(
            step.middle for step in self.conceptual_steps() if step.middle is not None
        )

    # ------------------------------------------------------------------
    # conceptual view
    # ------------------------------------------------------------------
    def conceptual_steps(self) -> tuple[ConceptualStep, ...]:
        """The connection after collapsing interior middle tuples."""
        if self._conceptual is not None:
            return self._conceptual
        graph = self._data_graph
        tids = self.tuple_ids()
        steps: list[ConceptualStep] = []
        index = 0
        edge_count = len(self._steps)
        while index < edge_count:
            step = self._steps[index]
            target_is_interior = index + 1 < edge_count
            if target_is_interior and graph.is_middle(step.target) and not (
                graph.is_middle(step.source)
                or graph.is_middle(self._steps[index + 1].target)
            ):
                steps.append(
                    ConceptualStep(
                        source=step.source,
                        target=self._steps[index + 1].target,
                        cardinality=Cardinality.many_to_many(),
                        middle=step.target,
                        edge_steps=(step, self._steps[index + 1]),
                    )
                )
                index += 2
                continue
            steps.append(
                ConceptualStep(
                    source=step.source,
                    target=step.target,
                    cardinality=graph.edge_cardinality(step.edge_data, step.source),
                    edge_steps=(step,),
                )
            )
            index += 1
        self._conceptual = tuple(steps)
        return self._conceptual

    @property
    def er_length(self) -> int:
        """Number of conceptual steps (the paper's proposed length)."""
        return len(self.conceptual_steps())

    def cardinalities(self) -> tuple[Cardinality, ...]:
        """Conceptual cardinality sequence, read source-to-target."""
        return tuple(step.cardinality for step in self.conceptual_steps())

    def verdict(self) -> AssociationVerdict:
        """Close/loose classification of the conceptual step sequence."""
        return classify_cardinalities(self.cardinalities())

    # ------------------------------------------------------------------
    # rendering (paper notation)
    # ------------------------------------------------------------------
    def _label(self, tid: TupleId) -> str:
        record = self._data_graph.database.tuple(tid)
        keywords = self.keyword_matches.get(tid)
        if keywords:
            rendered = ",".join(sorted(keywords))
            return f"{record.label}({rendered})"
        return record.label

    def render(self) -> str:
        """Paper Table 2 notation, e.g. ``d1(XML) – e1(Smith)``."""
        return " – ".join(self._label(tid) for tid in self.tuple_ids())

    def render_with_cardinalities(self) -> str:
        """Paper Table 3 notation: RDB path with per-edge cardinalities.

        Each stored FK edge is rendered with its own cardinality (middle
        tuples stay visible), e.g.
        ``p1(XML) 1:N w_f1 N:1 e1(Smith)``.
        """
        parts = [self._label(self._steps[0].source)]
        for step in self._steps:
            cardinality = self._data_graph.edge_cardinality(
                step.edge_data, step.source
            )
            parts.append(str(cardinality))
            parts.append(self._label(step.target))
        return " ".join(parts)

    def render_conceptual(self) -> str:
        """Conceptual rendering with middles collapsed to ``N:M`` steps."""
        steps = self.conceptual_steps()
        parts = [self._label(steps[0].source)]
        for step in steps:
            parts.append(str(step.cardinality))
            parts.append(self._label(step.target))
        return " ".join(parts)

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Connection):
            return NotImplemented
        mine = [(s.source, s.target, s.edge_key) for s in self._steps]
        theirs = [(s.source, s.target, s.edge_key) for s in other._steps]
        return mine == theirs

    def __hash__(self) -> int:
        return hash(tuple((s.source, s.target, s.edge_key) for s in self._steps))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Connection({self.render()!r})"
