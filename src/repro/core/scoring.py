"""Content (IR) scoring and its combination with structural closeness.

The paper's introduction: "the text attributes and connections must be
scored and combined".  The closeness machinery scores *connections*; this
module adds the *text* side and the combination:

* :class:`TfIdfScorer` — attribute-value relevance of a keyword in a tuple
  using TF–IDF over the inverted index (whole-value matches get a
  configurable boost, matching systems like DISCOVER's IR mode);
* :func:`content_score` — aggregate text relevance of an answer: the sum
  over query keywords of the best matching tuple's TF-IDF inside the
  answer;
* :class:`CombinedRanker` — ranks by a weighted combination of content
  relevance (higher better) and structural looseness/length (lower
  better), normalised so the weights are comparable.

Content scores are *higher-is-better*; the ranker negates them internally
so it still fits the library's lower-is-better score-tuple convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core import ambiguity as ambiguity_module
from repro.core.connections import Connection
from repro.core.matching import KeywordMatch
from repro.relational.database import TupleId
from repro.relational.index import InvertedIndex, tokenize

__all__ = ["TfIdfScorer", "content_score", "CombinedRanker"]


class TfIdfScorer:
    """TF–IDF relevance of keywords in tuples, over an inverted index.

    The "document" is a tuple (all attribute values concatenated), the
    collection is the whole database.  ``whole_value_boost`` multiplies the
    score when the keyword equals an entire attribute value — an exact
    identifier match is worth more than a word buried in a description.
    """

    def __init__(self, index: InvertedIndex, whole_value_boost: float = 2.0) -> None:
        self._index = index
        self.whole_value_boost = whole_value_boost
        self._document_count = max(1, index.indexed_count())

    def idf(self, keyword: str) -> float:
        """Smoothed inverse document frequency of a keyword."""
        frequency = self._index.document_frequency(keyword)
        return math.log((1 + self._document_count) / (1 + frequency)) + 1.0

    def term_frequency(self, keyword: str, tid: TupleId) -> float:
        """Occurrences of the keyword in the tuple (per matched attribute)."""
        return float(
            sum(1 for posting in self._index.postings(keyword) if posting.tid == tid)
        )

    def score(self, keyword: str, tid: TupleId) -> float:
        """TF–IDF of one keyword in one tuple (0.0 when absent)."""
        postings = [
            posting
            for posting in self._index.postings(keyword)
            if posting.tid == tid
        ]
        if not postings:
            return 0.0
        tf = float(len(postings))
        boost = (
            self.whole_value_boost
            if any(posting.whole_value for posting in postings)
            else 1.0
        )
        return (1.0 + math.log(tf)) * self.idf(keyword) * boost


def content_score(
    scorer: TfIdfScorer,
    tuple_ids: Iterable[TupleId],
    matches: Sequence[KeywordMatch],
) -> float:
    """Aggregate text relevance of an answer (higher is better).

    For each query keyword, the best TF-IDF over the answer's tuples; the
    answer score is the sum.  Keywords not present in any answer tuple
    contribute zero (happens under OR semantics only).
    """
    members = list(tuple_ids)
    total = 0.0
    for match in matches:
        best = 0.0
        for tid in members:
            best = max(best, scorer.score(match.keyword, tid))
        total += best
    return total


@dataclass(frozen=True)
class CombinedRanker:
    """Weighted combination of content relevance and structural closeness.

    ``score = w_structure * (joints + 0.1 * er_length) - w_content *
    content``.  Lower is better, so high content relevance *reduces* the
    score.  With ``w_content = 0`` this degrades to the paper's closeness
    ranking (up to scaling).

    The ranker needs the query's matches to compute content scores, so it
    is built per query: ``CombinedRanker.for_query(scorer, matches)``.
    """

    scorer: TfIdfScorer
    matches: tuple[KeywordMatch, ...]
    w_structure: float = 1.0
    w_content: float = 0.25
    name: str = "combined"

    # Scores shift whenever corpus-wide statistics do (IDF, collection
    # size), so the live answer cache must not keep entries built with
    # this ranker across any content change.
    uses_corpus_stats = True

    @classmethod
    def for_query(
        cls,
        scorer: TfIdfScorer,
        matches: Sequence[KeywordMatch],
        w_structure: float = 1.0,
        w_content: float = 0.25,
    ) -> "CombinedRanker":
        return cls(
            scorer=scorer,
            matches=tuple(matches),
            w_structure=w_structure,
            w_content=w_content,
        )

    def _structure(self, answer) -> float:
        if isinstance(answer, Connection):
            joints = answer.verdict().loose_joint_count
        else:
            joints = answer.loose_joint_count()
        return joints + 0.1 * answer.er_length

    def score(self, answer) -> tuple[float, ...]:
        content = content_score(self.scorer, answer.tuple_ids(), self.matches)
        return (
            self.w_structure * self._structure(answer)
            - self.w_content * content,
        )
