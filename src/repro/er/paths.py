"""Schema-level paths through an ER schema.

A *transitive relationship* in the paper is a path of relationships through
middle entity types — e.g. ``department 1:N employee 1:N dependent``.  This
module models such paths (:class:`ERPath` built from :class:`ERStep`) and
enumerates them between entity types.  The close/loose verdicts over these
paths live in :mod:`repro.core.associations`; here we only provide the
structure and the cardinality sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.er.cardinality import Cardinality, compose_path
from repro.er.model import ERSchema, RelationshipType
from repro.errors import PathError

__all__ = ["ERStep", "ERPath", "enumerate_paths"]


@dataclass(frozen=True)
class ERStep:
    """One relationship traversed in a concrete direction.

    ``source`` and ``target`` are entity type names; ``cardinality`` is the
    constraint read from ``source`` to ``target`` (so a ``DEPARTMENT 1:N
    EMPLOYEE`` relationship traversed from the employee side has cardinality
    ``N:1``).
    """

    relationship: RelationshipType
    source: str
    target: str

    def __post_init__(self) -> None:
        ends = {self.relationship.left, self.relationship.right}
        if self.source not in ends or self.target not in ends:
            raise PathError(
                "step endpoints do not match relationship",
                relationship=self.relationship.name,
                source=self.source,
                target=self.target,
            )
        if self.source != self.target and self.relationship.is_reflexive:
            raise PathError(
                "reflexive relationship traversed between distinct entities",
                relationship=self.relationship.name,
            )
        if (
            not self.relationship.is_reflexive
            and self.source == self.target
        ):
            raise PathError(
                "non-reflexive relationship cannot loop",
                relationship=self.relationship.name,
            )

    @classmethod
    def forward(cls, relationship: RelationshipType) -> "ERStep":
        """The step reading the relationship left-to-right as declared."""
        return cls(relationship, relationship.left, relationship.right)

    @classmethod
    def backward(cls, relationship: RelationshipType) -> "ERStep":
        """The step reading the relationship right-to-left."""
        return cls(relationship, relationship.right, relationship.left)

    @property
    def cardinality(self) -> Cardinality:
        """Constraint read from :attr:`source` to :attr:`target`."""
        return self.relationship.cardinality_from(self.source)

    def reversed(self) -> "ERStep":
        return ERStep(self.relationship, self.target, self.source)

    def __str__(self) -> str:
        return f"{self.source} {self.cardinality} {self.target}"


class ERPath:
    """A non-empty sequence of connected :class:`ERStep` objects.

    The path ``department 1:N employee 1:N dependent`` (paper Table 1 row 3)
    has two steps; its :meth:`cardinalities` are ``(1:N, 1:N)`` and its
    :meth:`composed` end-to-end constraint is ``1:N``.
    """

    def __init__(self, steps: Sequence[ERStep]) -> None:
        if not steps:
            raise PathError("an ER path needs at least one step")
        for previous, step in zip(steps, steps[1:]):
            if previous.target != step.source:
                raise PathError(
                    "disconnected ER path",
                    after=previous.target,
                    next_source=step.source,
                )
        self._steps = tuple(steps)

    @classmethod
    def from_relationships(
        cls, schema: ERSchema, entity_names: Sequence[str]
    ) -> "ERPath":
        """Build a path from a sequence of entity type names.

        Every consecutive pair must be connected by exactly one relationship
        in ``schema``; ambiguity (parallel relationships) raises
        :class:`~repro.errors.PathError` — use explicit steps in that case.
        """
        if len(entity_names) < 2:
            raise PathError("need at least two entity names", names=entity_names)
        steps = []
        for source, target in zip(entity_names, entity_names[1:]):
            candidates = schema.relationships_between(source, target)
            if not candidates:
                raise PathError(
                    "no relationship between entities", source=source, target=target
                )
            if len(candidates) > 1:
                raise PathError(
                    "ambiguous relationship between entities",
                    source=source,
                    target=target,
                    candidates=[r.name for r in candidates],
                )
            steps.append(ERStep(candidates[0], source, target))
        return cls(steps)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def steps(self) -> tuple[ERStep, ...]:
        return self._steps

    @property
    def source(self) -> str:
        return self._steps[0].source

    @property
    def target(self) -> str:
        return self._steps[-1].target

    @property
    def length(self) -> int:
        """Number of relationships on the path (the paper's ER length)."""
        return len(self._steps)

    @property
    def is_immediate(self) -> bool:
        """True for a single-relationship path (paper: always close)."""
        return len(self._steps) == 1

    def entities(self) -> tuple[str, ...]:
        """Entity names visited, endpoints included."""
        return (self._steps[0].source,) + tuple(s.target for s in self._steps)

    def cardinalities(self) -> tuple[Cardinality, ...]:
        """The constraint sequence ``X1:Y1, ..., Xn:Yn`` of the paper."""
        return tuple(step.cardinality for step in self._steps)

    def composed(self) -> Cardinality:
        """End-to-end cardinality of the transitive relationship."""
        return compose_path(self.cardinalities())

    def reversed(self) -> "ERPath":
        return ERPath([step.reversed() for step in reversed(self._steps)])

    def subpath(self, start: int, stop: int) -> "ERPath":
        """The path over steps ``start:stop`` (Python slice semantics)."""
        return ERPath(self._steps[start:stop])

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = [self._steps[0].source]
        for step in self._steps:
            parts.append(str(step.cardinality))
            parts.append(step.target)
        return " ".join(parts)

    def describe(self) -> str:
        """Paper-style rendering, e.g. ``department 1:N employee 1:N dependent``."""
        return str(self)

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[ERStep]:
        return iter(self._steps)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ERPath) and other._steps == self._steps

    def __hash__(self) -> int:
        return hash(self._steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ERPath({str(self)!r})"


def enumerate_paths(
    schema: ERSchema,
    source: str,
    target: str,
    max_length: int,
    allow_revisits: bool = False,
) -> Iterator[ERPath]:
    """Yield every ER path from ``source`` to ``target`` up to ``max_length``.

    Paths are simple in entity types by default (no entity type visited
    twice) which matches how the paper enumerates transitive relationships;
    pass ``allow_revisits=True`` to relax that (each relationship is still
    used at most once per path to keep the enumeration finite).

    Results are yielded in deterministic order: shorter paths first, ties
    broken by the relationship names along the path.
    """
    schema.entity_type(source)
    schema.entity_type(target)
    if max_length < 1:
        return

    found: list[ERPath] = []

    def extend(current: list[ERStep], visited_entities: set[str],
               used_relationships: set[str]) -> None:
        at = current[-1].target if current else source
        if current and at == target:
            found.append(ERPath(current))
            if not allow_revisits:
                # A simple path ends the first time it reaches the target;
                # continuing would visit the target entity type twice.
                return
        if len(current) >= max_length:
            return
        neighbours = sorted(
            schema.neighbours(at), key=lambda pair: (pair[0].name, pair[1])
        )
        for relationship, other in neighbours:
            if relationship.name in used_relationships:
                continue
            if not allow_revisits and other in visited_entities:
                continue
            step = ERStep(relationship, at, other)
            extend(
                current + [step],
                visited_entities | {other},
                used_relationships | {relationship.name},
            )

    extend([], {source} if source != target else set(), set())
    found.sort(key=lambda p: (p.length, tuple(s.relationship.name for s in p.steps)))
    yield from found
