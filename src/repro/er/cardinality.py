"""Cardinality constraints and their composition algebra.

The paper's central observation is that the *combination* of cardinality
constraints along a connection determines how close the association between
its endpoints is.  This module provides the algebra that the rest of the
library builds on:

* :class:`Multiplicity` — the ``1`` / ``N`` sides of a constraint;
* :class:`Cardinality` — a constraint ``X:Y`` between a left and a right
  participant, e.g. ``1:N`` for ``DEPARTMENT 1:N EMPLOYEE``;
* composition of constraints along a path (:meth:`Cardinality.compose`),
  which yields the end-to-end cardinality of a transitive relationship.

Reading convention (paper section 2): in ``A X:Y B`` one ``A`` entity may be
related to up to ``Y`` ``B`` entities and one ``B`` entity to up to ``X``
``A`` entities.  Hence the mapping ``A -> B`` is *functional* (single valued)
iff ``Y == 1`` and ``B -> A`` is functional iff ``X == 1``.

The paper writes ``N:M`` for a many-to-many constraint; ``N`` and ``M`` are
both "many" and this module does not distinguish them — both parse to
:attr:`Multiplicity.MANY` and render back as ``N:M`` when both sides are
many.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import PathError

__all__ = ["Multiplicity", "Cardinality", "compose_path"]


class Multiplicity(enum.Enum):
    """One side of a cardinality constraint: exactly-one or many."""

    ONE = "1"
    MANY = "N"

    @classmethod
    def parse(cls, text: str) -> "Multiplicity":
        """Parse ``"1"``, ``"N"`` or ``"M"`` (case insensitive).

        ``M`` is accepted as a synonym for ``N`` so that the paper's ``N:M``
        notation round-trips.
        """
        token = str(text).strip().upper()
        if token == "1":
            return cls.ONE
        if token in ("N", "M", "*"):
            return cls.MANY
        raise ValueError(f"not a multiplicity: {text!r}")

    @property
    def is_one(self) -> bool:
        """True for the ``1`` side."""
        return self is Multiplicity.ONE

    @property
    def is_many(self) -> bool:
        """True for the ``N``/``M`` side."""
        return self is Multiplicity.MANY

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Cardinality:
    """A cardinality constraint ``left:right`` between two participants.

    ``Cardinality.parse("1:N")`` is the idiomatic constructor.  Instances are
    immutable and hashable so they can key dictionaries and appear in sets.
    """

    left: Multiplicity
    right: Multiplicity

    @classmethod
    def parse(cls, text: str) -> "Cardinality":
        """Parse ``"1:1"``, ``"1:N"``, ``"N:1"`` or ``"N:M"``."""
        parts = str(text).split(":")
        if len(parts) != 2:
            raise ValueError(f"not a cardinality: {text!r}")
        return cls(Multiplicity.parse(parts[0]), Multiplicity.parse(parts[1]))

    @classmethod
    def one_to_one(cls) -> "Cardinality":
        return cls(Multiplicity.ONE, Multiplicity.ONE)

    @classmethod
    def one_to_many(cls) -> "Cardinality":
        return cls(Multiplicity.ONE, Multiplicity.MANY)

    @classmethod
    def many_to_one(cls) -> "Cardinality":
        return cls(Multiplicity.MANY, Multiplicity.ONE)

    @classmethod
    def many_to_many(cls) -> "Cardinality":
        return cls(Multiplicity.MANY, Multiplicity.MANY)

    # ------------------------------------------------------------------
    # direction-level predicates
    # ------------------------------------------------------------------
    @property
    def forward_functional(self) -> bool:
        """True when the left->right mapping is single valued (``Y == 1``)."""
        return self.right.is_one

    @property
    def backward_functional(self) -> bool:
        """True when the right->left mapping is single valued (``X == 1``)."""
        return self.left.is_one

    @property
    def is_functional(self) -> bool:
        """True when the constraint is functional in at least one direction.

        The paper treats ``1:N``-only and ``N:1``-only paths uniformly as
        functional because a connection can be read in either direction.
        """
        return self.forward_functional or self.backward_functional

    @property
    def is_many_to_many(self) -> bool:
        """True for ``N:M`` — many on both sides."""
        return self.left.is_many and self.right.is_many

    @property
    def is_one_to_one(self) -> bool:
        return self.left.is_one and self.right.is_one

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def reversed(self) -> "Cardinality":
        """The same constraint read right-to-left (``1:N`` -> ``N:1``)."""
        return Cardinality(self.right, self.left)

    def compose(self, other: "Cardinality") -> "Cardinality":
        """End-to-end cardinality of ``A -self- M -other- B``.

        The composed ``A -> B`` mapping is single valued iff both hops are
        single valued left-to-right; symmetrically for ``B -> A``.  This is
        exactly the paper's definition of a functional transitive
        relationship specialised to two steps, and :func:`compose_path`
        folds it over longer paths.
        """
        forward_one = self.forward_functional and other.forward_functional
        backward_one = self.backward_functional and other.backward_functional
        return Cardinality(
            Multiplicity.ONE if backward_one else Multiplicity.MANY,
            Multiplicity.ONE if forward_one else Multiplicity.MANY,
        )

    def __str__(self) -> str:
        if self.is_many_to_many:
            return "N:M"
        return f"{self.left}:{self.right}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cardinality({str(self)!r})"


def compose_path(cardinalities: Iterable[Cardinality]) -> Cardinality:
    """Compose the cardinalities of a transitive relationship, in order.

    Raises :class:`~repro.errors.PathError` for an empty path: a transitive
    relationship has at least one step.

    >>> steps = [Cardinality.parse("1:N"), Cardinality.parse("1:N")]
    >>> str(compose_path(steps))
    '1:N'
    >>> steps = [Cardinality.parse("N:1"), Cardinality.parse("1:N")]
    >>> str(compose_path(steps))
    'N:M'
    """
    iterator: Iterator[Cardinality] = iter(cardinalities)
    try:
        composed = next(iterator)
    except StopIteration:
        raise PathError("cannot compose an empty cardinality path") from None
    for cardinality in iterator:
        composed = composed.compose(cardinality)
    return composed
