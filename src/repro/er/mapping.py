"""The standard ER-to-relational mapping (paper section 3).

"Roughly speaking, an ER-schema is implemented in relational databases such
that for each entity type a relation is implemented.  For each 1:N relation
a foreign key is inserted to the N-site.  For each N:M relationship a middle
relation is formed."  This module implements exactly that, with the usual
extra rules:

* ``1:1`` relationships become a *unique* foreign key on one side (the
  right participant by convention);
* ``N:M`` middle relations take the two participants' keys as a composite
  primary key, prefixed with configurable column names, and inherit the
  relationship's attributes (e.g. ``HOURS``);
* foreign-key columns are named ``<entity key>`` prefixed by the referenced
  entity's name unless an explicit name is supplied via ``column_names``.

The result records which relation implements which relationship so that the
conceptual length of connections can be computed later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.er.model import Attribute, EntityType, ERSchema, RelationshipType
from repro.errors import MappingError
from repro.relational.schema import (
    AttributeDef,
    DatabaseSchema,
    ForeignKey,
    Relation,
)

__all__ = ["MappingResult", "map_er_to_relational"]


@dataclass
class MappingResult:
    """Outcome of :func:`map_er_to_relational`.

    ``relation_of_entity`` maps entity type name to relation name;
    ``relation_of_relationship`` maps every ``N:M`` relationship to its
    middle relation; ``fk_of_relationship`` maps every ``1:1``/``1:N``
    relationship to the foreign key implementing it, and middle relations'
    legs appear in ``middle_fks``.
    """

    schema: DatabaseSchema
    relation_of_entity: dict[str, str] = field(default_factory=dict)
    relation_of_relationship: dict[str, str] = field(default_factory=dict)
    fk_of_relationship: dict[str, str] = field(default_factory=dict)
    middle_fks: dict[str, tuple[str, str]] = field(default_factory=dict)


def _attribute_def(attribute: Attribute) -> AttributeDef:
    data_type = "text" if attribute.is_text else attribute.data_type
    return AttributeDef(
        name=attribute.name,
        data_type=data_type,
        nullable=not attribute.is_key,
    )


def _entity_relation(entity: EntityType) -> Relation:
    if not entity.key_attributes:
        raise MappingError("entity type has no key attribute", entity=entity.name)
    if len(entity.key_attributes) != 1:
        raise MappingError(
            "composite entity keys are not supported by the mapper",
            entity=entity.name,
        )
    return Relation(
        name=entity.name,
        attributes=[_attribute_def(a) for a in entity.attributes],
        primary_key=[entity.key_attributes[0].name],
    )


def _weak_entity_relation(
    entity: EntityType, owner_key_column: str
) -> Relation:
    """Relation of a weak entity: owner FK column + partial key as the PK."""
    if not entity.key_attributes:
        raise MappingError(
            "weak entity type has no partial key", entity=entity.name
        )
    attributes = [AttributeDef(name=owner_key_column, data_type="str",
                               nullable=False)]
    attributes.extend(_attribute_def(a) for a in entity.attributes)
    primary_key = [owner_key_column] + [a.name for a in entity.key_attributes]
    return Relation(
        name=entity.name,
        attributes=attributes,
        primary_key=primary_key,
    )


def map_er_to_relational(
    er_schema: ERSchema,
    column_names: Optional[Mapping[str, str]] = None,
    middle_relation_names: Optional[Mapping[str, str]] = None,
) -> MappingResult:
    """Map an ER schema to a relational schema.

    Parameters
    ----------
    er_schema:
        The conceptual schema; every entity type needs a single key
        attribute (composite conceptual keys are out of scope).
    column_names:
        Optional overrides for generated foreign-key column names, keyed by
        relationship name for 1:1/1:N relationships and by
        ``"<relationship>.<entity>"`` for middle-relation legs.
    middle_relation_names:
        Optional overrides for middle relation names (default: the
        relationship name).
    """
    column_names = dict(column_names or {})
    middle_relation_names = dict(middle_relation_names or {})

    result_schema = DatabaseSchema(name=er_schema.name)
    result = MappingResult(schema=result_schema)

    def key_column(entity_name: str) -> str:
        entity = er_schema.entity_type(entity_name)
        return entity.key_attributes[0].name

    def fk_column_name(relationship: RelationshipType, referenced: str) -> str:
        if relationship.name in column_names:
            return column_names[relationship.name]
        return f"{referenced}_{key_column(referenced)}"

    # Strong entities first (weak relations reference their owners' keys).
    for entity in er_schema.entity_types:
        if entity.weak:
            continue
        relation = _entity_relation(entity)
        result_schema.add_relation(relation)
        result.relation_of_entity[entity.name] = relation.name

    for entity in er_schema.entity_types:
        if not entity.weak:
            continue
        identifying = er_schema.identifying_relationship(entity.name)
        owner_column = fk_column_name(identifying, identifying.left)
        relation = _weak_entity_relation(entity, owner_column)
        result_schema.add_relation(relation)
        result.relation_of_entity[entity.name] = relation.name
        fk = ForeignKey(
            name=f"fk_{identifying.name}",
            source=relation.name,
            source_columns=(owner_column,),
            target=result.relation_of_entity[identifying.left],
            target_columns=(key_column(identifying.left),),
        )
        result_schema.add_foreign_key(fk)
        result.fk_of_relationship[identifying.name] = fk.name

    for relationship in er_schema.relationships:
        if relationship.identifying:
            continue  # handled with its weak entity above
        cardinality = relationship.cardinality
        if cardinality.is_many_to_many:
            _map_many_to_many(
                er_schema,
                relationship,
                result,
                column_names,
                middle_relation_names,
            )
            continue

        # Functional relationship: FK on the many side (or the right side
        # for 1:1).  ``holder`` receives the column; ``referenced`` is the
        # "one" side it points at.
        if cardinality.is_one_to_one:
            holder, referenced = relationship.right, relationship.left
        elif cardinality.forward_functional:  # N:1 — left holds the FK
            holder, referenced = relationship.left, relationship.right
        else:  # 1:N — right holds the FK
            holder, referenced = relationship.right, relationship.left
        if holder == referenced:
            raise MappingError(
                "reflexive functional relationships need explicit column names",
                relationship=relationship.name,
            )

        column = fk_column_name(relationship, referenced)
        holder_relation = result_schema.relation(result.relation_of_entity[holder])
        if not holder_relation.has_attribute(column):
            result_schema.replace_relation(
                Relation(
                    name=holder_relation.name,
                    attributes=list(holder_relation.attributes)
                    + [AttributeDef(name=column, data_type="str")],
                    primary_key=holder_relation.primary_key,
                    is_middle=holder_relation.is_middle,
                    implements_relationship=holder_relation.implements_relationship,
                )
            )

        fk = ForeignKey(
            name=f"fk_{relationship.name}",
            source=result.relation_of_entity[holder],
            source_columns=(column,),
            target=result.relation_of_entity[referenced],
            target_columns=(key_column(referenced),),
            unique=cardinality.is_one_to_one,
        )
        result_schema.add_foreign_key(fk)
        result.fk_of_relationship[relationship.name] = fk.name

        # Relationship attributes on a functional relationship land on the
        # holder side.
        for attribute in relationship.attributes:
            holder_relation = result_schema.relation(
                result.relation_of_entity[holder]
            )
            if not holder_relation.has_attribute(attribute.name):
                result_schema.replace_relation(
                    Relation(
                        name=holder_relation.name,
                        attributes=list(holder_relation.attributes)
                        + [_attribute_def(attribute)],
                        primary_key=holder_relation.primary_key,
                        is_middle=holder_relation.is_middle,
                        implements_relationship=holder_relation.implements_relationship,
                    )
                )

    result_schema.validate()
    return result


def _map_many_to_many(
    er_schema: ERSchema,
    relationship: RelationshipType,
    result: MappingResult,
    column_names: Mapping[str, str],
    middle_relation_names: Mapping[str, str],
) -> None:
    """Create the middle relation for one ``N:M`` relationship."""
    schema = result.schema

    def key_column(entity_name: str) -> str:
        return er_schema.entity_type(entity_name).key_attributes[0].name

    def leg_column(entity_name: str, default_suffix: str) -> str:
        override = column_names.get(f"{relationship.name}.{entity_name}")
        if override:
            return override
        if relationship.is_reflexive:
            return f"{entity_name}_{key_column(entity_name)}_{default_suffix}"
        return f"{entity_name}_{key_column(entity_name)}"

    left_column = leg_column(relationship.left, "left")
    right_column = leg_column(relationship.right, "right")
    if left_column == right_column:
        raise MappingError(
            "middle relation leg columns collide",
            relationship=relationship.name,
            column=left_column,
        )

    name = middle_relation_names.get(relationship.name, relationship.name)
    middle = Relation(
        name=name,
        attributes=[
            AttributeDef(name=left_column, data_type="str", nullable=False),
            AttributeDef(name=right_column, data_type="str", nullable=False),
        ]
        + [_attribute_def(a) for a in relationship.attributes],
        primary_key=[left_column, right_column],
        is_middle=True,
        implements_relationship=relationship.name,
    )
    schema.add_relation(middle)
    result.relation_of_relationship[relationship.name] = name

    # Leg columns are unique even for reflexive relationships, so they make
    # collision-free FK names.
    left_fk = ForeignKey(
        name=f"fk_{relationship.name}_{left_column}",
        source=name,
        source_columns=(left_column,),
        target=result.relation_of_entity[relationship.left],
        target_columns=(key_column(relationship.left),),
    )
    right_fk = ForeignKey(
        name=f"fk_{relationship.name}_{right_column}",
        source=name,
        source_columns=(right_column,),
        target=result.relation_of_entity[relationship.right],
        target_columns=(key_column(relationship.right),),
    )
    schema.add_foreign_key(left_fk)
    schema.add_foreign_key(right_fk)
    result.middle_fks[relationship.name] = (left_fk.name, right_fk.name)
