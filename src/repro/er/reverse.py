"""Reverse engineering: recover a conceptual (ER) view from a relational schema.

The paper's analysis needs conceptual information — which relations are
*middle relations* and which cardinality each foreign key implements — even
when only a relational schema is given.  This module recovers it:

* **middle relation detection**: a relation is classified as a middle
  relation when its primary key is exactly the union of the columns of two
  (or more) outgoing foreign keys, i.e. its identity is nothing but the
  combination of the entities it links (plus it adds only non-key payload
  attributes such as ``HOURS``);
* **cardinality recovery**: a plain foreign key implements ``N:1`` from its
  source to its target, ``1:1`` when declared unique, and a detected middle
  relation implements one ``N:M`` relationship.

The output is a full :class:`~repro.er.model.ERSchema` plus the bindings
between its relationships and the relational artefacts, so that a database
created from raw SQL-ish definitions can flow through the same conceptual
analysis as one mapped from an ER design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.er.cardinality import Cardinality
from repro.er.model import Attribute, EntityType, ERSchema, RelationshipType
from repro.errors import MappingError
from repro.relational.schema import DatabaseSchema, ForeignKey, Relation

__all__ = ["ReverseResult", "detect_middle_relations", "reverse_engineer"]


@dataclass
class ReverseResult:
    """Outcome of :func:`reverse_engineer`.

    ``entity_of_relation`` maps entity-relation names to entity type names
    (identity map unless renamed); ``relationship_of_fk`` maps each FK that
    implements a 1:1/1:N relationship to the relationship name;
    ``relationship_of_middle`` maps middle relation names to the ``N:M``
    relationship they implement.
    """

    er_schema: ERSchema
    entity_of_relation: dict[str, str] = field(default_factory=dict)
    relationship_of_fk: dict[str, str] = field(default_factory=dict)
    relationship_of_middle: dict[str, str] = field(default_factory=dict)


def detect_middle_relations(schema: DatabaseSchema) -> tuple[str, ...]:
    """Names of relations that structurally look like middle relations.

    A relation qualifies when it has at least two outgoing foreign keys and
    its primary key columns are exactly the union of those FKs' source
    columns.  Relations already flagged ``is_middle`` are always included.
    """
    detected = []
    for relation in schema.relations:
        if relation.is_middle:
            detected.append(relation.name)
            continue
        outgoing = schema.foreign_keys_from(relation.name)
        if len(outgoing) < 2:
            continue
        fk_columns: set[str] = set()
        for fk in outgoing:
            fk_columns.update(fk.source_columns)
        if set(relation.primary_key) == fk_columns:
            detected.append(relation.name)
    return tuple(detected)


def _entity_type_for(relation: Relation) -> EntityType:
    attributes = []
    key_columns = set(relation.primary_key)
    for column in relation.attributes:
        attributes.append(
            Attribute(
                name=column.name,
                data_type=column.data_type,
                is_key=column.name in key_columns,
                is_text=column.is_text,
            )
        )
    return EntityType(relation.name, attributes)


def reverse_engineer(
    schema: DatabaseSchema,
    middle_relations: Optional[tuple[str, ...]] = None,
) -> ReverseResult:
    """Build the conceptual view of a relational schema.

    ``middle_relations`` overrides detection when the caller knows better
    (e.g. a denormalised schema where detection misfires).  Middle relations
    with more than two outgoing foreign keys model n-ary relationships and
    are rejected — the paper and this library treat binary relationships
    only.
    """
    if middle_relations is None:
        middle_relations = detect_middle_relations(schema)
    middle_set = set(middle_relations)
    for name in middle_set:
        schema.relation(name)  # raises for unknown names

    er_schema = ERSchema(name=schema.name)
    result = ReverseResult(er_schema=er_schema)

    for relation in schema.relations:
        if relation.name in middle_set:
            continue
        er_schema.add_entity_type(_entity_type_for(relation))
        result.entity_of_relation[relation.name] = relation.name

    # Plain foreign keys between entity relations -> 1:N / 1:1 relationships.
    for fk in schema.foreign_keys:
        if fk.source in middle_set:
            continue
        if fk.target in middle_set:
            raise MappingError(
                "foreign key points into a middle relation",
                foreign_key=fk.name,
            )
        cardinality = (
            Cardinality.one_to_one() if fk.unique else Cardinality.one_to_many()
        )
        relationship = RelationshipType(
            name=f"rel_{fk.name}",
            left=fk.target,   # the "one" side reads first: target 1:N source
            right=fk.source,
            cardinality=cardinality,
        )
        er_schema.add_relationship(relationship)
        result.relationship_of_fk[fk.name] = relationship.name

    # Middle relations -> N:M relationships.
    for name in middle_relations:
        relation = schema.relation(name)
        outgoing = schema.foreign_keys_from(name)
        if len(outgoing) != 2:
            raise MappingError(
                "only binary N:M relationships are supported",
                relation=name,
                legs=len(outgoing),
            )
        left_fk, right_fk = outgoing
        payload = [
            Attribute(column.name, column.data_type, is_text=column.is_text)
            for column in relation.attributes
            if column.name not in set(relation.primary_key)
        ]
        relationship = RelationshipType(
            name=f"rel_{name}",
            left=left_fk.target,
            right=right_fk.target,
            cardinality=Cardinality.many_to_many(),
            attributes=tuple(payload),
        )
        er_schema.add_relationship(relationship)
        result.relationship_of_middle[name] = relationship.name

    return result
