"""The ER model: entity types, attributes, relationship types, schemas.

Only binary relationships are modelled — the paper (and the classic COMPANY
example it builds on) uses binary relationships exclusively, and the
cardinality algebra in :mod:`repro.er.cardinality` is defined for binary
constraints.  Relationship types are *directed* in the sense that their
cardinality is stated from a left participant to a right participant
(``DEPARTMENT 1:N EMPLOYEE``); traversal helpers expose both directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.er.cardinality import Cardinality
from repro.errors import (
    SchemaError,
    UnknownAttributeError,
    UnknownEntityTypeError,
    UnknownRelationshipError,
)

__all__ = ["Attribute", "EntityType", "RelationshipType", "ERSchema"]


@dataclass(frozen=True)
class Attribute:
    """An attribute of an entity or relationship type.

    ``data_type`` is a free-form label (``"str"``, ``"int"``, ``"text"``);
    the relational layer maps it onto concrete domains.  ``is_key`` marks the
    identifying attribute(s) of an entity type; ``is_text`` marks attributes
    whose values participate in word-level keyword matching.
    """

    name: str
    data_type: str = "str"
    is_key: bool = False
    is_text: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")


class EntityType:
    """An ER entity type with a name and a list of attributes.

    ``weak=True`` marks a weak entity type: its key attributes form only a
    *partial key*, completed by the key of the owner entity through an
    identifying relationship (``RelationshipType(identifying=True)``).
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute] = (),
        weak: bool = False,
    ) -> None:
        if not name:
            raise SchemaError("entity type name must be non-empty")
        self.name = name
        self.weak = weak
        self._attributes: dict[str, Attribute] = {}
        for attribute in attributes:
            self.add_attribute(attribute)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """Attributes in declaration order."""
        return tuple(self._attributes.values())

    @property
    def key_attributes(self) -> tuple[Attribute, ...]:
        """The identifying attributes (the partial key for weak entities)."""
        return tuple(a for a in self._attributes.values() if a.is_key)

    def add_attribute(self, attribute: Attribute) -> None:
        """Add an attribute; duplicate names are schema errors."""
        if attribute.name in self._attributes:
            raise SchemaError(
                "duplicate attribute", entity=self.name, attribute=attribute.name
            )
        self._attributes[attribute.name] = attribute

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        try:
            return self._attributes[name]
        except KeyError:
            raise UnknownAttributeError(
                "no such attribute", entity=self.name, attribute=name
            ) from None

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EntityType({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EntityType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("EntityType", self.name))


@dataclass(frozen=True)
class RelationshipType:
    """A binary relationship type ``left  cardinality  right``.

    ``RelationshipType("WORKS_FOR", "DEPARTMENT", "EMPLOYEE",
    Cardinality.parse("1:N"))`` reads as the paper's
    ``department 1:N employee``: one department employs many employees and
    each employee works for exactly one department.

    ``attributes`` hold relationship attributes (e.g. ``HOURS`` on the
    paper's works-on relationship); they surface on the middle relation when
    an ``N:M`` relationship is mapped to the relational model.

    ``identifying=True`` marks the identifying relationship of a weak
    entity: it must be ``1:N`` with the owner on the left and the weak
    entity on the right.
    """

    name: str
    left: str
    right: str
    cardinality: Cardinality
    attributes: tuple[Attribute, ...] = field(default_factory=tuple)
    identifying: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relationship name must be non-empty")
        if not self.left or not self.right:
            raise SchemaError("relationship endpoints must be non-empty", name=self.name)
        if self.identifying and not (
            self.cardinality.backward_functional
        ):
            raise SchemaError(
                "identifying relationships must be 1:1 or 1:N "
                "(owner on the left)",
                name=self.name,
            )

    @property
    def is_reflexive(self) -> bool:
        """True when both endpoints are the same entity type."""
        return self.left == self.right

    def other_end(self, entity_name: str) -> str:
        """The opposite endpoint of ``entity_name`` in this relationship."""
        if entity_name == self.left:
            return self.right
        if entity_name == self.right:
            return self.left
        raise UnknownEntityTypeError(
            "entity does not participate in relationship",
            relationship=self.name,
            entity=entity_name,
        )

    def cardinality_from(self, entity_name: str) -> Cardinality:
        """The constraint read with ``entity_name`` on the left.

        A reflexive relationship is returned as declared.
        """
        if entity_name == self.left:
            return self.cardinality
        if entity_name == self.right:
            return self.cardinality.reversed()
        raise UnknownEntityTypeError(
            "entity does not participate in relationship",
            relationship=self.name,
            entity=entity_name,
        )

    def __str__(self) -> str:
        return f"{self.left} {self.cardinality} {self.right} [{self.name}]"


class ERSchema:
    """A complete ER schema: entity types plus relationship types.

    The schema validates referential consistency on construction and on each
    mutation: every relationship endpoint must name a registered entity type
    and names must be unique within their namespace.
    """

    def __init__(
        self,
        name: str = "schema",
        entity_types: Iterable[EntityType] = (),
        relationships: Iterable[RelationshipType] = (),
    ) -> None:
        self.name = name
        self._entity_types: dict[str, EntityType] = {}
        self._relationships: dict[str, RelationshipType] = {}
        for entity_type in entity_types:
            self.add_entity_type(entity_type)
        for relationship in relationships:
            self.add_relationship(relationship)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_entity_type(self, entity_type: EntityType) -> EntityType:
        if entity_type.name in self._entity_types:
            raise SchemaError("duplicate entity type", entity=entity_type.name)
        self._entity_types[entity_type.name] = entity_type
        return entity_type

    def add_relationship(self, relationship: RelationshipType) -> RelationshipType:
        if relationship.name in self._relationships:
            raise SchemaError("duplicate relationship", relationship=relationship.name)
        for endpoint in (relationship.left, relationship.right):
            if endpoint not in self._entity_types:
                raise UnknownEntityTypeError(
                    "relationship endpoint is not a registered entity type",
                    relationship=relationship.name,
                    entity=endpoint,
                )
        self._relationships[relationship.name] = relationship
        return relationship

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def entity_types(self) -> tuple[EntityType, ...]:
        return tuple(self._entity_types.values())

    @property
    def relationships(self) -> tuple[RelationshipType, ...]:
        return tuple(self._relationships.values())

    def entity_type(self, name: str) -> EntityType:
        try:
            return self._entity_types[name]
        except KeyError:
            raise UnknownEntityTypeError("no such entity type", entity=name) from None

    def relationship(self, name: str) -> RelationshipType:
        try:
            return self._relationships[name]
        except KeyError:
            raise UnknownRelationshipError(
                "no such relationship", relationship=name
            ) from None

    def has_entity_type(self, name: str) -> bool:
        return name in self._entity_types

    def has_relationship(self, name: str) -> bool:
        return name in self._relationships

    def relationships_of(self, entity_name: str) -> tuple[RelationshipType, ...]:
        """All relationships in which ``entity_name`` participates."""
        self.entity_type(entity_name)
        return tuple(
            r
            for r in self._relationships.values()
            if entity_name in (r.left, r.right)
        )

    def relationships_between(
        self, left: str, right: str
    ) -> tuple[RelationshipType, ...]:
        """All relationships connecting the two entity types, either way."""
        self.entity_type(left)
        self.entity_type(right)
        return tuple(
            r
            for r in self._relationships.values()
            if {r.left, r.right} == {left, right}
            or (r.is_reflexive and left == right == r.left)
        )

    def neighbours(self, entity_name: str) -> Iterator[tuple[RelationshipType, str]]:
        """Yield ``(relationship, other_entity)`` pairs around an entity.

        Reflexive relationships yield the entity itself once.
        """
        for relationship in self.relationships_of(entity_name):
            yield relationship, relationship.other_end(entity_name)

    # ------------------------------------------------------------------
    # validation / description
    # ------------------------------------------------------------------
    def identifying_relationship(self, entity_name: str) -> RelationshipType:
        """The identifying relationship of a weak entity type."""
        entity = self.entity_type(entity_name)
        if not entity.weak:
            raise SchemaError("entity type is not weak", entity=entity_name)
        owners = [
            r
            for r in self._relationships.values()
            if r.identifying and r.right == entity_name
        ]
        if len(owners) != 1:
            raise SchemaError(
                "weak entity needs exactly one identifying relationship",
                entity=entity_name,
                found=len(owners),
            )
        return owners[0]

    def validate(self) -> None:
        """Check global consistency beyond per-mutation checks.

        Every strong entity type needs key attributes; every weak entity
        type needs a partial key plus exactly one identifying relationship
        whose owner side is strong.
        """
        if not self._entity_types:
            raise SchemaError("schema has no entity types", schema=self.name)
        for name, entity in self._entity_types.items():
            if not entity.key_attributes:
                raise SchemaError(
                    "entity type has no (partial) key attributes", entity=name
                )
            if not entity.weak:
                continue
            owner = self.identifying_relationship(name)
            if self.entity_type(owner.left).weak:
                raise SchemaError(
                    "weak entity owned by another weak entity is unsupported",
                    entity=name,
                    owner=owner.left,
                )

    def describe(self) -> str:
        """A printable, deterministic description of the schema."""
        lines = [f"ER schema {self.name}"]
        for entity in self._entity_types.values():
            attrs = ", ".join(
                f"{a.name}{'*' if a.is_key else ''}" for a in entity.attributes
            )
            lines.append(f"  entity {entity.name}({attrs})")
        for relationship in self._relationships.values():
            lines.append(f"  relationship {relationship}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ERSchema({self.name!r}, entities={len(self._entity_types)}, "
            f"relationships={len(self._relationships)})"
        )
