"""Entity-Relationship substrate.

This package provides the conceptual layer of the reproduction: cardinality
constraints and their algebra (:mod:`repro.er.cardinality`), the ER model
itself (:mod:`repro.er.model`), schema-level paths and their transitive
composition (:mod:`repro.er.paths`), the standard ER-to-relational mapping
(:mod:`repro.er.mapping`) and its reverse engineering
(:mod:`repro.er.reverse`).
"""

from repro.er.cardinality import Cardinality, Multiplicity
from repro.er.model import Attribute, EntityType, ERSchema, RelationshipType
from repro.er.paths import ERPath, ERStep
from repro.er.mapping import MappingResult, map_er_to_relational
from repro.er.reverse import reverse_engineer

__all__ = [
    "Attribute",
    "Cardinality",
    "EntityType",
    "ERPath",
    "ERSchema",
    "ERStep",
    "MappingResult",
    "Multiplicity",
    "RelationshipType",
    "map_er_to_relational",
    "reverse_engineer",
]
