"""Fold a write-ahead log into a fresh snapshot and hot-swap it in.

Compaction never mutates engine state — the live engine already *is*
snapshot + WAL.  It writes the engine's current state as a new snapshot
(crash-atomically: temp file, fsync, ``os.replace``), then resets the
WAL to an empty log paired with the new snapshot's generation.  The
crash windows are both recoverable:

* before the ``os.replace`` — the old snapshot + full WAL pair is
  untouched and replays completely;
* between the replace and the WAL reset — the new snapshot sits beside
  a *stale* WAL (older generation, every record already folded in);
  ``KeywordSearchEngine.attach_wal`` detects exactly this shape and
  resets the log instead of refusing.

On a live engine the new snapshot is then hot-swapped into the worker
pool by a rolling per-worker reopen: each worker finishes its in-flight
chunk, reopens against the new snapshot and resumes, while the other
workers keep serving — no drain, no downtime.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.durable import fault
from repro.durable.wal import WriteAheadLog, default_wal_path
from repro.errors import WalError
from repro.obs import metrics as obs_metrics

__all__ = ["CompactionReport", "hot_compact", "compact_snapshot"]


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction did."""

    snapshot_path: str
    wal_path: str
    generation: str
    records_folded: int
    engine_version: int
    workers_reopened: int

    def describe(self) -> str:
        return (
            f"folded {self.records_folded} WAL record(s) into "
            f"{self.snapshot_path} (generation {self.generation}, "
            f"engine version {self.engine_version}); "
            f"{self.workers_reopened} worker(s) hot-swapped"
        )


def hot_compact(engine, out=None) -> CompactionReport:
    """Compact a live engine's WAL; hot-swap its pool onto the result.

    With ``out`` unset (the normal case) the engine's paired snapshot is
    atomically replaced and its WAL reset in place.  With ``out`` set,
    the fold goes to a *copy* — new snapshot plus a fresh empty WAL
    beside it — and the original snapshot/WAL pair stays untouched.
    """
    from repro.scale.snapshot import write_snapshot

    wal = engine.wal
    if wal is None:
        raise WalError("engine has no attached WAL to compact")
    target = os.fspath(out) if out is not None else engine._wal_snapshot_path
    in_place = os.path.abspath(target) == os.path.abspath(
        engine._wal_snapshot_path
    )
    folded = engine.version - wal.base_version
    fault.maybe("compact.fold")
    meta = write_snapshot(engine, target)
    generation = meta["generation"]
    fault.maybe("compact.swap")
    workers_reopened = 0
    if in_place:
        wal.reset(generation=generation, base_version=engine.version)
        wal_path = wal.path
        engine.snapshot_path = str(target)
        engine._snapshot_version = engine.version
        engine._snapshot_generation = generation
        if engine._searcher is not None:
            workers_reopened = engine._searcher.reopen(str(target))
    else:
        wal_path = default_wal_path(target)
        WriteAheadLog(
            wal_path, generation=generation, base_version=engine.version
        ).close()
    if obs_metrics.ENABLED:
        obs_metrics.REGISTRY.inc("compact.swaps")
    return CompactionReport(
        snapshot_path=str(target),
        wal_path=wal_path,
        generation=generation,
        records_folded=folded,
        engine_version=engine.version,
        workers_reopened=workers_reopened,
    )


def compact_snapshot(
    snapshot_path,
    wal_path=None,
    out=None,
    **engine_options,
) -> CompactionReport:
    """Offline compaction: open snapshot + WAL, fold, swap, close.

    This is the CLI's ``repro wal compact``.  ``engine_options`` pass
    through to :meth:`KeywordSearchEngine.open`.
    """
    from repro.core.engine import KeywordSearchEngine

    engine = KeywordSearchEngine.open(
        snapshot_path,
        wal=wal_path if wal_path is not None else True,
        **engine_options,
    )
    try:
        return hot_compact(engine, out=out)
    finally:
        engine.close()
