"""Deterministic fault injection for the durability crash points.

The recovery paths in this package (WAL replay, atomic snapshot swap,
worker respawn) only matter when a process dies at the worst possible
moment.  This module makes those moments reproducible: production code
calls :func:`maybe` at each named crash point, and tests arm a point
either through the ``REPRO_FAULT`` environment variable (inherited by
forked pool workers and by ``kill -9`` subprocess tests) or in-process
via :func:`configure`.

Spec syntax (comma-separated)::

    point[:mode][:once=/path/to/sentinel]

``mode`` is ``kill`` (default — ``SIGKILL`` the current process, the
honest crash) or ``raise`` (raise :class:`~repro.errors.FaultInjected`,
for in-process assertions).  ``once=`` names a sentinel file created
with ``O_CREAT | O_EXCL`` before firing, so exactly one process in a
tree triggers the fault — a respawned worker must not die again.

Known points:

==================== ====================================================
``wal.append``       after the WAL record is durable, before the
                     in-memory state is patched
``snapshot.mid-save`` while snapshot bytes are being written to the temp
                     file (target must stay readable)
``snapshot.pre-replace`` temp file complete and synced, before
                     ``os.replace``
``compact.fold``     WAL replayed, before the fresh snapshot is written
``compact.swap``     fresh snapshot swapped in, before the WAL is reset
                     (the stale-WAL recovery window)
``pool.chunk``       inside a worker executing a batch chunk
==================== ====================================================
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import FaultInjected

ENV_VAR = "REPRO_FAULT"

#: Cheap guard consulted by every :func:`maybe` call before any lookup.
ACTIVE = False

_FAULTS: Dict[str, "_Fault"] = {}
_LOADED = False


@dataclass(frozen=True)
class _Fault:
    point: str
    mode: str  # "kill" | "raise"
    once_path: Optional[str]


def _parse(text: str) -> Dict[str, _Fault]:
    faults: Dict[str, _Fault] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        point = pieces[0]
        mode = "kill"
        once_path = None
        for piece in pieces[1:]:
            if piece.startswith("once="):
                once_path = piece[len("once="):]
            elif piece in ("kill", "raise"):
                mode = piece
            else:
                raise ValueError(f"unknown fault option {piece!r} in {part!r}")
        faults[point] = _Fault(point, mode, once_path)
    return faults


def configure(spec: Optional[str]) -> None:
    """Arm the harness from a spec string (``None`` or ``""`` disarms)."""
    global ACTIVE, _FAULTS, _LOADED
    _FAULTS = _parse(spec) if spec else {}
    ACTIVE = bool(_FAULTS)
    _LOADED = True


def reset() -> None:
    """Disarm everything and forget that the environment was read."""
    global ACTIVE, _FAULTS, _LOADED
    ACTIVE = False
    _FAULTS = {}
    _LOADED = False


def _load_env() -> None:
    global _LOADED
    spec = os.environ.get(ENV_VAR)
    configure(spec)
    _LOADED = True


def maybe(point: str) -> None:
    """Fire the fault armed for ``point``, if any.

    ``kill`` faults terminate the process with ``SIGKILL`` — no atexit
    handlers, no flushes: the same crash the recovery code must survive
    in production.
    """
    global ACTIVE
    if not _LOADED:
        _load_env()
    if not ACTIVE:
        return
    fault = _FAULTS.get(point)
    if fault is None:
        return
    if fault.once_path is not None:
        try:
            os.close(os.open(fault.once_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return  # another process already took this fault
    if fault.mode == "raise":
        raise FaultInjected("injected fault", point=point)
    os.kill(os.getpid(), signal.SIGKILL)
