"""Durability layer: write-ahead log, compaction and fault injection.

``wal`` pairs a CRC-checked append-only log with a snapshot generation
so every applied changeset survives ``kill -9``; ``compact`` folds the
log back into a fresh snapshot and hot-swaps it into a live engine and
its worker pool; ``fault`` makes the crash windows deterministically
testable.  See DESIGN.md "Durability & recovery".
"""

from __future__ import annotations

from repro.durable import fault
from repro.durable.wal import (
    WriteAheadLog,
    atomic_write_bytes,
    default_wal_path,
    replay_into,
)

__all__ = [
    "fault",
    "WriteAheadLog",
    "atomic_write_bytes",
    "default_wal_path",
    "replay_into",
    "compact_snapshot",
    "hot_compact",
    "CompactionReport",
]


def __getattr__(name):
    # ``compact`` imports the engine and snapshot modules, which import
    # this package for fault points — resolve it lazily to stay acyclic.
    if name in ("compact_snapshot", "hot_compact", "CompactionReport"):
        from repro.durable import compact

        return getattr(compact, name)
    raise AttributeError(name)
