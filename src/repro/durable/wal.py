"""Length-prefixed, CRC-checked write-ahead log beside a snapshot.

Layout::

    REPROWAL\\x01 | u32 header_length | header_json | record*
    record := u32 payload_length | u32 crc32(payload) | payload_json

The header pins the log to one snapshot *generation* (the CRC of the
snapshot's table of contents — see ``repro.scale.snapshot``) and records
the engine version the snapshot held (``base_version``).  Every
``KeywordSearchEngine.apply`` batch appends one record — the net
changeset skeleton plus row payloads (``repro.live.changes``
``changeset_to_record``) — *before* the in-memory structures are
patched, then fsyncs, so a crash at any instant loses at most the batch
that had not yet returned.

Reading tolerates exactly the damage a crash can cause: appends are
sequential, so a torn write truncates the file mid-record and the log
ends at the last complete, CRC-valid record.  A CRC mismatch *followed
by more data* cannot come from a torn append and raises
:class:`~repro.errors.WalError` instead of silently dropping records.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from typing import List, Optional, Tuple

from repro.errors import WalError
from repro.live.changes import apply_record
from repro.live.maintain import affected_tuples, apply_changeset
from repro.obs import metrics as obs_metrics

__all__ = [
    "WriteAheadLog",
    "atomic_write_bytes",
    "default_wal_path",
    "replay_into",
]

MAGIC = b"REPROWAL\x01"
FORMAT = 1
_RECORD_HEADER = struct.Struct("<II")
#: Per-append sync primitive.  ``fdatasync`` persists the record bytes
#: and the file-size change but skips the pure-metadata (mtime) flush —
#: the classic WAL sync method — and falls back to ``fsync`` where the
#: platform lacks it.  Snapshot publication keeps full ``fsync``.
_datasync = getattr(os, "fdatasync", os.fsync)
#: Defensive ceiling on one record's payload (a batch of row payloads is
#: far below this); larger length fields are treated as damage.
MAX_RECORD_BYTES = 1 << 30


def default_wal_path(snapshot_path) -> str:
    """The conventional WAL location for a snapshot: ``<snapshot>.wal``."""
    return f"{snapshot_path}.wal"


def atomic_write_bytes(path, data: bytes) -> None:
    """Write ``data`` to ``path`` crash-atomically.

    Same-directory temp file, fsync, ``os.replace``, then fsync the
    directory so the rename itself is durable.  Readers see either the
    old file or the complete new one, never a torn write.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, temp_name = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


def _fsync_directory(directory: str) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir opens
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def _header_bytes(generation: str, base_version: int) -> bytes:
    header = json.dumps(
        {
            "format": FORMAT,
            "generation": generation,
            "base_version": base_version,
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    return MAGIC + struct.pack("<I", len(header)) + header


class WriteAheadLog:
    """One append-only log file paired with one snapshot generation.

    Opening an existing file parses and validates its header; creating a
    fresh one requires the pairing ``generation``.  The generation
    *policy* (replay / refuse / stale-reset) lives in
    ``KeywordSearchEngine.attach_wal`` — this class only stores and
    reports the pairing.
    """

    def __init__(
        self,
        path,
        *,
        generation: Optional[str] = None,
        base_version: int = 0,
        sync: bool = True,
    ) -> None:
        self.path = os.fspath(path)
        #: fsync after every append (the durable default).  ``False``
        #: trades the durability of the latest batches for speed — data
        #: still reaches the OS on every append.
        self.sync = sync
        self._handle = None
        self._append_offset: Optional[int] = None
        self.torn_tail = False
        try:
            existing = os.path.getsize(self.path) > 0
        except OSError:
            existing = False
        if existing:
            self.generation, self.base_version, self._data_offset = (
                self._read_header()
            )
        else:
            if generation is None:
                raise WalError(
                    "creating a WAL requires its snapshot generation",
                    path=self.path,
                )
            self.generation = generation
            self.base_version = base_version
            header = _header_bytes(generation, base_version)
            atomic_write_bytes(self.path, header)
            self._data_offset = len(header)
            self._append_offset = self._data_offset

    def _read_header(self) -> Tuple[str, int, int]:
        with open(self.path, "rb") as handle:
            prefix = handle.read(len(MAGIC) + 4)
            if len(prefix) < len(MAGIC) + 4 or not prefix.startswith(MAGIC):
                raise WalError("not a WAL file", path=self.path)
            (length,) = struct.unpack("<I", prefix[len(MAGIC):])
            raw = handle.read(length)
            if len(raw) < length:
                raise WalError("truncated WAL header", path=self.path)
            try:
                header = json.loads(raw.decode("utf-8"))
            except ValueError:
                raise WalError("corrupt WAL header", path=self.path) from None
        if header.get("format") != FORMAT:
            raise WalError(
                "unsupported WAL format",
                path=self.path,
                format=header.get("format"),
            )
        return (
            header["generation"],
            int(header["base_version"]),
            len(MAGIC) + 4 + length,
        )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def scan(self) -> List[Tuple[int, dict]]:
        """All complete records as ``(offset, record)``, oldest first.

        Sets :attr:`torn_tail` when the file ends mid-record (tolerated
        — the tail is truncated away by the next append).  Mid-file
        damage raises :class:`WalError`.
        """
        with open(self.path, "rb") as handle:
            data = handle.read()
        records: List[Tuple[int, dict]] = []
        offset = self._data_offset
        end = len(data)
        self.torn_tail = False
        while offset < end:
            if offset + _RECORD_HEADER.size > end:
                self.torn_tail = True
                break
            length, crc = _RECORD_HEADER.unpack_from(data, offset)
            payload_start = offset + _RECORD_HEADER.size
            payload_end = payload_start + length
            if length > MAX_RECORD_BYTES or payload_end > end:
                self.torn_tail = True
                break
            payload = data[payload_start:payload_end]
            if zlib.crc32(payload) != crc:
                if payload_end == end:
                    # A torn append can leave a complete-length garbage
                    # tail; a mismatch mid-file cannot.
                    self.torn_tail = True
                    break
                raise WalError(
                    "WAL record failed its checksum mid-file",
                    path=self.path,
                    offset=offset,
                )
            try:
                record = json.loads(payload.decode("utf-8"))
            except ValueError:
                if payload_end == end:
                    self.torn_tail = True
                    break
                raise WalError(
                    "undecodable WAL record mid-file",
                    path=self.path,
                    offset=offset,
                ) from None
            records.append((offset, record))
            offset = payload_end
        self._append_offset = offset
        if self.torn_tail and obs_metrics.ENABLED:
            obs_metrics.REGISTRY.inc("wal.torn_tails")
        return records

    def records(self) -> List[dict]:
        """The decoded records without their offsets."""
        return [record for __, record in self.scan()]

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _ensure_handle(self):
        if self._handle is not None:
            return self._handle
        if self._append_offset is None:
            self.scan()
        handle = open(self.path, "r+b")
        try:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > self._append_offset:
                # Drop the torn tail before the first new append so the
                # log stays a clean prefix of complete records.
                handle.truncate(self._append_offset)
            handle.seek(self._append_offset)
        except BaseException:
            handle.close()
            raise
        self._handle = handle
        return handle

    def append(self, record: dict) -> int:
        """Append one record durably; returns its file offset."""
        handle = self._ensure_handle()
        payload = json.dumps(
            record, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        offset = self._append_offset
        handle.write(_RECORD_HEADER.pack(len(payload), zlib.crc32(payload)))
        handle.write(payload)
        handle.flush()
        if self.sync:
            _datasync(handle.fileno())
        self._append_offset = offset + _RECORD_HEADER.size + len(payload)
        if obs_metrics.ENABLED:
            obs_metrics.REGISTRY.inc("wal.appends")
        return offset

    def reset(self, *, generation: str, base_version: int) -> None:
        """Start the log over for a new snapshot generation.

        Used after compaction folded every record into a fresh snapshot:
        the file is atomically replaced by a bare header, so a crash
        leaves either the old complete log or the new empty one.
        """
        self.close()
        header = _header_bytes(generation, base_version)
        atomic_write_bytes(self.path, header)
        self.generation = generation
        self.base_version = base_version
        self._data_offset = len(header)
        self._append_offset = self._data_offset
        self.torn_tail = False

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay_into(engine, wal: WriteAheadLog) -> int:
    """Replay every complete WAL record into a just-opened engine.

    The engine must be at the WAL's ``base_version`` (snapshot and log
    paired by generation); records apply through the same incremental
    maintenance path as live ``apply`` batches, so the replayed engine
    is bit-identical to one that executed the batches itself.
    """
    replayed = 0
    for offset, record in wal.scan():
        version = record.get("version")
        if version != engine.version + 1:
            raise WalError(
                "WAL record version does not follow engine state",
                path=wal.path,
                offset=offset,
                expected=engine.version + 1,
                got=version,
            )
        changeset = apply_record(record, engine.database)
        if not changeset.is_empty():
            apply_changeset(
                changeset,
                engine.database,
                index=engine.index,
                data_graph=engine.data_graph,
                traversal_cache=engine.traversal_cache,
                shard_plan=engine._shard_plan,
            )
            if len(engine.result_cache):
                engine.result_cache.invalidate(
                    affected_tuples(engine.data_graph, changeset),
                    engine.index,
                )
            engine.statistics = None
        engine.version = version
        replayed += 1
    if replayed and obs_metrics.ENABLED:
        obs_metrics.REGISTRY.inc("wal.replayed", replayed)
    return replayed
