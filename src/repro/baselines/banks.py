"""BANKS-style backward expanding search (Aditya et al., VLDB 2002).

BANKS models the database as a directed graph over tuples: each foreign
key reference contributes a *forward* edge from the referencing tuple to
the referenced tuple (weight 1) and a *backward* edge in the opposite
direction whose weight grows with the referenced tuple's in-degree
(``1 + log2(1 + indegree)``), so hubs are expensive to route through.

An answer is a rooted tree: a root tuple with a directed path to one
matching tuple per keyword.  The **backward expanding search** runs one
multi-source shortest-path iterator per keyword over *reversed* edges,
always expanding the globally smallest tentative distance; every node
reached by all iterators is an answer root.  Tree score is the sum of the
root-to-keyword path weights, optionally combined with node prestige
(in-degree based), lower is better; answers are emitted best-first.

This implementation is exact within an edge-weight budget rather than
heuristic: it enumerates all answer roots reachable under
``max_distance`` and returns the top-k by score, which makes baseline
comparisons deterministic and testable.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx

from repro.core.matching import KeywordMatch
from repro.errors import QueryError
from repro.graph.data_graph import DataGraph
from repro.relational.database import TupleId

__all__ = ["BanksAnswer", "BanksSearch"]


@dataclass(frozen=True)
class BanksAnswer:
    """One BANKS answer tree.

    ``paths`` maps each keyword to the root-to-match tuple path (list of
    tuple ids, root first).  ``score`` is lower-is-better.
    """

    root: TupleId
    paths: tuple[tuple[str, tuple[TupleId, ...]], ...]
    score: float

    def tuple_ids(self) -> tuple[TupleId, ...]:
        members: dict[TupleId, None] = {self.root: None}
        for __, path in self.paths:
            for tid in path:
                members.setdefault(tid, None)
        return tuple(members)

    @property
    def covered_keywords(self) -> frozenset[str]:
        return frozenset(keyword for keyword, __ in self.paths)

    @property
    def rdb_length(self) -> int:
        """Number of distinct edges in the answer tree."""
        edges = set()
        for __, path in self.paths:
            for source, target in zip(path, path[1:]):
                edges.add((source, target))
        return len(edges)

    def render(self) -> str:
        leaves = ", ".join(
            f"{keyword}:{path[-1]}" for keyword, path in self.paths
        )
        return f"root {self.root} -> {leaves}"


class BanksSearch:
    """Backward expanding keyword search over a data graph."""

    def __init__(
        self,
        data_graph: DataGraph,
        backward_weight_base: float = 1.0,
        prestige_weight: float = 0.0,
    ) -> None:
        self.data_graph = data_graph
        self.backward_weight_base = backward_weight_base
        self.prestige_weight = prestige_weight
        self._directed = self._build_directed()

    def _build_directed(self) -> nx.DiGraph:
        directed = nx.DiGraph()
        graph = self.data_graph.graph
        directed.add_nodes_from(graph.nodes)
        indegree: dict[TupleId, int] = {node: 0 for node in graph.nodes}
        references: list[tuple[TupleId, TupleId]] = []
        for left, right, data in graph.edges(data=True):
            referencing = data["referencing"]
            referenced = right if referencing == left else left
            references.append((referencing, referenced))
            indegree[referenced] += 1
        for referencing, referenced in references:
            backward = self.backward_weight_base + math.log2(
                1 + indegree[referenced]
            )
            forward_weight = 1.0
            if not directed.has_edge(referencing, referenced):
                directed.add_edge(referencing, referenced, weight=forward_weight)
            if not directed.has_edge(referenced, referencing):
                directed.add_edge(referenced, referencing, weight=backward)
        return directed

    @property
    def directed_graph(self) -> nx.DiGraph:
        return self._directed

    def node_prestige(self, tid: TupleId) -> float:
        """In-degree based prestige (higher in-degree, higher prestige)."""
        return math.log2(1 + self._directed.in_degree(tid))

    def search(
        self,
        matches: Sequence[KeywordMatch],
        top_k: int = 10,
        max_distance: float = 10.0,
    ) -> list[BanksAnswer]:
        """Top-k answer trees for the query, best (lowest score) first.

        ``max_distance`` bounds each keyword iterator's expansion; roots
        farther than that from some keyword are not considered (BANKS'
        practical cut-off).
        """
        if not matches:
            raise QueryError("no keywords to search")
        if any(match.is_empty for match in matches):
            return []

        # One multi-source Dijkstra per keyword over reversed edges: the
        # distance to a node v is the weight of the best directed path
        # v -> (some match tuple of the keyword).
        reversed_graph = self._directed.reverse(copy=False)
        distances: list[dict[TupleId, float]] = []
        predecessors: list[dict[TupleId, TupleId]] = []
        for match in matches:
            dist: dict[TupleId, float] = {}
            pred: dict[TupleId, TupleId] = {}
            heap: list[tuple[float, str, TupleId]] = []
            for tid in match.tuple_ids:
                dist[tid] = 0.0
                heapq.heappush(heap, (0.0, str(tid), tid))
            while heap:
                d, __, node = heapq.heappop(heap)
                if d > dist.get(node, math.inf):
                    continue
                if d > max_distance:
                    continue
                for __, neighbour, data in reversed_graph.edges(node, data=True):
                    candidate = d + data["weight"]
                    if candidate < dist.get(neighbour, math.inf) and \
                            candidate <= max_distance:
                        dist[neighbour] = candidate
                        pred[neighbour] = node
                        heapq.heappush(
                            heap, (candidate, str(neighbour), neighbour)
                        )
            distances.append(dist)
            predecessors.append(pred)

        answers = []
        for node in self._directed.nodes:
            if not all(node in dist for dist in distances):
                continue
            total = sum(dist[node] for dist in distances)
            if self.prestige_weight:
                total -= self.prestige_weight * self.node_prestige(node)
            paths = []
            for match, dist, pred in zip(matches, distances, predecessors):
                path = [node]
                while path[-1] in pred:
                    path.append(pred[path[-1]])
                paths.append((match.keyword, tuple(path)))
            answers.append(
                BanksAnswer(root=node, paths=tuple(paths), score=total)
            )

        answers.sort(key=lambda a: (a.score, str(a.root)))
        deduped: list[BanksAnswer] = []
        seen: set[frozenset[TupleId]] = set()
        for answer in answers:
            members = frozenset(answer.tuple_ids())
            if members in seen:
                continue
            seen.add(members)
            deduped.append(answer)
            if len(deduped) >= top_k:
                break
        return deduped
