"""DISCOVER-style keyword search: candidate networks and MTJNTs.

DISCOVER (Hristidis & Papakonstantinou, VLDB 2002) answers a keyword query
with **Minimal Total Joining Networks of Tuples**:

* *joining network* — a connected set of tuples (joined pairwise through
  foreign keys);
* *total* — every query keyword appears in at least one tuple of the
  network;
* *minimal* — no tuple can be removed such that the rest is still a total
  joining network.

Minimality is defined over the **induced** join graph of the tuple set, not
over the path that produced it: a network may be non-minimal because two of
its tuples join directly even though the generating path went around.  This
is precisely what the paper exploits — for the query ``Smith XML`` the
connections 3, 4, 6 and 7 of its Table 2 are total joining networks but not
minimal, so MTJNT semantics loses them (:func:`lost_connections` checks the
claim mechanically).

The module also implements schema-level **candidate network** generation
(join trees of keyword-annotated tuple sets) used by the DISCOVER
evaluation pipeline and the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Iterator, Optional, Sequence

import networkx as nx

from repro.core.connections import Connection
from repro.core.matching import KeywordMatch
from repro.core.search import SearchLimits
from repro.errors import QueryError
from repro.graph.data_graph import DataGraph
from repro.graph.schema_graph import SchemaGraph
from repro.graph.traversal import enumerate_joining_trees
from repro.relational.database import TupleId

__all__ = [
    "is_total",
    "is_mtjnt",
    "find_mtjnts",
    "lost_connections",
    "CandidateNetwork",
    "candidate_networks",
]


def _keyword_cover(
    tuple_ids: Iterable[TupleId], matches: Sequence[KeywordMatch]
) -> dict[str, set[TupleId]]:
    """Which tuples of the set cover which keyword."""
    members = set(tuple_ids)
    cover: dict[str, set[TupleId]] = {}
    for match in matches:
        cover[match.keyword] = members.intersection(match.tuple_ids)
    return cover


def is_total(
    tuple_ids: Iterable[TupleId], matches: Sequence[KeywordMatch]
) -> bool:
    """True when every keyword occurs in at least one tuple of the set."""
    cover = _keyword_cover(tuple_ids, matches)
    return all(cover[match.keyword] for match in matches)


def is_mtjnt(
    data_graph: DataGraph,
    tuple_ids: Iterable[TupleId],
    matches: Sequence[KeywordMatch],
) -> bool:
    """Exact MTJNT test: connected, total, and single-removal minimal.

    Removing any one tuple must break connectivity (of the induced join
    graph) or totality.  Checking single removals is sufficient: if a
    proper subset were a total joining network, greedily re-adding tuples
    shows some single tuple of the original is removable.
    """
    members = set(tuple_ids)
    if not members:
        return False
    if not data_graph.is_connected_set(members):
        return False
    if not is_total(members, matches):
        return False
    if len(members) == 1:
        return True
    for candidate in members:
        rest = members - {candidate}
        if data_graph.is_connected_set(rest) and is_total(rest, matches):
            return False
    return True


def find_mtjnts(
    data_graph: DataGraph,
    matches: Sequence[KeywordMatch],
    limits: SearchLimits = SearchLimits(),
) -> list[frozenset[TupleId]]:
    """All MTJNTs with at most ``limits.max_tuples`` tuples.

    Exhaustive within the size bound and deterministic (sorted output).
    """
    if not matches:
        raise QueryError("no keywords to search")
    if any(match.is_empty for match in matches):
        return []
    results: set[frozenset[TupleId]] = set()
    seen: set[frozenset[TupleId]] = set()
    for assignment in product(*(match.tuple_ids for match in matches)):
        required = list(dict.fromkeys(assignment))
        for tuple_set in enumerate_joining_trees(
            data_graph, required, limits.max_tuples, max_results=limits.max_networks
        ):
            if tuple_set in seen:
                continue
            seen.add(tuple_set)
            if is_mtjnt(data_graph, tuple_set, matches):
                results.add(tuple_set)
    return sorted(results, key=lambda s: (len(s), sorted(str(t) for t in s)))


def lost_connections(
    data_graph: DataGraph,
    connections: Iterable[Connection],
    matches: Sequence[KeywordMatch],
) -> list[Connection]:
    """Connections whose tuple sets MTJNT semantics would not return.

    A connection is *lost* when its tuple set is not an MTJNT — either
    non-minimal (a smaller total joining network hides inside) or, for
    completeness, not total.  This mechanises the paper's §3 claim.
    """
    return [
        connection
        for connection in connections
        if not is_mtjnt(data_graph, connection.tuple_ids(), matches)
    ]


# ----------------------------------------------------------------------
# schema-level candidate networks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CandidateNetwork:
    """A join tree of keyword-annotated tuple sets.

    ``nodes`` are ``(node_id, relation, keywords)`` triples — ``keywords``
    is the (possibly empty) set of query keywords the tuple set must
    contain (empty = a *free* tuple set).  ``edges`` connect node ids and
    each corresponds to one schema foreign key.
    """

    nodes: tuple[tuple[int, str, frozenset[str]], ...]
    edges: tuple[tuple[int, int, str], ...]

    @property
    def size(self) -> int:
        return len(self.nodes)

    def covered_keywords(self) -> frozenset[str]:
        covered: set[str] = set()
        for __, __, keywords in self.nodes:
            covered.update(keywords)
        return frozenset(covered)

    def describe(self) -> str:
        parts = []
        for node_id, relation, keywords in self.nodes:
            rendered = ",".join(sorted(keywords)) if keywords else "free"
            parts.append(f"{node_id}:{relation}^{{{rendered}}}")
        edges = ", ".join(f"{a}-{b}" for a, b, __ in self.edges)
        return " | ".join((" ".join(parts), edges)) if edges else " ".join(parts)


def candidate_networks(
    schema_graph: SchemaGraph,
    keyword_relations: dict[str, frozenset[str]],
    max_size: int,
) -> list[CandidateNetwork]:
    """Enumerate candidate networks up to ``max_size`` tuple sets.

    ``keyword_relations`` maps each keyword to the relations whose tuples
    may contain it (from the index).  Networks are trees over tuple-set
    nodes where

    * each non-free node carries a non-empty keyword set drawn from the
      keywords its relation can contain,
    * every leaf is non-free (DISCOVER's pruning rule — a free leaf could
      be removed, so no evaluation of it can be minimal),
    * all query keywords are covered.

    Networks are deduplicated up to isomorphism of their labelled trees.
    """
    keywords = sorted(keyword_relations)
    if not keywords:
        raise QueryError("no keywords for candidate network generation")

    results: list[CandidateNetwork] = []
    seen: set[frozenset] = set()

    def node_labels(relation: str) -> list[frozenset[str]]:
        possible = [
            keyword
            for keyword in keywords
            if relation in keyword_relations[keyword]
        ]
        labels: list[frozenset[str]] = [frozenset()]
        # Non-empty subsets of the keywords this relation can contain.
        for mask in range(1, 1 << len(possible)):
            labels.append(
                frozenset(
                    keyword
                    for position, keyword in enumerate(possible)
                    if mask & (1 << position)
                )
            )
        return labels

    def canonical(nodes, edges) -> frozenset:
        # Multiset of (relation, keywords) per node plus labelled edges in
        # canonical order — sufficient to dedupe trees of this size.
        rendered_nodes = {nid: (relation, keywords) for nid, relation, keywords in nodes}
        canon_edges = frozenset(
            (min_max := tuple(sorted((a, b))), fk, rendered_nodes[min_max[0]],
             rendered_nodes[min_max[1]])
            for a, b, fk in edges
        )
        return frozenset((frozenset(rendered_nodes.values()), canon_edges))

    def grow(nodes: list, edges: list, covered: frozenset[str]) -> None:
        if covered == frozenset(keywords):
            leaves_ok = True
            if len(nodes) > 1:
                degree: dict[int, int] = {nid: 0 for nid, __, __ in nodes}
                for a, b, __ in edges:
                    degree[a] += 1
                    degree[b] += 1
                for nid, __, node_keywords in nodes:
                    if degree[nid] <= 1 and not node_keywords:
                        leaves_ok = False
                        break
            if leaves_ok:
                key = canonical(nodes, edges)
                if key not in seen:
                    seen.add(key)
                    results.append(
                        CandidateNetwork(tuple(nodes), tuple(edges))
                    )
        if len(nodes) >= max_size:
            return
        for nid, relation, __ in list(nodes):
            for other_relation, fk in sorted(
                schema_graph.neighbours(relation), key=lambda p: (p[0], p[1].name)
            ):
                for label in node_labels(other_relation):
                    if label and label <= covered:
                        continue  # adds nothing new; avoids blowup
                    new_id = len(nodes)
                    grow(
                        nodes + [(new_id, other_relation, label)],
                        edges + [(nid, new_id, fk.name)],
                        covered | label,
                    )

    start_relations = sorted(
        {relation for relations in keyword_relations.values() for relation in relations}
    )
    for relation in start_relations:
        for label in node_labels(relation):
            if not label:
                continue
            grow([(0, relation, label)], [], frozenset(label))

    results.sort(key=lambda cn: (cn.size, cn.describe()))
    return results
