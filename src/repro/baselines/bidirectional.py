"""Bidirectional expansion search, in the spirit of Kacholia et al. (2005).

Pure backward expansion (BANKS) wastes work when a keyword matches many
tuples or sits behind a hub: every iterator floods the graph independently.
Bidirectional search adds **spreading activation**: each keyword origin
starts with activation 1 split over its match tuples; expansion always
grows the most activated frontier node, and activation decays by a factor
``mu`` per edge.  Nodes touched by every keyword's activation become
answer roots, exactly as in BANKS, but exploration order now prefers
regions of the graph that several keywords point at, so good answers
surface after far fewer expansions.

This implementation keeps the answer *semantics* identical to
:class:`~repro.baselines.banks.BanksSearch` (rooted trees, sum-of-paths
score, lower is better) so the two strategies are directly comparable in
the benchmarks; only the expansion policy differs, and
:attr:`BidirectionalSearch.expansions` exposes the work counter the
benchmark reports.
"""

from __future__ import annotations

import heapq
import math
from typing import Optional, Sequence

from repro.baselines.banks import BanksAnswer, BanksSearch
from repro.core.matching import KeywordMatch
from repro.errors import QueryError
from repro.relational.database import TupleId

__all__ = ["BidirectionalSearch"]


class BidirectionalSearch:
    """Activation-prioritised variant of backward expanding search."""

    def __init__(
        self,
        data_graph,
        decay: float = 0.5,
        backward_weight_base: float = 1.0,
    ) -> None:
        if not 0.0 < decay < 1.0:
            raise QueryError("activation decay must lie in (0, 1)", decay=decay)
        self.decay = decay
        # Reuse BANKS' directed graph and weights so scores are comparable.
        self._banks = BanksSearch(
            data_graph, backward_weight_base=backward_weight_base
        )
        self.expansions = 0

    @property
    def directed_graph(self):
        return self._banks.directed_graph

    def search(
        self,
        matches: Sequence[KeywordMatch],
        top_k: int = 10,
        max_distance: float = 10.0,
        expansion_budget: Optional[int] = None,
    ) -> list[BanksAnswer]:
        """Top-k answers, best first.

        ``expansion_budget`` caps the number of node expansions (the point
        of the algorithm is to need fewer of them); ``None`` runs to
        completion, which yields exactly BANKS' answer set.
        """
        if not matches:
            raise QueryError("no keywords to search")
        if any(match.is_empty for match in matches):
            return []

        reversed_graph = self.directed_graph.reverse(copy=False)
        keyword_count = len(matches)
        distances: list[dict[TupleId, float]] = [dict() for __ in matches]
        predecessors: list[dict[TupleId, TupleId]] = [dict() for __ in matches]
        activation: list[dict[TupleId, float]] = [dict() for __ in matches]

        # Max-heap on combined activation (negated), tie-broken by distance.
        heap: list[tuple[float, float, str, int, TupleId]] = []
        for index, match in enumerate(matches):
            share = 1.0 / max(1, len(match.tuple_ids))
            for tid in match.tuple_ids:
                distances[index][tid] = 0.0
                activation[index][tid] = share
                heapq.heappush(heap, (-share, 0.0, str(tid), index, tid))

        self.expansions = 0
        while heap:
            if expansion_budget is not None and self.expansions >= expansion_budget:
                break
            neg_act, d, __, index, node = heapq.heappop(heap)
            if d > distances[index].get(node, math.inf):
                continue  # stale entry
            if -neg_act < activation[index].get(node, 0.0):
                continue  # stale activation
            self.expansions += 1
            node_activation = activation[index][node]
            for __, neighbour, data in reversed_graph.edges(node, data=True):
                weight = data["weight"]
                candidate = d + weight
                spread = node_activation * self.decay
                better_distance = candidate < distances[index].get(
                    neighbour, math.inf
                )
                better_activation = spread > activation[index].get(neighbour, 0.0)
                if candidate > max_distance:
                    continue
                if better_distance:
                    distances[index][neighbour] = candidate
                    predecessors[index][neighbour] = node
                if better_activation:
                    activation[index][neighbour] = spread
                if better_distance or better_activation:
                    heapq.heappush(
                        heap,
                        (
                            -activation[index][neighbour],
                            distances[index][neighbour],
                            str(neighbour),
                            index,
                            neighbour,
                        ),
                    )

        answers = []
        for node in self.directed_graph.nodes:
            if not all(node in dist for dist in distances):
                continue
            total = sum(dist[node] for dist in distances)
            paths = []
            for match, dist, pred in zip(matches, distances, predecessors):
                path = [node]
                while path[-1] in pred:
                    path.append(pred[path[-1]])
                paths.append((match.keyword, tuple(path)))
            answers.append(BanksAnswer(root=node, paths=tuple(paths), score=total))

        answers.sort(key=lambda a: (a.score, str(a.root)))
        deduped: list[BanksAnswer] = []
        seen: set[frozenset[TupleId]] = set()
        for answer in answers:
            members = frozenset(answer.tuple_ids())
            if members in seen:
                continue
            seen.add(members)
            deduped.append(answer)
            if len(deduped) >= top_k:
                break
        return deduped
