"""BLINKS-style indexed keyword search (He, Wang, Yang, Yu — SIGMOD 2007).

BLINKS accelerates BANKS-style search with a **bi-level index**: the graph
is partitioned into blocks, and for each block the index precomputes the
distance from every node to every *keyword* (in the original paper, to
every node/keyword of the block plus block-level summaries).  At query
time, the search consults the index instead of re-running single-source
expansions from scratch.

This implementation keeps the part that matters for comparisons here — a
**keyword-distance index** precomputed per indexed term:

``KeywordDistanceIndex``
    for each indexed keyword (or a chosen vocabulary subset), a map
    ``node -> (distance, successor)`` over the same weighted directed graph
    BANKS uses.  Building it is expensive; queries against indexed
    keywords become a linear scan over candidate roots with O(1) distance
    lookups — no Dijkstra at query time.

``BlinksSearch``
    answers queries whose keywords are indexed, returning exactly the same
    answer trees as :class:`~repro.baselines.banks.BanksSearch` (verified
    by tests), at a different build/query cost trade-off — the trade-off
    the S2/S3 benchmarks report.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Optional, Sequence

from repro.baselines.banks import BanksAnswer, BanksSearch
from repro.core.matching import KeywordMatch
from repro.errors import QueryError
from repro.graph.data_graph import DataGraph
from repro.relational.database import TupleId
from repro.relational.index import InvertedIndex

__all__ = ["KeywordDistanceIndex", "BlinksSearch"]


class KeywordDistanceIndex:
    """Precomputed node-to-keyword distances over the BANKS graph.

    ``max_distance`` bounds the precomputation radius (nodes farther from
    every match tuple are simply absent from the map, exactly like BANKS'
    expansion cut-off).
    """

    def __init__(
        self,
        banks: BanksSearch,
        inverted_index: InvertedIndex,
        keywords: Optional[Iterable[str]] = None,
        max_distance: float = 10.0,
    ) -> None:
        self._banks = banks
        self._inverted = inverted_index
        self.max_distance = max_distance
        self._distances: dict[str, dict[TupleId, float]] = {}
        self._successors: dict[str, dict[TupleId, TupleId]] = {}
        if keywords is None:
            keywords = inverted_index.vocabulary()
        for keyword in keywords:
            self.index_keyword(keyword)

    def index_keyword(self, keyword: str) -> None:
        """(Re)build the distance map of one keyword."""
        keyword = keyword.strip().lower()
        sources = self._inverted.matching_tuples(keyword)
        distances: dict[TupleId, float] = {}
        successors: dict[TupleId, TupleId] = {}
        reversed_graph = self._banks.directed_graph.reverse(copy=False)
        heap: list[tuple[float, str, TupleId]] = []
        for tid in sources:
            distances[tid] = 0.0
            heapq.heappush(heap, (0.0, str(tid), tid))
        while heap:
            d, __, node = heapq.heappop(heap)
            if d > distances.get(node, math.inf):
                continue
            for __, neighbour, data in reversed_graph.edges(node, data=True):
                candidate = d + data["weight"]
                if candidate <= self.max_distance and candidate < distances.get(
                    neighbour, math.inf
                ):
                    distances[neighbour] = candidate
                    successors[neighbour] = node
                    heapq.heappush(heap, (candidate, str(neighbour), neighbour))
        self._distances[keyword] = distances
        self._successors[keyword] = successors

    def is_indexed(self, keyword: str) -> bool:
        return keyword.strip().lower() in self._distances

    def distance(self, keyword: str, tid: TupleId) -> float:
        """Distance from ``tid`` to the nearest match of ``keyword``."""
        return self._distances.get(keyword.strip().lower(), {}).get(
            tid, math.inf
        )

    def path(self, keyword: str, tid: TupleId) -> tuple[TupleId, ...]:
        """The stored shortest path from ``tid`` to the keyword's match."""
        keyword = keyword.strip().lower()
        successors = self._successors.get(keyword, {})
        path = [tid]
        while path[-1] in successors:
            path.append(successors[path[-1]])
        return tuple(path)

    def indexed_keywords(self) -> tuple[str, ...]:
        return tuple(sorted(self._distances))

    def size(self) -> int:
        """Total number of stored (keyword, node) distance entries."""
        return sum(len(d) for d in self._distances.values())


class BlinksSearch:
    """Index-backed keyword search with BANKS answer semantics."""

    def __init__(
        self,
        data_graph: DataGraph,
        inverted_index: InvertedIndex,
        keywords: Optional[Iterable[str]] = None,
        max_distance: float = 10.0,
        backward_weight_base: float = 1.0,
    ) -> None:
        self._banks = BanksSearch(
            data_graph, backward_weight_base=backward_weight_base
        )
        self.index = KeywordDistanceIndex(
            self._banks,
            inverted_index,
            keywords=keywords,
            max_distance=max_distance,
        )

    @property
    def directed_graph(self):
        return self._banks.directed_graph

    def search(
        self, matches: Sequence[KeywordMatch], top_k: int = 10
    ) -> list[BanksAnswer]:
        """Top-k answer trees, best first, using only index lookups.

        Keywords missing from the index are indexed on the fly (the
        BLINKS fallback of touching the graph once), so results never
        silently degrade.
        """
        if not matches:
            raise QueryError("no keywords to search")
        if any(match.is_empty for match in matches):
            return []

        keywords = []
        for match in matches:
            keyword = match.keyword.strip().lower()
            keywords.append(keyword)
            if not self.index.is_indexed(keyword):
                self.index.index_keyword(keyword)

        answers = []
        for node in self.directed_graph.nodes:
            total = 0.0
            reachable = True
            for keyword in keywords:
                distance = self.index.distance(keyword, node)
                if math.isinf(distance):
                    reachable = False
                    break
                total += distance
            if not reachable:
                continue
            paths = tuple(
                (match.keyword, self.index.path(keyword, node))
                for match, keyword in zip(matches, keywords)
            )
            answers.append(BanksAnswer(root=node, paths=paths, score=total))

        answers.sort(key=lambda a: (a.score, str(a.root)))
        deduped: list[BanksAnswer] = []
        seen: set[frozenset[TupleId]] = set()
        for answer in answers:
            members = frozenset(answer.tuple_ids())
            if members in seen:
                continue
            seen.add(members)
            deduped.append(answer)
            if len(deduped) >= top_k:
                break
        return deduped
