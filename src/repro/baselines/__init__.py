"""Baseline keyword-search systems the paper positions itself against.

* :mod:`repro.baselines.discover` — DISCOVER-style candidate networks and
  the Minimal Total Joining Network of Tuples (MTJNT) semantics
  (Hristidis & Papakonstantinou, VLDB 2002) — the semantics the paper
  shows to lose connections;
* :mod:`repro.baselines.banks` — BANKS-style backward expanding search
  over the tuple graph (Aditya et al., VLDB 2002);
* :mod:`repro.baselines.bidirectional` — bidirectional expansion in the
  spirit of Kacholia et al. (VLDB 2005).

None of these systems has a canonical open-source implementation; they are
implemented here from their papers' descriptions, at the fidelity the
reproduction needs (exact answer *sets*, paper-faithful ranking shapes).
"""

from repro.baselines.discover import find_mtjnts, is_mtjnt, candidate_networks
from repro.baselines.banks import BanksAnswer, BanksSearch
from repro.baselines.bidirectional import BidirectionalSearch

__all__ = [
    "BanksAnswer",
    "BanksSearch",
    "BidirectionalSearch",
    "candidate_networks",
    "find_mtjnts",
    "is_mtjnt",
]
