"""Thin setup.py enabling legacy editable installs offline.

The environment has setuptools but no ``wheel`` package, so PEP 517
editable installs (which build a wheel) fail; ``pip install -e .
--no-build-isolation`` falls back to this file.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
