"""Experiment F1: Figure 1's ER schema maps onto Figure 2's relational schema.

Benchmarks ER schema construction plus the full ER-to-relational mapping
and asserts structural equality with the printed schema.
"""

from repro.experiments.figures import figure1

_printed = False


def test_figure1_regeneration(benchmark):
    result = benchmark(figure1)

    relations = {r.name for r in result.mapped_schema.relations}
    assert relations == {
        "DEPARTMENT", "PROJECT", "EMPLOYEE", "WORKS_FOR", "DEPENDENT",
    }

    global _printed
    if not _printed:
        _printed = True
        print()
        print("Figure 1 - ER schema (mapped schema matches Figure 2):")
        print(result.description)
