"""Experiment A1 (paper future work): ranking criteria ablation.

The paper's §4 sketches two refinements beyond raw length: counting
transitive-N:M joints, and weighing joints by the *actual number of
participating tuples*.  This ablation runs all four rankers over the same
answer set and reports (a) scoring cost and (b) how each strategy orders
the paper's seven connections.
"""

import pytest

from repro.core.ranking import (
    ClosenessRanker,
    ErLengthRanker,
    InstanceAmbiguityRanker,
    RdbLengthRanker,
    rank_connections,
)
from repro.experiments.tables import paper_connections

_RANKERS = [
    RdbLengthRanker(),
    ErLengthRanker(),
    ClosenessRanker(),
    InstanceAmbiguityRanker(),
]

_printed = set()


@pytest.fixture(scope="module")
def seven_connections(company_engine):
    connections = paper_connections(company_engine)
    return {number: connections[number] for number in range(1, 8)}


def test_statistical_ranker_ablation(benchmark, company_engine,
                                     seven_connections):
    """The aggregate-statistics approximation of instance ambiguity."""
    from repro.core.ranking_stats import StatisticalAmbiguityRanker
    from repro.relational.statistics import DatabaseStatistics

    ranker = StatisticalAmbiguityRanker(
        DatabaseStatistics(company_engine.database)
    )
    benchmark.group = "A1 ranker cost"
    benchmark.name = ranker.name

    ranked = benchmark(
        lambda: rank_connections(list(seven_connections.values()), ranker)
    )
    reverse = {c: n for n, c in seven_connections.items()}
    order = [reverse[answer] for answer, __ in ranked]
    # Same group structure as the exact ranker; 3-vs-6 tie is expected.
    assert set(order[:3]) == {1, 2, 5}
    assert set(order[3:5]) == {4, 7}
    assert set(order[5:]) == {3, 6}


@pytest.mark.parametrize("ranker", _RANKERS, ids=lambda r: r.name)
def test_ranker_ablation(benchmark, ranker, seven_connections):
    benchmark.group = "A1 ranker cost"
    benchmark.name = ranker.name

    ranked = benchmark(
        lambda: rank_connections(list(seven_connections.values()), ranker)
    )

    reverse = {c: n for n, c in seven_connections.items()}
    order = [reverse[answer] for answer, __ in ranked]

    if ranker.name not in _printed:
        _printed.add(ranker.name)
        print(f"\nA1 {ranker.name:>18}: order {order}")

    # Sanity per strategy.
    if ranker.name == "rdb-length":
        assert set(order[:2]) == {1, 5}
    if ranker.name == "closeness":
        assert set(order[:3]) == {1, 2, 5}
        assert set(order[-2:]) == {3, 6}
    if ranker.name == "instance-ambiguity":
        # The refinement separates 3 (factor 2) from 6 (factor 4).
        assert order.index(3) < order.index(6)
