"""Experiment T1: regenerate Table 1 (relationship classification).

Benchmarks the full classification pipeline (ER path construction plus the
close/loose verdict for all six published relationships) and asserts the
regenerated table equals the printed one.
"""

from repro.experiments.report import render_table
from repro.experiments.tables import table1

_printed = False


def test_table1_regeneration(benchmark):
    rows = benchmark(table1)

    assert [row.is_close for row in rows] == [
        True, True, True, False, False, False,
    ]

    global _printed
    if not _printed:
        _printed = True
        print()
        print(
            render_table(
                "Table 1 - relationships and their cardinalities",
                ["#", "relationship", "cardinality", "verdict"],
                [
                    [
                        row.number,
                        row.entities,
                        row.cardinalities,
                        f"{row.kind.value} ({'close' if row.is_close else 'loose'})",
                    ]
                    for row in rows
                ],
            )
        )
