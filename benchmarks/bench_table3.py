"""Experiment T3: regenerate Table 3 (cardinality-annotated connections)."""

from repro.experiments.report import render_table
from repro.experiments.tables import table3

_printed = False


def test_table3_regeneration(benchmark, company_engine):
    rows = benchmark(lambda: table3(company_engine))

    assert rows[1].rendered == "p1(XML) 1:N w_f1 N:1 e1(Smith)"
    assert rows[8].rendered == "d2 1:N p2 1:N w_f3 N:1 e3 1:N t1(Alice)"

    global _printed
    if not _printed:
        _printed = True
        print()
        print(
            render_table(
                "Table 3 - connections with relationship cardinalities",
                ["#", "connection with relationships"],
                [[row.number, row.rendered] for row in rows],
            )
        )
