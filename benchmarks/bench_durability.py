"""Experiment P8: durability — WAL-append overhead and recovery speed.

Two CI gates over the durable write-ahead-log layer:

* **WAL-append overhead** — the same mixed mutation workload applied
  through ``engine.apply`` twice: once on a plain in-memory engine and
  once with an attached WAL (every batch encoded, CRC-stamped, appended
  and fsynced before it patches live state).  Durability must stay a
  tax, not a toll: the wall-clock overhead gate is **<= 10%**.  Both
  engines must answer the probe queries identically afterwards.
* **reopen vs cold rebuild** — recovering the same durable serving
  state two ways: ``KeywordSearchEngine.open(path, wal=True)`` (mmap
  the compacted snapshot, replay the short log tail) versus the cold
  path — load the raw tuples from disk, rebuild the engine, re-apply
  every mutation batch, and re-establish durability with a fresh
  snapshot + WAL.  Replay must be bit-identical and the gate is
  **>= 5x** faster.

Parseable lines for ``run_all.py`` (schema ``repro-bench-report/4``,
``"durability"`` key)::

    wal-overhead-pct: <float>
    reopen-speedup: <float>

Run standalone::

    PYTHONPATH=src python benchmarks/bench_durability.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_durability.py --quick  # CI gate
"""

import argparse
import gc
import os
import sys
import tempfile
import time

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_company_like,
    plant,
)
from repro.live.changes import Insert, Update
from repro.relational.io import dump_json, load_json

_LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5)
_QUERIES = ["kwalpha kwbeta", "kwalpha", "kwbeta", "kwgamma",
            "kwalpha kwgamma"]


def _database(departments):
    database = generate_company_like(
        SyntheticConfig(
            departments=departments,
            projects_per_department=3,
            employees_per_department=8,
            works_on_per_employee=2,
            dependents_per_employee=0.5,
            seed=17,
        )
    )
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 3, seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 4, seed=2)
    plant(database, "kwgamma", "PROJECT", "P_NAME", 3, seed=3)
    return database


def _batches(database, count, per_batch):
    """Deterministic mixed batches: keyword inserts + description churn."""
    employees = database.tuples("EMPLOYEE")
    departments = database.tuples("DEPARTMENT")
    batches = []
    serial = 0
    for index in range(count):
        batch = []
        for slot in range(per_batch):
            if (index + slot) % 2 == 0:
                essn = employees[serial % len(employees)].tid.key[0]
                name = ("kwbeta", "kwalpha", "plain")[serial % 3]
                batch.append(Insert(
                    "DEPENDENT",
                    {"ID": f"bd{serial}", "ESSN": essn,
                     "DEPENDENT_NAME": name},
                ))
            else:
                department = departments[serial % len(departments)]
                text = ("kwalpha drift", "plain words",
                        "kwbeta kwalpha note")[serial % 3]
                batch.append(Update(department.tid,
                                    {"D_DESCRIPTION": text}))
            serial += 1
        batches.append(batch)
    return batches


def _rendered(results):
    return [(r.render(), r.score, r.rank) for r in results]


def _answers(engine):
    return [_rendered(engine.search(text, limits=_LIMITS))
            for text in _QUERIES]


def _timed_mixed(engine, batches):
    """One mixed read/write pass: apply a batch, answer the probes.

    The WAL taxes only the applies (encode + append + fsync); the reads
    dominate a mixed workload exactly as they do in production, which is
    the regime the 10% gate is stated for.  Returns the per-batch
    durations rather than one lump sum so the caller can combine the
    per-step minima across repeats — a scheduler preemption then costs
    one 7 ms step in one repeat instead of polluting a whole 100 ms
    pass, while recurring real cost (the fsync every batch pays in
    every repeat) survives the minimum.
    """
    steps = []
    for batch in batches:
        started = time.perf_counter()
        engine.apply(batch)
        for text in _QUERIES:
            engine.search(text, limits=_LIMITS)
        steps.append(time.perf_counter() - started)
    return steps


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke runs")
    args = parser.parse_args(argv)

    failures = []
    departments = 12 if args.quick else 14
    count, per_batch = (16, 5) if args.quick else (24, 6)
    repeats = 4

    with tempfile.TemporaryDirectory() as workdir:
        # -- WAL-append overhead on a mixed workload --------------------
        # GC off while the clock runs: allocation-triggered collections
        # bill the *ambient* heap (whatever earlier benches in the same
        # process left alive) to whichever pass happens to allocate more
        # — the WAL pass, which encodes a record per batch.  That is
        # scheduling noise, not durability tax, so the passes run under
        # identical collector state (the pyperf convention).
        plain_steps, wal_steps = [], []
        # Drain writeback backlog first: a run_all pass writes multi-MB
        # snapshots right before this bench, and fsync pays for the
        # kernel's pending dirty pages, not just our ~100-byte appends.
        if hasattr(os, "sync"):
            os.sync()
        gc.collect()
        gc.disable()
        try:
            for repeat in range(repeats):
                plain = KeywordSearchEngine(_database(departments))
                plain_steps.append(
                    _timed_mixed(plain, _batches(plain.database,
                                                 count, per_batch))
                )

                logged = KeywordSearchEngine(_database(departments))
                path = os.path.join(workdir, f"bench{repeat}.snap")
                logged.save(path)
                logged.attach_wal()
                if hasattr(os, "sync"):
                    # The save just dirtied ~1 MB; on a journalled fs the
                    # pass's first tiny fdatasync would flush that too.
                    os.sync()
                wal_steps.append(
                    _timed_mixed(logged, _batches(logged.database,
                                                  count, per_batch))
                )
                logged.close()
                gc.collect()
        finally:
            gc.enable()
        plain_s = sum(min(step) for step in zip(*plain_steps))
        wal_s = sum(min(step) for step in zip(*wal_steps))
        overhead = (wal_s - plain_s) / max(plain_s, 1e-9) * 100.0
        identical = _answers(plain) == _answers(logged)
        tuples = plain.database.count()
        print(f"wal overhead, mixed workload ({tuples} tuples, {count} batches x "
              f"{per_batch} mutations + {len(_QUERIES)} reads each, fsync on, "
              f"per-batch best of {repeats}):",
              file=out)
        print(f"  plain {plain_s * 1e3:8.2f} ms   "
              f"wal {wal_s * 1e3:8.2f} ms   overhead {overhead:.2f}%",
              file=out)
        print(f"  identical answers with and without WAL: {identical}",
              file=out)
        print(f"wal-overhead-pct: {max(overhead, 0.0):.2f}", file=out)
        if not identical:
            failures.append("wal: logged engine diverged from plain engine")
        if overhead > 10.0:
            failures.append(f"wal: append overhead {overhead:.2f}% > 10%")

        # -- snapshot+WAL reopen vs cold rebuild ------------------------
        # Production compaction keeps the replay tail bounded: fold all
        # but the last ``tail`` batches into the snapshot, then recover
        # the final state both ways.  Both paths must end in the same
        # condition — a durable serving engine — so the cold side loads
        # the raw tuples from disk (bench_scale's cold-start convention),
        # re-applies every batch, and re-establishes durability with a
        # fresh snapshot + WAL (``save`` also compiles the CSR kernels a
        # serving engine runs on).
        tail = 1
        database = _database(departments)
        raw = os.path.join(workdir, "tuples.json")
        dump_json(database, raw)
        durable = KeywordSearchEngine(database)
        pair = os.path.join(workdir, "recover.snap")
        durable.save(pair)
        durable.attach_wal()
        all_batches = _batches(durable.database, count, per_batch)
        for batch in all_batches[:-tail]:
            durable.apply(batch)
        durable.compact_wal()
        for batch in all_batches[-tail:]:
            durable.apply(batch)
        durable.close()

        reopen_s = cold_s = float("inf")
        reopened = None
        gc.collect()
        gc.disable()
        try:
            for repeat in range(repeats + 2):
                started = time.perf_counter()
                reopened = KeywordSearchEngine.open(pair, wal=True)
                replayed = reopened.version - reopened.wal.base_version
                reopen_s = min(reopen_s, time.perf_counter() - started)

                started = time.perf_counter()
                cold = KeywordSearchEngine(load_json(raw))
                for batch in _batches(cold.database, count, per_batch):
                    cold.apply(batch)
                cold.save(os.path.join(workdir, f"fresh{repeat}.snap"))
                cold.attach_wal()
                cold_s = min(cold_s, time.perf_counter() - started)
                cold.close()
                gc.collect()
        finally:
            gc.enable()
        ratio = cold_s / max(reopen_s, 1e-9)
        recovered = _answers(reopened) == _answers(cold)
        print(f"recovery ({replayed} records replayed):", file=out)
        print(f"  reopen {reopen_s * 1e3:8.2f} ms   "
              f"cold rebuild {cold_s * 1e3:8.2f} ms   "
              f"speedup {ratio:.1f}x", file=out)
        print(f"  replay bit-identical to cold rebuild: {recovered}",
              file=out)
        print(f"reopen-speedup: {ratio:.2f}", file=out)
        if not recovered:
            failures.append("recovery: replay diverged from cold rebuild")
        if ratio < 5.0:
            failures.append(f"recovery: reopen speedup {ratio:.1f}x < 5x")
        reopened.close()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=out)
        return 1
    print("OK: durability gates passed", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
