"""Experiment P9: cost-based adaptive planning and routing gates.

Two deterministic gates over a skewed workload (Zipf-popular keywords
whose popularity correlates with match-list size — the shape where
static plan-order enumeration wastes the most work):

* **enumeration gate** — answering the workload top-k with the adaptive
  planner must enumerate >= 30% fewer kernel units (paths + trees
  actually materialised by the traversal core) than the static planner,
  while every answer, score and rank stays bit-identical.  The saving
  comes from draining enumeration units cheapest-admissible-bound first
  and skipping provably-empty units, never from changing what is
  emitted.
* **dispatch gate** — LPT cost routing of a ``jobs=4`` full-enumeration
  batch must achieve a makespan (per-worker sum of observed candidate
  work) no worse than contiguous round-robin chunking, and the pooled
  batch must return bit-identical answers to the serial run.  Full mode
  is the regime batch dispatch serves: without a top-k cut the work a
  query does tracks its posting sizes, which is exactly what
  ``engine.query_cost`` predicts from.

Report lines parsed by ``run_all.py`` into the consolidated report's
``"planner"`` key (schema ``repro-bench-report/5``)::

    planner-enum-reduction-pct: <float>
    planner-makespan-ratio: <float>

Run standalone::

    PYTHONPATH=src python benchmarks/bench_planner.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_planner.py --quick  # CI gate
"""

import argparse
import os
import sys
import tempfile
from pathlib import Path

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import SyntheticConfig, generate_company_like
from repro.datasets.workload import (
    SkewedWorkloadConfig,
    generate_skewed_workload,
)
from repro.planner import route_by_cost

CONFIG = SyntheticConfig(
    departments=8,
    projects_per_department=3,
    employees_per_department=8,
    works_on_per_employee=2,
    dependents_per_employee=0.5,
    seed=11,
)
WORKLOAD = SkewedWorkloadConfig(
    queries=30, keyword_pool=10, max_matches=16, seed=5
)
LIMITS = SearchLimits(max_rdb_length=4, max_tuples=4)
TOP_K = 3
JOBS = 4
REDUCTION_GATE = 30.0  # percent


def build_workload():
    database = generate_company_like(CONFIG)
    queries = generate_skewed_workload(database, WORKLOAD)
    return database, [query.text for query in queries]


def snap(results):
    return [(r.render(), r.score, r.rank) for r in results]


def enumerated(engine) -> int:
    cache = engine.traversal_cache
    return cache.paths_enumerated + cache.trees_enumerated


def run_serial(database, texts, adaptive, top_k=TOP_K):
    """Answer the workload; returns (answers, units, per-query work)."""
    engine = KeywordSearchEngine(database, adaptive=adaptive)
    answers = []
    work = []
    pruned = 0
    for text in texts:
        answers.append(snap(engine.search(text, limits=LIMITS, top_k=top_k)))
        work.append(max(1, engine.last_stats.candidates))
        pruned += engine.last_stats.pruned
    return answers, enumerated(engine), work, pruned, engine


def makespan(assignment, work) -> float:
    return max(
        (sum(work[p] for p in chunk) for chunk in assignment if chunk),
        default=0.0,
    )


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI gate: smaller workload, pooled leg on 12 "
                             "queries")
    args = parser.parse_args(argv)

    # The bench compares both paths through explicit flags; the global
    # escape hatch would silently turn the adaptive leg static.
    os.environ.pop("REPRO_STATIC_PLAN", None)

    database, texts = build_workload()
    if args.quick:
        texts = texts[:20]

    # -- enumeration gate ----------------------------------------------
    static_answers, static_units, __, __, __ = run_serial(
        database, texts, adaptive=False)
    adaptive_answers, adaptive_units, __, pruned, __ = run_serial(
        database, texts, adaptive=True)
    if adaptive_answers != static_answers:
        print("FAIL: adaptive answers diverged from static", file=out)
        return 1
    reduction = 100.0 * (1.0 - adaptive_units / max(1, static_units))
    print(f"enumeration: {len(texts)} skewed queries top-{TOP_K}, "
          f"static {static_units} units, adaptive {adaptive_units} units "
          f"({pruned} provably-empty units pruned)", file=out)
    print(f"planner-enum-reduction-pct: {reduction:.1f}", file=out)
    if reduction < REDUCTION_GATE:
        print(f"FAIL: {reduction:.1f}% reduction below the "
              f"{REDUCTION_GATE:g}% gate", file=out)
        return 1
    print(f"OK: adaptive enumerates {reduction:.1f}% fewer units "
          f"(>= {REDUCTION_GATE:g}%), answers bit-identical", file=out)

    # -- dispatch gate (full enumeration) ------------------------------
    __, __, work, __, engine = run_serial(
        database, texts, adaptive=True, top_k=None)
    costs = [engine.query_cost(text) for text in texts]
    routed = route_by_cost(costs, JOBS)
    size = (len(texts) + JOBS - 1) // JOBS
    contiguous = [list(range(start, min(start + size, len(texts))))
                  for start in range(0, len(texts), size)]
    routed_span = makespan(routed, work)
    contiguous_span = makespan(contiguous, work)
    ratio = contiguous_span / max(1.0, routed_span)
    print(f"dispatch: jobs={JOBS}, contiguous makespan "
          f"{contiguous_span:g}, cost-routed {routed_span:g} "
          f"(observed candidate work, full enumeration)", file=out)
    print(f"planner-makespan-ratio: {ratio:.3f}", file=out)
    if routed_span > contiguous_span:
        print("FAIL: cost routing produced a worse makespan than "
              "contiguous chunking", file=out)
        return 1
    print(f"OK: cost-routed makespan {ratio:.2f}x better-or-equal", file=out)

    # -- pooled correctness --------------------------------------------
    pooled_texts = texts[:12] if args.quick else texts
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "planner.snap")
        KeywordSearchEngine(database).save(path)
        pooled = KeywordSearchEngine.open(path, adaptive=True)
        try:
            batched = pooled.search_batch(
                pooled_texts, limits=LIMITS, top_k=TOP_K, jobs=JOBS)
            observed = [snap(results) for results in batched]
        finally:
            pooled.close_pool()
            pooled.close()
    expected = static_answers[:len(pooled_texts)]
    if observed != expected:
        print("FAIL: pooled cost-routed batch diverged from serial answers",
              file=out)
        return 1
    print(f"OK: pooled jobs={JOBS} batch over {len(pooled_texts)} queries "
          f"bit-identical to serial", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
