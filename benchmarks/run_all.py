"""Run every standalone benchmark gate and emit one machine-readable report.

Discovers each ``bench_*.py`` in this directory that exposes a
``main(argv, out)`` entry point (the CI-gated benches), runs it with
``--quick`` (or the full sweep with ``--full``), and writes a
consolidated JSON report so the perf trajectory is diffable from PR to
PR.  The schema is documented in EXPERIMENTS.md ("Benchmark report
schema"); in short::

    {
      "schema": "repro-bench-report/5",
      "quick": true,
      "python": "3.11.7",
      "vector_backend": "numpy",     # or "stdlib" (no numpy / REPRO_NO_VECTOR)
      "obs": 0.09,                   # bench_obs disabled-mode overhead, %
      "durability": {                # bench_durability WAL gates
        "wal_overhead_pct": 4.10,
        "reopen_speedup": 6.4
      },
      "planner": {                   # bench_planner adaptive-planning gates
        "enum_reduction_pct": 60.1,
        "makespan_ratio": 1.44
      },
      "benchmarks": [
        {"name": "bench_csr_kernel", "exit_code": 0, "status": "ok",
         "elapsed_s": 1.93, "speedups": [4.0, 3.0, ...],
         "max_speedup": 4.2, "output": "kernel workload: ..."},
        ...
      ],
      "failures": ["bench_x"]        # empty when everything gated green
    }

``speedups`` collects every ``<float>x`` figure a bench printed, in
print order — each bench's own output names what the figures mean; the
gates themselves live *in the benches*, this runner only aggregates
exit codes.

Run::

    PYTHONPATH=src python benchmarks/run_all.py --quick
    PYTHONPATH=src python benchmarks/run_all.py --quick --out BENCH_pr10.json
"""

import argparse
import importlib.util
import io
import json
import platform
import re
import sys
import time
from pathlib import Path

_SPEEDUP = re.compile(r"(\d+(?:\.\d+)?)x\b")
_OBS_OVERHEAD = re.compile(r"^obs-overhead-pct: (\d+(?:\.\d+)?)$", re.M)
_WAL_OVERHEAD = re.compile(r"^wal-overhead-pct: (\d+(?:\.\d+)?)$", re.M)
_REOPEN_SPEEDUP = re.compile(r"^reopen-speedup: (\d+(?:\.\d+)?)$", re.M)
_ENUM_REDUCTION = re.compile(
    r"^planner-enum-reduction-pct: (-?\d+(?:\.\d+)?)$", re.M)
_MAKESPAN_RATIO = re.compile(
    r"^planner-makespan-ratio: (\d+(?:\.\d+)?)$", re.M)


def discover(directory: Path) -> list[Path]:
    """Benchmark files with a standalone ``main`` entry point, sorted."""
    found = []
    for path in sorted(directory.glob("bench_*.py")):
        if "def main(" in path.read_text(encoding="utf-8"):
            found.append(path)
    return found


def load_main(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main


def run_one(path: Path, quick: bool) -> dict:
    captured = io.StringIO()
    argv = ["--quick"] if quick else []
    started = time.perf_counter()
    try:
        exit_code = load_main(path)(argv, out=captured)
    except Exception as error:  # a crash is a failure, not a report hole
        captured.write(f"CRASH: {type(error).__name__}: {error}\n")
        exit_code = 2
    elapsed = time.perf_counter() - started
    output = captured.getvalue()
    speedups = [float(match) for match in _SPEEDUP.findall(output)]
    return {
        "name": path.stem,
        "exit_code": exit_code,
        "status": "ok" if exit_code == 0 else "fail",
        "elapsed_s": round(elapsed, 3),
        "speedups": speedups,
        "max_speedup": max(speedups) if speedups else None,
        "output": output,
    }


def lint_summary() -> dict:
    """Invariant-linter rule-hit counts, recorded beside the perf numbers.

    BENCH reports are the per-PR trajectory artifact; carrying the lint
    pressure in them shows invariant debt rising or falling alongside
    throughput.  A crash (e.g. ``repro`` not importable) is reported,
    not raised — the perf gates still run.
    """
    try:
        from repro.analysis import analyze_paths

        report = analyze_paths()
        return {
            "new": len(report.new),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
            "files": report.files,
            "counts": report.counts(),
        }
    except Exception as error:
        return {
            "new": 0,
            "baselined": 0,
            "suppressed": 0,
            "files": 0,
            "counts": {},
            "error": f"{type(error).__name__}: {error}",
        }


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="run every bench's --quick CI gate")
    parser.add_argument("--full", action="store_true",
                        help="run the full sweeps instead of --quick")
    parser.add_argument("--out", metavar="FILE", default="BENCH_pr10.json",
                        help="where to write the JSON report "
                             "(default BENCH_pr10.json)")
    args = parser.parse_args(argv)
    quick = args.quick or not args.full

    directory = Path(__file__).resolve().parent
    results = []
    for path in discover(directory):
        print(f"== {path.stem} ({'quick' if quick else 'full'}) ==", file=out)
        result = run_one(path, quick)
        results.append(result)
        print(result["output"], end="", file=out)
        print(f"-- {result['status']} in {result['elapsed_s']:.2f}s", file=out)

    failures = [result["name"] for result in results if result["exit_code"]]
    lint = lint_summary()
    print("== repro.analysis (invariant linter) ==", file=out)
    print(f"lint: {lint['new']} new, {lint['baselined']} baselined, "
          f"{lint['suppressed']} suppressed over {lint['files']} files "
          f"(rule hits: {lint['counts'] or 'none'})", file=out)
    if lint["new"]:
        failures.append("repro.analysis")
    from repro.graph.vector import BACKEND

    obs_overhead = None
    durability = None
    planner = None
    for result in results:
        if result["name"] == "bench_obs":
            match = _OBS_OVERHEAD.search(result["output"])
            if match:
                obs_overhead = float(match.group(1))
        if result["name"] == "bench_planner":
            reduction = _ENUM_REDUCTION.search(result["output"])
            ratio = _MAKESPAN_RATIO.search(result["output"])
            if reduction or ratio:
                planner = {
                    "enum_reduction_pct":
                        float(reduction.group(1)) if reduction else None,
                    "makespan_ratio":
                        float(ratio.group(1)) if ratio else None,
                }
        if result["name"] == "bench_durability":
            overhead = _WAL_OVERHEAD.search(result["output"])
            speedup = _REOPEN_SPEEDUP.search(result["output"])
            if overhead or speedup:
                durability = {
                    "wal_overhead_pct":
                        float(overhead.group(1)) if overhead else None,
                    "reopen_speedup":
                        float(speedup.group(1)) if speedup else None,
                }

    report = {
        "schema": "repro-bench-report/5",
        "quick": quick,
        "python": platform.python_version(),
        "vector_backend": BACKEND.name,
        "obs": obs_overhead,
        "durability": durability,
        "planner": planner,
        "benchmarks": results,
        "lint": lint,
        "failures": failures,
    }
    report_path = Path(args.out)
    report_path.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")
    print(f"report: {report_path} ({len(results)} benchmarks, "
          f"{len(failures)} failing)", file=out)
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=out)
        return 1
    print("OK: every benchmark gate passed", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
