"""Experiment C2: ranking comparison — RDB length vs the paper's closeness.

Benchmarks both rankings over the paper's seven searched connections and
asserts the groupings the paper derives: RDB-length puts {1,5} best and
{4,7} worst; closeness-first puts {1,2,5} best and {3,6} worst, promoting
4 and 7.
"""

from repro.experiments.claims import ranking_comparison

_printed = False


def test_ranking_comparison_claim(benchmark):
    result = benchmark(ranking_comparison)

    assert result.rdb_best == (1, 5)
    assert result.rdb_worst == (4, 7)
    assert result.closeness_best == (1, 2, 5)
    assert result.closeness_worst == (3, 6)

    global _printed
    if not _printed:
        _printed = True
        print()
        print("Claim C2 - ranking comparison (query 'Smith XML'):")
        print(f"  RDB-length order:  {result.rdb_order}"
              f"  (best {result.rdb_best}, worst {result.rdb_worst})")
        print(f"  closeness order:   {result.closeness_order}"
              f"  (best {result.closeness_best}, worst {result.closeness_worst})")
        print("  paper: best 1,2,5 / worst 3,6; 4 and 7 promoted -> REPRODUCED")
