"""Experiment P3 (extension): compiled CSR kernel vs the pruned fast core.

Measures the integer-interned CSR traversal kernels
(:mod:`repro.graph.csr`) against the TupleId-based pruned core
(:mod:`repro.graph.fast_traversal`) on a planted synthetic workload:

* **batch enumeration** — drain every simple path (to a depth bound)
  over a pair workload and every joining tree over a required-set
  workload; both cores answer from warm caches, so the comparison is
  pure kernel time (the differential tests prove the outputs
  bit-identical).  The combined wall-clock ratio is the gate (>= 3x).
* **top-k style enumeration** — consume only the first ``k`` items of
  each enumeration (the executor's pushdown consumption pattern), where
  per-call setup (distance rows, visited scratch) weighs more than
  steady-state throughput.
* **engine level** — ``search_batch`` and ``search(top_k=...)`` through
  engines differing only in ``core=``; reported for context (answer
  construction and ranking are shared overhead, so the ratio is
  naturally smaller than the kernel-level one).
* **memory footprint** — the compiled graph's flat arrays, reported in
  bytes and bytes/edge.
* **vector backend (P6)** — multi-source distance blocks and component
  labelling on a large synthetic graph, vectorized numpy backend vs the
  scalar csr core (``vector=False``), bit-identity asserted first; the
  combined cold-sweep ratio is the gate (>= 10x).  Skipped (without
  failing) when numpy is unavailable so the no-numpy CI leg stays
  green.  Footprint deltas between the two backends are reported —
  ~zero is the point: the numpy views are zero-copy.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_csr_kernel.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_csr_kernel.py --quick  # CI gate

or through pytest-benchmark like the other benches
(``pytest benchmarks/ -o python_files='bench_*.py'``).
"""

import argparse
import sys
import time
from itertools import islice

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import SyntheticConfig, generate_company_like
from repro.datasets.workload import WorkloadConfig, generate_workload
from repro.graph.csr import (
    FrozenGraph,
    csr_enumerate_joining_trees,
    csr_enumerate_simple_paths,
)
from repro.graph.data_graph import DataGraph
from repro.graph.fast_traversal import (
    TraversalCache,
    fast_enumerate_joining_trees,
    fast_enumerate_simple_paths,
)

_PATH_KERNELS = {
    "fast": fast_enumerate_simple_paths,
    "csr": csr_enumerate_simple_paths,
}
_TREE_KERNELS = {
    "fast": fast_enumerate_joining_trees,
    "csr": csr_enumerate_joining_trees,
}


def _database(departments=12, employees=12, works_on=4):
    return generate_company_like(
        SyntheticConfig(
            departments=departments,
            projects_per_department=4,
            employees_per_department=employees,
            works_on_per_employee=works_on,
            seed=17,
        )
    )


def _workloads(graph, pairs=50, combos=8):
    """Deterministic pair / required-set workloads over one data graph."""
    nodes = sorted(graph.graph.nodes, key=str)
    employees = [n for n in nodes if n.relation == "EMPLOYEE"]
    projects = [n for n in nodes if n.relation == "PROJECT"]
    pair_workload = [
        (e, p) for e in employees[:12] for p in projects[:6]
    ][:pairs]
    combo_workload = [
        (employees[i % len(employees)],
         projects[i % len(projects)],
         employees[(i + 3) % len(employees)])
        for i in range(combos)
    ]
    return pair_workload, combo_workload


def _drain_paths(kernel, graph, pairs, depth, cache):
    produced = 0
    for source, target in pairs:
        for __ in kernel(graph, source, target, depth, cache=cache):
            produced += 1
    return produced


def _drain_trees(kernel, graph, combos, max_tuples, cache):
    produced = 0
    for combo in combos:
        for __ in kernel(graph, list(combo), max_tuples, cache=cache):
            produced += 1
    return produced


def _topk_paths(kernel, graph, pairs, depth, cache, k):
    produced = 0
    for source, target in pairs:
        for __ in islice(kernel(graph, source, target, depth, cache=cache), k):
            produced += 1
    return produced


def _topk_trees(kernel, graph, combos, max_tuples, cache, k):
    produced = 0
    for combo in combos:
        for __ in islice(
            kernel(graph, list(combo), max_tuples, cache=cache), k
        ):
            produced += 1
    return produced


def _best(callable_, rounds):
    best = None
    for __ in range(rounds):
        started = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def kernel_setup():
    graph = DataGraph(_database())
    pairs, combos = _workloads(graph)
    caches = {"fast": TraversalCache(graph), "csr": TraversalCache(graph)}
    caches["csr"].frozen()
    return graph, pairs, combos, caches


@pytest.mark.parametrize("core", ["csr", "fast"])
def test_path_enumeration(benchmark, kernel_setup, core):
    graph, pairs, __, caches = kernel_setup
    benchmark.group = "P3 path enumeration"
    benchmark.name = core
    kernel, cache = _PATH_KERNELS[core], caches[core]
    _drain_paths(kernel, graph, pairs, 6, cache)  # warm caches
    produced = benchmark(lambda: _drain_paths(kernel, graph, pairs, 6, cache))
    assert produced > 0


@pytest.mark.parametrize("core", ["csr", "fast"])
def test_tree_enumeration(benchmark, kernel_setup, core):
    graph, __, combos, caches = kernel_setup
    benchmark.group = "P3 tree enumeration"
    benchmark.name = core
    kernel, cache = _TREE_KERNELS[core], caches[core]
    _drain_trees(kernel, graph, combos, 6, cache)
    produced = benchmark(lambda: _drain_trees(kernel, graph, combos, 6, cache))
    assert produced > 0


# ----------------------------------------------------------------------
# standalone report (CI smoke runs this with --quick)
# ----------------------------------------------------------------------
def _kernel_section(graph, pairs, combos, depth, max_tuples, rounds, out):
    caches = {"fast": TraversalCache(graph), "csr": TraversalCache(graph)}
    caches["csr"].frozen()
    counts = {}
    batch = {}
    topk = {}
    for core in ("fast", "csr"):
        path_kernel, tree_kernel = _PATH_KERNELS[core], _TREE_KERNELS[core]
        cache = caches[core]
        counts[core] = (
            _drain_paths(path_kernel, graph, pairs, depth, cache),
            _drain_trees(tree_kernel, graph, combos, max_tuples, cache),
        )
        batch[core] = (
            _best(lambda: _drain_paths(path_kernel, graph, pairs, depth, cache),
                  rounds),
            _best(lambda: _drain_trees(tree_kernel, graph, combos, max_tuples,
                                       cache), rounds),
        )
        topk[core] = (
            _best(lambda: _topk_paths(path_kernel, graph, pairs, depth, cache,
                                      3), rounds),
            _best(lambda: _topk_trees(tree_kernel, graph, combos, max_tuples,
                                      cache, 3), rounds),
        )
    assert counts["fast"] == counts["csr"], "cores enumerated different answers"
    paths, trees = counts["csr"]

    def report(label, times):
        fast_s = sum(times["fast"])
        csr_s = sum(times["csr"])
        ratio = fast_s / max(csr_s, 1e-9)
        print(f"  {label:18} fast {fast_s * 1e3:8.2f} ms   "
              f"csr {csr_s * 1e3:8.2f} ms   speedup {ratio:.1f}x", file=out)
        for kind, index in (("paths", 0), ("trees", 1)):
            kind_ratio = times["fast"][index] / max(times["csr"][index], 1e-9)
            print(f"    {kind:8} fast {times['fast'][index] * 1e3:8.2f} ms   "
                  f"csr {times['csr'][index] * 1e3:8.2f} ms   "
                  f"speedup {kind_ratio:.1f}x", file=out)
        return ratio

    print(f"kernel workload: {graph.number_of_nodes()} tuples, "
          f"{graph.number_of_edges()} edges, {len(pairs)} pairs "
          f"(depth {depth}), {len(combos)} required sets "
          f"(max {max_tuples} tuples) -> {paths} paths, {trees} trees",
          file=out)
    batch_ratio = report("batch (drain)", batch)
    topk_ratio = report("top-k (islice 3)", topk)
    return batch_ratio, topk_ratio, caches["csr"].frozen()


def _vector_section(rounds, out, sources_wanted=128):
    """P6: vectorized frontier-at-a-time kernels vs the scalar csr core.

    Returns the combined cold-sweep speedup, or ``None`` when the
    vectorized backend is unavailable (stdlib fallback active) — the
    caller then skips the gate instead of failing, so the no-numpy CI
    leg can still run this benchmark.
    """
    graph = DataGraph(_database(departments=30, employees=30, works_on=5))
    scalar = FrozenGraph(graph, vector=False)
    vector = FrozenGraph(graph)
    capacity = scalar.capacity
    step = max(1, capacity // sources_wanted)
    sources = list(range(0, capacity, step))[:sources_wanted]
    print(f"vector workload: {capacity} tuples, "
          f"{len(scalar._targets)} CSR entries, "
          f"{len(sources)}-source distance block + component labelling "
          f"[backend: {vector.backend_name}]", file=out)
    if not vector._backend.vectorized:
        print("  numpy unavailable (or REPRO_NO_VECTOR set) — vectorized "
              "gate skipped, stdlib fallback is the only backend", file=out)
        return None

    block = vector.distances_block(sources)
    for node in sources:
        assert block[node] == scalar.distances(node), \
            f"vector BFS row diverged for source {node}"
    assert vector.components() == scalar.components(), \
        "vector component labels diverged"

    def cold_block(frozen):
        def run():
            frozen._distances.clear()
            frozen.distances_block(sources)
        return run

    def cold_components(frozen):
        def run():
            frozen._components = None
            frozen.components()
        return run

    times = {
        name: (
            _best(cold_block(frozen), rounds),
            _best(cold_components(frozen), rounds),
        )
        for name, frozen in (("scalar", scalar), ("vector", vector))
    }
    for label, index in (("distance block", 0), ("components", 1)):
        ratio = times["scalar"][index] / max(times["vector"][index], 1e-9)
        print(f"  {label:18} scalar {times['scalar'][index] * 1e3:8.2f} ms   "
              f"vector {times['vector'][index] * 1e3:8.2f} ms   "
              f"speedup {ratio:.1f}x", file=out)
    combined = sum(times["scalar"]) / max(sum(times["vector"]), 1e-9)
    print(f"  {'combined':18} scalar {sum(times['scalar']) * 1e3:8.2f} ms   "
          f"vector {sum(times['vector']) * 1e3:8.2f} ms   "
          f"speedup {combined:.1f}x", file=out)

    scalar_footprint = scalar.memory_footprint()
    vector_footprint = vector.memory_footprint()
    deltas = ", ".join(
        f"{key} {vector_footprint[key] - scalar_footprint[key]:+,}"
        for key in ("arrays", "distances", "payload", "total")
    )
    print(f"  footprint delta (vector - scalar, bytes): {deltas} "
          f"— numpy views are zero-copy over the same buffers", file=out)
    return combined


def _engine_section(database, rounds, out):
    texts = [
        query.text
        for query in generate_workload(
            database,
            WorkloadConfig(queries=6, keywords_per_query=2,
                           matches_per_keyword=3, seed=13),
        )
    ]
    limits = SearchLimits(max_rdb_length=5)
    engines = {
        core: KeywordSearchEngine(database, core=core, result_cache_entries=0)
        for core in ("fast", "csr")
    }
    rendered = {
        core: [
            [(r.render(), r.score) for r in results]
            for results in engine.search_batch(texts, limits=limits)
        ]
        for core, engine in engines.items()
    }
    identical = rendered["fast"] == rendered["csr"]
    batch = {
        core: _best(lambda e=engine: e.search_batch(texts, limits=limits),
                    rounds)
        for core, engine in engines.items()
    }
    topk = {
        core: _best(
            lambda e=engine: [
                e.search(text, limits=limits, top_k=3) for text in texts
            ],
            rounds,
        )
        for core, engine in engines.items()
    }
    print(f"engine level ({database.count()} tuples, {len(texts)} queries):",
          file=out)
    print(f"  search_batch       fast {batch['fast'] * 1e3:8.2f} ms   "
          f"csr {batch['csr'] * 1e3:8.2f} ms   "
          f"speedup {batch['fast'] / max(batch['csr'], 1e-9):.1f}x", file=out)
    print(f"  search top-3       fast {topk['fast'] * 1e3:8.2f} ms   "
          f"csr {topk['csr'] * 1e3:8.2f} ms   "
          f"speedup {topk['fast'] / max(topk['csr'], 1e-9):.1f}x", file=out)
    print(f"  identical results: {identical}", file=out)
    return identical


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke runs")
    args = parser.parse_args(argv)

    rounds = 3 if args.quick else 5
    depth = 6 if args.quick else 7
    database = _database()
    graph = DataGraph(database)
    pairs, combos = _workloads(graph, pairs=40 if args.quick else 60,
                               combos=6 if args.quick else 10)

    failures = []
    batch_ratio, topk_ratio, frozen = _kernel_section(
        graph, pairs, combos, depth, 6, rounds, out
    )
    if batch_ratio < 3.0:
        failures.append(
            f"kernel: batch speedup {batch_ratio:.1f}x < 3x over the fast core"
        )
    if topk_ratio < 1.0:
        failures.append(
            f"kernel: top-k speedup {topk_ratio:.1f}x regressed below 1x"
        )

    footprint = frozen.memory_footprint()
    per_edge = footprint["total"] / max(1, len(frozen._targets))
    print(f"memory: compiled graph {footprint['total']:,} bytes for "
          f"{frozen.capacity} nodes / {len(frozen._targets)} CSR entries "
          f"({per_edge:.1f} bytes/entry) — arrays {footprint['arrays']:,}, "
          f"distance rows {footprint['distances']:,}, "
          f"edge payload {footprint['payload']:,}", file=out)

    vector_ratio = _vector_section(rounds, out)
    if vector_ratio is not None and vector_ratio < 10.0:
        failures.append(
            f"vector: combined speedup {vector_ratio:.1f}x < 10x over the "
            f"scalar csr core"
        )

    identical = _engine_section(database, rounds, out)
    if not identical:
        failures.append("engine: csr answers diverged from the fast core")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=out)
        return 1
    vector_note = (
        f"vector {vector_ratio:.1f}x >= 10x"
        if vector_ratio is not None
        else "vector gate skipped (stdlib backend)"
    )
    print(f"OK: kernel batch speedup {batch_ratio:.1f}x >= 3x, "
          f"top-k {topk_ratio:.1f}x, {vector_note}, "
          f"answers bit-identical", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
