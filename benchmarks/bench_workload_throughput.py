"""Experiment S4 (extension): workload throughput — pruned traversal vs networkx.

Measures the engine's traversal core on the two datasets the differential
tests cover:

* **single-query latency** — one ``engine.search`` call, fast path vs the
  brute-force networkx traversal (``use_fast_traversal=False``), on the
  paper's company instance and on a planted synthetic database;
* **batch throughput** — ``engine.search_batch`` over a generated workload
  (repeated queries included, as served traffic would have) vs a
  query-at-a-time loop through the brute-force engine.

Both modes must return identical answers (asserted here and in
``tests/graph/test_fast_traversal.py``); the fast path is expected to be
at least 2x faster on the synthetic workload.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_workload_throughput.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_workload_throughput.py --quick  # CI smoke

or through pytest-benchmark like the other benches
(``pytest benchmarks/ -o python_files='bench_*.py'``).
"""

import argparse
import sys
import time

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.company import build_company_database
from repro.datasets.synthetic import SyntheticConfig, generate_company_like
from repro.datasets.workload import WorkloadConfig, batch_texts, generate_workload

_COMPANY_LIMITS = SearchLimits(max_rdb_length=3)
_SYNTHETIC_LIMITS = SearchLimits(max_rdb_length=5)


def _synthetic_database(departments: int = 50, works_on: int = 3):
    return generate_company_like(
        SyntheticConfig(
            departments=departments,
            projects_per_department=3,
            employees_per_department=10,
            works_on_per_employee=works_on,
            seed=17,
        )
    )


def _workload(database, queries: int = 8, repeats: int = 2):
    planted = generate_workload(
        database,
        WorkloadConfig(
            queries=queries, keywords_per_query=2, matches_per_keyword=3, seed=13
        ),
    )
    return batch_texts(planted, repeats=repeats)


def _rendered(results):
    return [(r.render(), r.score) for r in results]


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def company_pair():
    database = build_company_database()
    return (
        KeywordSearchEngine(database, result_cache_entries=0),
        KeywordSearchEngine(database, use_fast_traversal=False,
                            result_cache_entries=0),
    )


@pytest.fixture(scope="module")
def synthetic_setup():
    database = _synthetic_database()
    texts = _workload(database)
    return (
        KeywordSearchEngine(database, result_cache_entries=0),
        KeywordSearchEngine(database, use_fast_traversal=False,
                            result_cache_entries=0),
        texts,
    )


@pytest.mark.parametrize("mode", ["fast", "networkx"])
def test_company_single_query(benchmark, company_pair, mode):
    fast, slow = company_pair
    engine = fast if mode == "fast" else slow
    benchmark.group = "S4 company single query"
    benchmark.name = mode
    results = benchmark(
        lambda: engine.search("Smith XML", limits=_COMPANY_LIMITS)
    )
    assert _rendered(results) == _rendered(
        (slow if mode == "fast" else fast).search(
            "Smith XML", limits=_COMPANY_LIMITS
        )
    )


@pytest.mark.parametrize("mode", ["fast", "networkx"])
def test_synthetic_single_query(benchmark, synthetic_setup, mode):
    fast, slow, texts = synthetic_setup
    engine = fast if mode == "fast" else slow
    benchmark.group = "S4 synthetic single query"
    benchmark.name = mode
    results = benchmark(
        lambda: engine.search(texts[0], limits=_SYNTHETIC_LIMITS)
    )
    assert results is not None


@pytest.mark.parametrize("mode", ["fast", "networkx"])
def test_synthetic_batch_throughput(benchmark, synthetic_setup, mode):
    fast, slow, texts = synthetic_setup
    benchmark.group = "S4 synthetic batch"
    benchmark.name = mode
    if mode == "fast":
        batched = benchmark(
            lambda: fast.search_batch(texts, limits=_SYNTHETIC_LIMITS)
        )
    else:
        batched = benchmark(
            lambda: [slow.search(text, limits=_SYNTHETIC_LIMITS) for text in texts]
        )
    assert len(batched) == len(texts)


# ----------------------------------------------------------------------
# standalone report (CI smoke runs this with --quick)
# ----------------------------------------------------------------------
def _time(callable_, rounds: int) -> float:
    best = None
    for __ in range(rounds):
        started = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _report_dataset(name, database, texts, limits, rounds, out):
    fast = KeywordSearchEngine(database, result_cache_entries=0)
    slow = KeywordSearchEngine(database, use_fast_traversal=False,
                               result_cache_entries=0)

    batched_fast = fast.search_batch(texts, limits=limits)
    batched_slow = [slow.search(text, limits=limits) for text in texts]
    for fast_results, slow_results in zip(batched_fast, batched_slow):
        assert _rendered(fast_results) == _rendered(slow_results), (
            "fast and networkx answers diverged"
        )

    single_fast = _time(lambda: fast.search(texts[0], limits=limits), rounds)
    single_slow = _time(lambda: slow.search(texts[0], limits=limits), rounds)
    batch_fast = _time(lambda: fast.search_batch(texts, limits=limits), rounds)
    batch_slow = _time(
        lambda: [slow.search(text, limits=limits) for text in texts], rounds
    )

    throughput = len(texts) / batch_fast
    speedup = batch_slow / batch_fast
    print(f"{name}: {database.count()} tuples, {len(texts)} queries", file=out)
    print(f"  single query   fast {single_fast * 1e3:8.2f} ms   "
          f"networkx {single_slow * 1e3:8.2f} ms   "
          f"speedup {single_slow / single_fast:5.1f}x", file=out)
    print(f"  batch          fast {batch_fast * 1e3:8.2f} ms   "
          f"networkx {batch_slow * 1e3:8.2f} ms   "
          f"speedup {speedup:5.1f}x   "
          f"({throughput:,.0f} queries/s)", file=out)
    return speedup


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke runs")
    args = parser.parse_args(argv)

    # Best-of-N smooths scheduler noise; the gate below has ~75x headroom
    # but a single cold round on a loaded CI runner is still worth avoiding.
    rounds = 2 if args.quick else 3
    departments = 30 if args.quick else 50
    queries = 4 if args.quick else 8

    company = build_company_database()
    _report_dataset(
        "company", company,
        ["Smith XML", "Brown CS", "Smith XML", "John Smith"],
        _COMPANY_LIMITS, rounds, out,
    )

    synthetic = _synthetic_database(departments=departments)
    texts = _workload(synthetic, queries=queries)
    speedup = _report_dataset(
        "synthetic", synthetic, texts, _SYNTHETIC_LIMITS, rounds, out,
    )

    if speedup < 2.0:
        print(f"FAIL: synthetic batch speedup {speedup:.1f}x < 2x", file=out)
        return 1
    print(f"OK: synthetic batch speedup {speedup:.1f}x >= 2x", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
