"""Experiment C1: MTJNT semantics loses connections 3, 4, 6 and 7 (§3).

Benchmarks full MTJNT enumeration for ``Smith XML`` (assignment expansion,
joining-tree growth, exact minimality filtering) and asserts the paper's
loss claim.
"""

from repro.experiments.claims import mtjnt_loss

_printed = False


def test_mtjnt_loss_claim(benchmark):
    result = benchmark(mtjnt_loss)

    assert result.mtjnt_rows == (1, 2, 5)
    assert result.lost_rows == (3, 4, 6, 7)
    assert result.mtjnt_count == 3

    global _printed
    if not _printed:
        _printed = True
        print()
        print("Claim C1 - MTJNT loses connections (query 'Smith XML'):")
        print(f"  MTJNTs found:         connections {result.mtjnt_rows}")
        print(f"  lost under MTJNT:     connections {result.lost_rows}")
        print("  paper: 'connections 3, 4, 6 and 7 are lost' -> REPRODUCED")
