"""Experiment A2 (extension): lazy top-k vs full enumeration.

The lazy searcher enumerates paths in increasing RDB length and stops when
no unseen path can break into the current top-k.  This bench sweeps k on a
planted synthetic database and compares against enumerate-everything-then-
sort; both must return identical answers (asserted), the lazy variant
should win for small k.
"""

import pytest

from repro.core.connections import Connection
from repro.core.matching import match_keywords
from repro.core.ranking import ClosenessRanker, rank_connections
from repro.core.search import SearchLimits, find_connections
from repro.core.topk import top_k_connections

from conftest import sized_engine

_LIMITS = SearchLimits(max_rdb_length=4)


@pytest.fixture(scope="module")
def workload():
    engine = sized_engine(300)
    matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
    return engine, matches


def _full(engine, matches, k):
    answers = [
        answer
        for answer in find_connections(
            engine.data_graph, matches, _LIMITS, include_single_tuples=False
        )
        if isinstance(answer, Connection)
    ]
    return rank_connections(answers, ClosenessRanker())[:k]


@pytest.mark.parametrize("k", [1, 5, 20])
def test_lazy_topk(benchmark, workload, k):
    engine, matches = workload
    benchmark.group = "A2 top-k"
    benchmark.name = f"lazy k={k}"
    results = benchmark(
        lambda: top_k_connections(
            engine.data_graph, matches, ClosenessRanker(), k, _LIMITS
        )
    )
    expected = _full(engine, matches, k)
    assert [(c.render(), s) for c, s in results] == [
        (a.render(), s) for a, s in expected
    ]


def test_full_enumeration_reference(benchmark, workload):
    engine, matches = workload
    benchmark.group = "A2 top-k"
    benchmark.name = "full enumeration"
    results = benchmark(lambda: _full(engine, matches, 20))
    assert results is not None
