"""Experiment S3 (extension): indexed (BLINKS-style) vs on-the-fly search.

BLINKS trades index build time for query time.  This bench measures both
sides on the same planted database: building the keyword-distance index
for the workload's terms, querying through it, and querying BANKS without
any index.  The expected shape: BLINKS queries beat BANKS queries, the
index build costs more than a single BANKS query, and both return the
same answers (asserted).
"""

import pytest

from repro.baselines.banks import BanksSearch
from repro.baselines.blinks import BlinksSearch, KeywordDistanceIndex
from repro.core.matching import match_keywords

from conftest import sized_engine


@pytest.fixture(scope="module")
def workload():
    engine = sized_engine(300)
    matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))
    return engine, matches


def test_blinks_index_build(benchmark, workload):
    engine, matches = workload
    benchmark.group = "S3 blinks"
    benchmark.name = "index build (2 keywords)"
    banks = BanksSearch(engine.data_graph)

    index = benchmark(
        lambda: KeywordDistanceIndex(
            banks, engine.index, keywords=("kwalpha", "kwbeta")
        )
    )
    assert index.size() > 0


def test_blinks_query(benchmark, workload):
    engine, matches = workload
    benchmark.group = "S3 blinks"
    benchmark.name = "BLINKS query (indexed)"
    blinks = BlinksSearch(
        engine.data_graph, engine.index, keywords=("kwalpha", "kwbeta")
    )

    answers = benchmark(lambda: blinks.search(matches, top_k=10))
    assert answers


def test_banks_query_reference(benchmark, workload):
    engine, matches = workload
    benchmark.group = "S3 blinks"
    benchmark.name = "BANKS query (no index)"
    banks = BanksSearch(engine.data_graph)

    answers = benchmark(lambda: banks.search(matches, top_k=10))
    assert answers


def test_answer_equivalence(workload):
    """Not a timing benchmark: BLINKS must return BANKS' answers exactly."""
    engine, matches = workload
    banks_answers = BanksSearch(engine.data_graph).search(matches, top_k=10)
    blinks = BlinksSearch(
        engine.data_graph, engine.index, keywords=("kwalpha", "kwbeta")
    )
    blinks_answers = blinks.search(matches, top_k=10)
    assert [frozenset(a.tuple_ids()) for a in banks_answers] == [
        frozenset(a.tuple_ids()) for a in blinks_answers
    ]
