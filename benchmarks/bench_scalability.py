"""Experiment S1 (extension): engine scalability over database size.

The paper has no performance study; its future work calls for ranking
experiments at scale.  This sweep measures end-to-end query latency of the
close/loose-aware engine on synthetic company-shaped databases of growing
size (roughly 10^2 to 10^3.5 tuples - pure-Python substrate, shapes matter,
absolute numbers do not).
"""

import pytest

from repro.core.search import SearchLimits

from conftest import sized_engine

_SCALES = [100, 300, 1000, 3000]


@pytest.fixture(scope="module", params=_SCALES)
def scaled_engine(request):
    return request.param, sized_engine(request.param)


def test_search_latency_by_scale(benchmark, scaled_engine):
    scale, engine = scaled_engine
    benchmark.group = "S1 search latency"
    benchmark.name = f"tuples~{scale}"

    results = benchmark(
        lambda: engine.search(
            "kwalpha kwbeta", limits=SearchLimits(max_rdb_length=3)
        )
    )
    # Planted keywords always have a direct or two-hop association.
    assert results is not None


def test_index_build_by_scale(benchmark, scaled_engine):
    scale, engine = scaled_engine
    benchmark.group = "S1 index build"
    benchmark.name = f"tuples~{scale}"

    from repro.relational.index import InvertedIndex

    index = benchmark(lambda: InvertedIndex(engine.database))
    assert index.document_frequency("kwalpha") >= 1


def test_data_graph_build_by_scale(benchmark, scaled_engine):
    scale, engine = scaled_engine
    benchmark.group = "S1 graph build"
    benchmark.name = f"tuples~{scale}"

    from repro.graph.data_graph import DataGraph

    graph = benchmark(lambda: DataGraph(engine.database))
    assert graph.number_of_nodes() == engine.database.count()
