"""Experiment P7: observability overhead and bit-identity gates.

Two properties make :mod:`repro.obs` safe to ship enabled-by-default
*off*:

* **bit-identity** — answering the standard planted workload with
  tracing and metrics enabled produces exactly the same answers, in the
  same order, with the same scores *and the same
  :class:`~repro.errors.SearchLimitError` points* as the untraced run.
  This is asserted, not benchmarked.
* **disabled overhead <= 2%** — when observability is off, every
  instrumentation site collapses to one module-attribute load plus a
  branch.  The gate multiplies the number of guarded sites an enabled
  run actually passes through (spans recorded + metric ops) by the
  microbenchmarked cost of one disabled guard, times a 4x safety
  factor, and requires the total to stay under 2% of the untraced
  workload's wall-clock.  Counting sites from the enabled run
  over-approximates the disabled run (the enabled run reaches every
  guard the disabled run does), so the bound is conservative twice
  over.

The report line ``obs-overhead-pct: <float>`` is parsed by
``run_all.py`` into the consolidated report's ``"obs"`` key
(schema ``repro-bench-report/3``).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_obs.py --quick  # CI gate
"""

import argparse
import sys
import time

from repro import obs
from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_tenants,
    plant,
)
from repro.errors import SearchLimitError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

CONFIG = SyntheticConfig(
    departments=2,
    projects_per_department=2,
    employees_per_department=4,
    works_on_per_employee=2,
    seed=31,
)
#: ``max_paths_per_pair=1`` makes two of the five queries trip
#: SearchLimitError — the identity gate must cover the error points,
#: not just answers.
LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5, max_paths_per_pair=1)
QUERIES = [
    "kwalpha kwbeta",
    "kwalpha kwbeta kwgamma",
    "kwalpha",
    "zznothing",
    "kwbeta kwgamma",
]


def build_database():
    database = generate_tenants(CONFIG, tenants=3)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION", 3, seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME", 3, seed=2)
    plant(database, "kwgamma", "PROJECT", "P_DESCRIPTION", 3, seed=3)
    return database


def run_workload(engine, top_k=None):
    """Answer every query; outcomes carry answers *or* the limit error."""
    outcomes = []
    for query in QUERIES:
        try:
            results = engine.search(query, limits=LIMITS, top_k=top_k)
        except SearchLimitError as error:
            outcomes.append(("error", type(error).__name__, str(error)))
        else:
            outcomes.append(
                ("ok", [(r.render(), r.score, r.rank) for r in results])
            )
    return outcomes


def observed_sites(database) -> int:
    """Guarded instrumentation sites one workload pass runs through.

    Counted from a fully-enabled run: every span recorded and every
    metric op is one ``ENABLED`` check the disabled run would have
    taken instead.  The enabled run reaches at least every guard the
    disabled run does, so this over-counts, never under-counts.
    """
    engine = KeywordSearchEngine(database, shards=2)
    obs.reset()
    obs.set_enabled(True)
    try:
        spans = 0
        for query in QUERIES:
            try:
                engine.search(query, limits=LIMITS)
            except SearchLimitError:
                pass
            if engine.last_trace is not None:
                spans += sum(1 for __ in engine.last_trace.root.walk())
        ops = obs_metrics.REGISTRY.ops
    finally:
        obs.set_enabled(False)
        obs.reset()
    return spans + ops


def disabled_guard_cost() -> float:
    """Seconds per single disabled instrumentation guard."""
    assert not obs_trace.ENABLED and not obs_metrics.ENABLED
    rounds = 200_000
    taken = 0
    start = time.perf_counter()
    for __ in range(rounds):
        if obs_trace.ENABLED:  # the exact shape of a disabled site
            taken += 1
        if obs_metrics.ENABLED:
            taken += 1
    elapsed = time.perf_counter() - start
    assert taken == 0
    return elapsed / (2 * rounds)


def time_workload(database, repeats: int) -> float:
    """Best-of-N seconds for one untraced workload pass, cold engine."""
    best = None
    for __ in range(repeats):
        engine = KeywordSearchEngine(database, shards=2)
        start = time.perf_counter()
        run_workload(engine)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI gate: fewer timing repeats")
    args = parser.parse_args(argv)
    repeats = 3 if args.quick else 7

    database = build_database()

    # -- bit-identity: plain, traced, metered, and both ----------------
    plain = run_workload(KeywordSearchEngine(database, shards=2))
    errors = sum(1 for outcome in plain if outcome[0] == "error")
    modes = {"trace": (True, False), "metrics": (False, True),
             "both": (True, True)}
    for label, (tracing, metered) in sorted(modes.items()):
        obs_trace.set_enabled(tracing)
        obs_metrics.set_enabled(metered)
        try:
            observed = run_workload(KeywordSearchEngine(database, shards=2))
        finally:
            obs.set_enabled(False)
            obs.reset()
        if observed != plain:
            print(f"FAIL: {label} run diverged from the plain run", file=out)
            return 1
    answers = sum(len(outcome[1]) for outcome in plain if outcome[0] == "ok")
    print(f"obs workload: {len(QUERIES)} queries, {answers} answers, "
          f"{errors} SearchLimitError points", file=out)
    print("bit-identity: trace/metrics/both == plain "
          "(answers, order, scores, error points)  OK", file=out)

    # -- disabled overhead ---------------------------------------------
    sites = observed_sites(database)
    per_guard = disabled_guard_cost()
    t_off = time_workload(database, repeats)
    safety = 4.0
    overhead = safety * sites * per_guard / t_off
    pct = overhead * 100.0
    print(f"disabled overhead: {sites} guarded sites x "
          f"{per_guard * 1e9:.1f} ns x {safety:g} safety = "
          f"{safety * sites * per_guard * 1e6:.1f} us "
          f"vs {t_off * 1e3:.2f} ms workload", file=out)
    print(f"obs-overhead-pct: {pct:.4f}", file=out)
    if overhead > 0.02:
        print(f"FAIL: disabled-mode overhead {pct:.3f}% exceeds the 2% gate",
              file=out)
        return 1
    print(f"OK: disabled-mode overhead {pct:.3f}% <= 2%", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
