"""Experiment S2 (extension): baseline comparison on a fixed workload.

Compares the reproduction's engine against the DISCOVER (MTJNT) and BANKS
baselines on the same planted synthetic database: latency per system plus
the answer-recall relationship the paper predicts (MTJNT returns a strict
subset of the loose-aware engine's tuple sets).
"""

import pytest

from repro.baselines.banks import BanksSearch
from repro.baselines.bidirectional import BidirectionalSearch
from repro.baselines.discover import find_mtjnts
from repro.core.connections import Connection
from repro.core.matching import match_keywords
from repro.core.search import SearchLimits, find_connections

from conftest import sized_engine

_printed = False


@pytest.fixture(scope="module")
def workload_engine():
    return sized_engine(300)


@pytest.fixture(scope="module")
def matches(workload_engine):
    return match_keywords(workload_engine.index, ("kwalpha", "kwbeta"))


def test_engine_latency(benchmark, workload_engine):
    benchmark.group = "S2 systems"
    benchmark.name = "close/loose engine"
    results = benchmark(
        lambda: workload_engine.search(
            "kwalpha kwbeta", limits=SearchLimits(max_rdb_length=3)
        )
    )
    assert results is not None


def test_discover_latency(benchmark, workload_engine, matches):
    benchmark.group = "S2 systems"
    benchmark.name = "DISCOVER (MTJNT)"
    results = benchmark(
        lambda: find_mtjnts(
            workload_engine.data_graph, matches, SearchLimits(max_tuples=4)
        )
    )
    assert results is not None


def test_banks_latency(benchmark, workload_engine, matches):
    benchmark.group = "S2 systems"
    benchmark.name = "BANKS"
    search = BanksSearch(workload_engine.data_graph)
    results = benchmark(lambda: search.search(matches, top_k=10))
    assert results is not None


def test_bidirectional_latency(benchmark, workload_engine, matches):
    benchmark.group = "S2 systems"
    benchmark.name = "bidirectional"
    search = BidirectionalSearch(workload_engine.data_graph)
    results = benchmark(lambda: search.search(matches, top_k=10))
    assert results is not None


def test_recall_relationship(benchmark, workload_engine, matches):
    """MTJNT answer sets are a strict subset of the engine's (the claim)."""
    benchmark.group = "S2 recall"
    benchmark.name = "subset check"

    def compute():
        connections = {
            frozenset(answer.tuple_ids())
            for answer in find_connections(
                workload_engine.data_graph,
                matches,
                SearchLimits(max_rdb_length=3),
            )
            if isinstance(answer, Connection)
        }
        mtjnts = {
            members
            for members in find_mtjnts(
                workload_engine.data_graph, matches, SearchLimits(max_tuples=4)
            )
            # Path-shaped MTJNTs only, for a like-for-like comparison.
            if len(members) <= 4
        }
        return connections, mtjnts

    connections, mtjnts = benchmark(compute)
    path_shaped = {m for m in mtjnts if m in connections}

    global _printed
    if not _printed:
        _printed = True
        print()
        print("S2 recall - loose-aware engine vs MTJNT:")
        print(f"  engine tuple sets:  {len(connections)}")
        print(f"  MTJNT tuple sets:   {len(mtjnts)} "
              f"({len(path_shaped)} path-shaped)")
        assert len(connections) >= len(path_shaped)
        print("  MTJNT ⊆ engine on path-shaped answers -> holds")
