"""Experiment T2: regenerate Table 2 (connections, RDB vs ER length).

Benchmarks the searched part of the table — keyword matching plus
exhaustive connection enumeration for ``Smith XML`` — and asserts the full
nine-row table (searched rows 1-7 plus illustrative rows 8-9) matches the
printed values.
"""

from repro.experiments.report import render_table
from repro.experiments.tables import table2

_printed = False


def test_table2_regeneration(benchmark, company_engine):
    rows = benchmark(lambda: table2(company_engine))

    assert [(row.rdb_length, row.er_length) for row in rows] == [
        (1, 1), (2, 1), (2, 2), (3, 2), (1, 1), (2, 2), (3, 2), (2, 2), (4, 3),
    ]

    global _printed
    if not _printed:
        _printed = True
        print()
        print(
            render_table(
                "Table 2 - connections and their lengths (RDB vs ER)",
                ["#", "connection", "len RDB", "len ER"],
                [
                    [row.number, row.rendered, row.rdb_length, row.er_length]
                    for row in rows
                ],
            )
        )
