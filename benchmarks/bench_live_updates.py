"""Experiment P2 (extension): live updates — incremental apply + answer cache.

Measures the live-update subsystem on planted synthetic workloads:

* **incremental apply vs rebuild-per-batch** — a stream of mutation
  batches applied through ``engine.apply`` (changeset-driven in-place
  maintenance of index/graph/caches) versus the status-quo alternative
  of mutating the database and calling ``engine.rebuild()`` after every
  batch.  Both engines start from identical databases and must answer
  every workload query identically afterwards; the wall-clock ratio is
  the gate (>= 10x).
* **warm answer cache vs cold planning** — the same query workload
  answered twice: cold (cache cleared, full plan + enumerate + rank)
  and warm (dependency-tracked cache hits).  Results must be identical;
  the wall-clock ratio is the gate (>= 5x).
* **mixed read/write stream** — a skewed search stream interleaved with
  mutation batches (``generate_mixed_workload``): every search must
  match a freshly built engine bit for bit, and the cache must both hit
  (skewed re-reads) and invalidate (mutations touching cached
  components).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_live_updates.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_live_updates.py --quick  # CI gate

or through pytest-benchmark like the other benches
(``pytest benchmarks/ -o python_files='bench_*.py'``).
"""

import argparse
import sys
import time

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import SyntheticConfig, generate_company_like
from repro.datasets.workload import (
    MixedWorkloadConfig,
    WorkloadConfig,
    generate_mixed_workload,
    generate_workload,
)
from repro.live.changes import apply_to_database

_LIMITS = SearchLimits(max_rdb_length=4)


def _database(departments, employees=8):
    return generate_company_like(
        SyntheticConfig(
            departments=departments,
            projects_per_department=3,
            employees_per_department=employees,
            works_on_per_employee=2,
            seed=17,
        )
    )


def _workload(database, queries=6):
    return generate_workload(
        database,
        WorkloadConfig(
            queries=queries, keywords_per_query=2, matches_per_keyword=3,
            seed=13,
        ),
    )


def _mutation_batches(database, queries, batches, per_batch, seed=31):
    """Deterministic mutation batches drawn from the mixed generator."""
    stream = generate_mixed_workload(
        database,
        queries,
        MixedWorkloadConfig(
            operations=batches * 4,
            update_ratio=1.0,
            mutations_per_batch=per_batch,
            seed=seed,
        ),
    )
    return [op.mutations for op in stream if op.kind == "apply"][:batches]


def _rendered(results):
    return [(r.render(), r.score, r.rank) for r in results]


def _answers(engine, texts):
    return [_rendered(engine.search(text, limits=_LIMITS)) for text in texts]


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def live_setup():
    database = _database(departments=10)
    queries = _workload(database)
    batches = _mutation_batches(database, queries, batches=6, per_batch=4)
    return database, queries, batches


@pytest.mark.parametrize("mode", ["incremental", "rebuild"])
def test_apply_vs_rebuild(benchmark, live_setup, mode):
    database, queries, batches = live_setup
    benchmark.group = "P2 apply vs rebuild"
    benchmark.name = mode

    def run():
        db = _database(departments=10)
        workload = _workload(db)
        engine = KeywordSearchEngine(db)
        for batch in batches:
            if mode == "incremental":
                engine.apply(batch)
            else:
                apply_to_database(db, batch)
                engine.rebuild()
        return engine, workload

    engine, workload = benchmark(run)
    texts = [query.text for query in workload]
    fresh = KeywordSearchEngine(engine.database)
    assert _answers(engine, texts) == _answers(fresh, texts)


@pytest.mark.parametrize("mode", ["warm", "cold"])
def test_answer_cache(benchmark, live_setup, mode):
    database, queries, __ = live_setup
    engine = KeywordSearchEngine(database)
    texts = [query.text for query in queries]
    benchmark.group = "P2 answer cache"
    benchmark.name = mode
    reference = _answers(engine, texts)

    def run():
        if mode == "cold":
            engine.result_cache.clear()
        return _answers(engine, texts)

    answers = benchmark(run)
    assert answers == reference


# ----------------------------------------------------------------------
# standalone report (CI smoke runs this with --quick)
# ----------------------------------------------------------------------
def _time_apply_loop(departments, batches_spec, incremental):
    database = _database(departments=departments)
    queries = _workload(database)
    batches = _mutation_batches(database, queries, *batches_spec)
    engine = KeywordSearchEngine(database)
    started = time.perf_counter()
    for batch in batches:
        if incremental:
            engine.apply(batch)
        else:
            apply_to_database(database, batch)
            engine.rebuild()
    elapsed = time.perf_counter() - started
    return engine, queries, elapsed


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke runs")
    args = parser.parse_args(argv)

    failures = []
    departments = 12 if args.quick else 20
    batches_spec = (8, 4) if args.quick else (16, 5)

    # -- incremental apply vs rebuild-per-batch -------------------------
    live_engine, queries, incremental_s = _time_apply_loop(
        departments, batches_spec, incremental=True
    )
    rebuilt_engine, __, rebuild_s = _time_apply_loop(
        departments, batches_spec, incremental=False
    )
    ratio = rebuild_s / max(incremental_s, 1e-9)
    texts = [query.text for query in queries]
    live_answers = _answers(live_engine, texts)
    rebuilt_answers = _answers(rebuilt_engine, texts)
    fresh_answers = _answers(
        KeywordSearchEngine(live_engine.database), texts
    )
    identical = live_answers == rebuilt_answers == fresh_answers
    print(f"incremental apply ({live_engine.database.count()} tuples, "
          f"{batches_spec[0]} batches x {batches_spec[1]} mutations):",
          file=out)
    print(f"  incremental {incremental_s * 1e3:8.2f} ms   "
          f"rebuild-per-batch {rebuild_s * 1e3:8.2f} ms   "
          f"speedup {ratio:.1f}x", file=out)
    print(f"  identical to rebuilt and fresh engines: {identical}", file=out)
    if not identical:
        failures.append("apply: live engine diverged from rebuilt engine")
    if ratio < 10.0:
        failures.append(f"apply: incremental speedup {ratio:.1f}x < 10x")

    # -- warm answer cache vs cold planning -----------------------------
    engine = live_engine
    engine.result_cache.clear()
    started = time.perf_counter()
    cold = _answers(engine, texts)
    cold_s = time.perf_counter() - started
    started = time.perf_counter()
    warm = _answers(engine, texts)
    warm_s = time.perf_counter() - started
    cache_ratio = cold_s / max(warm_s, 1e-9)
    hits = engine.result_cache.stats.hits
    print(f"answer cache ({len(texts)} queries):", file=out)
    print(f"  cold {cold_s * 1e3:8.2f} ms   warm {warm_s * 1e3:8.2f} ms   "
          f"speedup {cache_ratio:.1f}x   hits {hits}", file=out)
    if cold != warm:
        failures.append("cache: warm answers diverged from cold answers")
    if hits < len(texts):
        failures.append(f"cache: expected >= {len(texts)} hits, saw {hits}")
    if cache_ratio < 5.0:
        failures.append(f"cache: warm speedup {cache_ratio:.1f}x < 5x")

    # -- mixed read/write stream, differential --------------------------
    database = _database(departments=max(4, departments // 2))
    stream_queries = _workload(database, queries=4)
    engine = KeywordSearchEngine(database)
    stream = generate_mixed_workload(
        database,
        stream_queries,
        MixedWorkloadConfig(
            operations=20 if args.quick else 40,
            update_ratio=0.3,
            mutations_per_batch=3,
            skew=1.2,
            seed=47,
        ),
    )
    searches = applies = 0
    stream_identical = True
    for op in stream:
        if op.kind == "apply":
            engine.apply(op.mutations)
            applies += 1
            continue
        searches += 1
        live = _rendered(engine.search(op.query, limits=_LIMITS))
        oracle = _rendered(
            KeywordSearchEngine(database).search(op.query, limits=_LIMITS)
        )
        if live != oracle:
            stream_identical = False
    stats = engine.result_cache.stats
    print(f"mixed stream: {searches} searches / {applies} mutation batches; "
          f"identical to fresh oracle: {stream_identical}; "
          f"cache {stats.describe()}", file=out)
    if not stream_identical:
        failures.append("stream: live answers diverged from fresh oracle")
    if stats.hits <= 0:
        failures.append("stream: skewed reads produced no cache hits")
    if stats.invalidated <= 0:
        failures.append("stream: mutations never invalidated a cache entry")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=out)
        return 1
    print(f"OK: incremental apply {ratio:.1f}x >= 10x, "
          f"warm cache {cache_ratio:.1f}x >= 5x, "
          f"all answers bit-identical", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
