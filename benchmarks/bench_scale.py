"""Experiment P4 (extension): sharded parallel serving and engine snapshots.

Two gates guard the scale layer (:mod:`repro.scale`):

* **serving throughput** — a multi-tenant synthetic workload (component
  per tenant, keyword matches spread across tenants) answered by
  ``search_batch`` on a plain engine versus the 4-worker parallel path
  (``jobs=4``) over a sharded snapshot.  Gate: **>= 2x**.  The win
  stacks two effects: shard routing skips every cross-component
  enumeration unit (reported as ``shard_skips``), and the dedicated
  snapshot workers execute chunks concurrently — on a single-core CI
  box the routing term dominates; with real cores the parallel term
  multiplies on top.  Answers are asserted identical to the serial run.
* **snapshot open** — ``KeywordSearchEngine.open`` on a saved snapshot
  versus the cold start a serving process otherwise pays: load the raw
  tuples (JSON) and rebuild database, index, graph and compiled CSR
  kernel from scratch.  Gate: **>= 10x**.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scale.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_scale.py --quick  # CI gate
"""

import argparse
import os
import sys
import tempfile
import time

from repro.core.engine import KeywordSearchEngine
from repro.core.search import SearchLimits
from repro.datasets.synthetic import SyntheticConfig, generate_tenants
from repro.datasets.workload import WorkloadConfig, generate_workload
from repro.relational.io import dump_json, load_json

TENANTS = 12
JOBS = 4
LIMITS = SearchLimits(max_rdb_length=4, max_tuples=5)


def _best(callable_, rounds):
    best = None
    for __ in range(rounds):
        started = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _workload(quick):
    config = SyntheticConfig(
        departments=5,
        projects_per_department=4,
        employees_per_department=10,
        works_on_per_employee=3,
        seed=17,
    )
    database = generate_tenants(config, tenants=TENANTS)
    queries = [
        query.text
        for query in generate_workload(
            database,
            WorkloadConfig(
                queries=12 if quick else 18,
                keywords_per_query=3,
                matches_per_keyword=10,
                seed=13,
            ),
        )
    ]
    return database, queries


def _rendered(batches):
    return [[(r.render(), r.score, r.rank) for r in results]
            for results in batches]


def _serving_section(database, queries, rounds, out):
    serial = KeywordSearchEngine(database, result_cache_entries=0)
    serial_s = _best(lambda: serial.search_batch(queries, limits=LIMITS), rounds)
    serial_results = _rendered(serial.search_batch(queries, limits=LIMITS))

    sharded = KeywordSearchEngine(
        database, shards=TENANTS, result_cache_entries=0
    )
    sharded_s = _best(
        lambda: sharded.search_batch(queries, limits=LIMITS), rounds
    )
    skips = sharded.last_stats.shard_skips

    parallel = KeywordSearchEngine(
        database, shards=TENANTS, result_cache_entries=0
    )
    try:
        parallel_results = _rendered(
            parallel.search_batch(queries, limits=LIMITS, jobs=JOBS)
        )  # also warms the worker pool and its caches
        identical = parallel_results == serial_results
        parallel_s = _best(
            lambda: parallel.search_batch(queries, limits=LIMITS, jobs=JOBS),
            rounds,
        )
    finally:
        parallel.close_pool()

    answers = sum(len(results) for results in serial_results)
    print(f"serving workload: {database.count()} tuples over {TENANTS} "
          f"tenant components, {len(queries)} 3-keyword queries -> "
          f"{answers} answers", file=out)
    print(f"  serial (1 proc, unsharded)   {serial_s * 1e3:8.1f} ms/batch",
          file=out)
    print(f"  sharded (1 proc, {TENANTS} shards) {sharded_s * 1e3:8.1f} "
          f"ms/batch   speedup {serial_s / sharded_s:.1f}x   "
          f"({skips} cross-shard units skipped)", file=out)
    print(f"  parallel ({JOBS} snapshot workers) {parallel_s * 1e3:8.1f} "
          f"ms/batch   speedup {serial_s / parallel_s:.1f}x", file=out)
    print(f"  identical results: {identical}", file=out)
    return serial_s / parallel_s, identical


def _snapshot_section(database, queries, rounds, out):
    tmp = tempfile.mkdtemp(prefix="repro-bench-scale-")
    raw_path = os.path.join(tmp, "tuples.json")
    snap_path = os.path.join(tmp, "engine.snap")
    dump_json(database, raw_path)
    writer = KeywordSearchEngine(database, shards=TENANTS)
    writer.save(snap_path)

    def cold_start():
        engine = KeywordSearchEngine(load_json(raw_path))
        engine.traversal_cache.frozen()  # a serving engine compiles anyway
        return engine

    cold_s = _best(cold_start, rounds)
    open_s = _best(lambda: KeywordSearchEngine.open(snap_path), rounds + 2)

    probe = queries[0]
    expected = [
        (r.render(), r.score) for r in writer.search(probe, limits=LIMITS)
    ]

    # Restoration is deliberately lazy (stores, postings, payloads decode
    # on demand), so also time open *plus* the first answered query — the
    # end-to-end serving cold-start — against the same on the cold path.
    def open_and_answer():
        engine = KeywordSearchEngine.open(snap_path)
        return engine, engine.search(probe, limits=LIMITS)

    def cold_and_answer():
        engine = cold_start()
        return engine, engine.search(probe, limits=LIMITS)

    first_cold_s = _best(lambda: cold_and_answer()[1], rounds)
    first_open_s = _best(lambda: open_and_answer()[1], rounds)
    restored, answered = open_and_answer()
    identical = [(r.render(), r.score) for r in answered] == expected

    raw_size = os.path.getsize(raw_path)
    snap_size = os.path.getsize(snap_path)
    print(f"snapshot: {snap_size:,} bytes (raw JSON {raw_size:,} bytes), "
          f"mmap-backed CSR sections", file=out)
    print(f"  cold start (load raw + build) {cold_s * 1e3:8.1f} ms", file=out)
    print(f"  snapshot open                 {open_s * 1e3:8.1f} ms   "
          f"speedup {cold_s / open_s:.1f}x", file=out)
    print(f"  ... + first answered query    cold {first_cold_s * 1e3:8.1f} ms   "
          f"snapshot {first_open_s * 1e3:8.1f} ms   "
          f"speedup {first_cold_s / first_open_s:.1f}x", file=out)
    print(f"  identical results: {identical}", file=out)
    return cold_s / open_s, identical


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke runs")
    args = parser.parse_args(argv)
    rounds = 3 if args.quick else 5

    database, queries = _workload(args.quick)
    failures = []

    serving_ratio, serving_identical = _serving_section(
        database, queries, rounds, out
    )
    if serving_ratio < 2.0:
        failures.append(
            f"serving: {JOBS}-worker batch throughput {serving_ratio:.1f}x "
            f"< 2x over the serial engine"
        )
    if not serving_identical:
        failures.append("serving: parallel answers diverged from serial")

    open_ratio, open_identical = _snapshot_section(
        database, queries, rounds, out
    )
    if open_ratio < 10.0:
        failures.append(
            f"snapshot: open() {open_ratio:.1f}x < 10x over a cold build"
        )
    if not open_identical:
        failures.append("snapshot: restored answers diverged from the writer")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=out)
        return 1
    print(f"OK: parallel serving {serving_ratio:.1f}x >= 2x, "
          f"snapshot open {open_ratio:.1f}x >= 10x, answers bit-identical",
          file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
