"""Experiment P1 (extension): query pipeline — top-k pushdown and plan sharing.

Measures the planner/executor pipeline against full enumerate-sort-cut
on planted synthetic workloads:

* **top-k pushdown, connections** — two-keyword queries with ``top_k``;
  the executor's generalized ranker-lower-bound termination
  (``pushdown``, the default) versus forced full enumeration
  (``pushdown=False``), compared on the engine's enumeration counters
  (``last_stats.candidates``: answers constructed and scored).  Both
  modes must return bit-identical results; the counter ratio is the
  deterministic speedup gate (>= 2x).
* **top-k pushdown, joining networks** — three-keyword queries under the
  RDB-length ranker (the closeness bound starts at zero loose joints,
  so it cannot terminate workloads whose best networks are loose —
  correctness holds either way, the counters just show no skip).
* **batch plan sharing** — ``search_batch`` over a workload containing
  distinct query texts with identical enumeration sub-plans (case
  variants and overlapping keyword subsets): shared streams must fan
  out (``last_shared.hits > 0``) and answers must equal per-query
  ``search`` calls.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_pipeline.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick  # CI gate

or through pytest-benchmark like the other benches
(``pytest benchmarks/ -o python_files='bench_*.py'``).
"""

import argparse
import sys
import time

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.ranking import RdbLengthRanker
from repro.core.search import SearchLimits
from repro.datasets.synthetic import SyntheticConfig, generate_company_like
from repro.datasets.workload import WorkloadConfig, generate_workload

_TOP_K = 3


def _database(departments, employees=8, works_on=3):
    return generate_company_like(
        SyntheticConfig(
            departments=departments,
            projects_per_department=3,
            employees_per_department=employees,
            works_on_per_employee=works_on,
            seed=17,
        )
    )


def _texts(database, queries, keywords=2, matches=3):
    workload = generate_workload(
        database,
        WorkloadConfig(
            queries=queries,
            keywords_per_query=keywords,
            matches_per_keyword=matches,
            seed=13,
        ),
    )
    return [query.text for query in workload]


def _rendered(results):
    return [(r.render(), r.score, r.rank) for r in results]


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def pushdown_setup():
    database = _database(departments=15)
    texts = _texts(database, queries=4)
    # The engine-level answer cache would serve repeated timed rounds
    # from memory; this bench measures the pipeline, so disable it.
    engine = KeywordSearchEngine(database, result_cache_entries=0)
    return engine, texts, SearchLimits(max_rdb_length=7)


@pytest.mark.parametrize("mode", ["pushdown", "full"])
def test_topk_connections(benchmark, pushdown_setup, mode):
    engine, texts, limits = pushdown_setup
    benchmark.group = "P1 top-k connections"
    benchmark.name = mode
    pushdown = None if mode == "pushdown" else False
    results = benchmark(
        lambda: [
            engine.search(text, top_k=_TOP_K, limits=limits, pushdown=pushdown)
            for text in texts
        ]
    )
    reference = [
        engine.search(text, top_k=_TOP_K, limits=limits, pushdown=False)
        for text in texts
    ]
    assert [_rendered(r) for r in results] == [_rendered(r) for r in reference]


@pytest.mark.parametrize("mode", ["shared", "sequential"])
def test_batch_plan_sharing(benchmark, pushdown_setup, mode):
    engine, texts, limits = pushdown_setup
    batch = texts + [text.upper() for text in texts]
    benchmark.group = "P1 batch plan sharing"
    benchmark.name = mode
    if mode == "shared":
        batched = benchmark(lambda: engine.search_batch(batch, limits=limits))
    else:
        batched = benchmark(
            lambda: [engine.search(text, limits=limits) for text in batch]
        )
    assert len(batched) == len(batch)


# ----------------------------------------------------------------------
# standalone report (CI smoke runs this with --quick)
# ----------------------------------------------------------------------
def _sweep(engine, texts, limits, ranker=None, top_k=_TOP_K):
    """Run a workload in both modes; return (identical, counters, times)."""
    pushed_candidates = full_candidates = 0
    identical = True
    started = time.perf_counter()
    pushed = []
    for text in texts:
        pushed.append(
            engine.search(text, top_k=top_k, limits=limits, ranker=ranker)
        )
        assert engine.last_stats.pushdown
        pushed_candidates += engine.last_stats.candidates
    pushed_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    for text, pushed_results in zip(texts, pushed):
        full_results = engine.search(
            text, top_k=top_k, limits=limits, ranker=ranker, pushdown=False
        )
        full_candidates += engine.last_stats.candidates
        if _rendered(full_results) != _rendered(pushed_results):
            identical = False
    full_elapsed = time.perf_counter() - started
    return identical, pushed_candidates, full_candidates, pushed_elapsed, full_elapsed


def _report(name, sweep, out):
    identical, pushed, full, pushed_s, full_s = sweep
    ratio = full / max(pushed, 1)
    print(f"{name}:", file=out)
    print(f"  pushdown {pushed:6d} candidates  {pushed_s * 1e3:8.2f} ms", file=out)
    print(f"  full     {full:6d} candidates  {full_s * 1e3:8.2f} ms", file=out)
    print(f"  identical results: {identical}   "
          f"enumeration skipped: {full - pushed} ({ratio:.1f}x)", file=out)
    return identical, ratio


def main(argv=None, out=None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke runs")
    args = parser.parse_args(argv)

    failures = []

    # -- top-k pushdown on connections (the gated workload) -------------
    departments = 15 if args.quick else 30
    queries = 4 if args.quick else 6
    database = _database(departments=departments)
    texts = _texts(database, queries=queries)
    engine = KeywordSearchEngine(database, result_cache_entries=0)
    limits = SearchLimits(max_rdb_length=7)
    identical, ratio = _report(
        f"connections top-{_TOP_K} ({database.count()} tuples, "
        f"{len(texts)} queries)",
        _sweep(engine, texts, limits),
        out,
    )
    if not identical:
        failures.append("connections: pushdown diverged from full enumeration")
    if ratio < 2.0:
        failures.append(
            f"connections: enumeration ratio {ratio:.1f}x < 2x"
        )

    # -- top-k pushdown on joining networks -----------------------------
    network_db = _database(departments=10, employees=6, works_on=2)
    network_texts = _texts(network_db, queries=3, keywords=3)
    network_engine = KeywordSearchEngine(network_db, result_cache_entries=0)
    network_limits = SearchLimits(max_tuples=6 if args.quick else 7)
    identical, __ = _report(
        f"networks top-{_TOP_K} rdb-length ({network_db.count()} tuples, "
        f"{len(network_texts)} queries)",
        _sweep(network_engine, network_texts, network_limits,
               ranker=RdbLengthRanker()),
        out,
    )
    if not identical:
        failures.append("networks: pushdown diverged from full enumeration")

    # -- OR semantics through the same pushdown -------------------------
    or_texts = [f"{texts[0]} {texts[1].split()[0]}", texts[0]]
    or_identical = all(
        _rendered(
            engine.search(text, top_k=_TOP_K, limits=limits, semantics="or")
        )
        == _rendered(
            engine.search(text, top_k=_TOP_K, limits=limits, semantics="or",
                          pushdown=False)
        )
        for text in or_texts
    )
    print(f"OR semantics identical under pushdown: {or_identical}", file=out)
    if not or_identical:
        failures.append("or: pushdown diverged from full enumeration")

    # -- batch plan sharing ---------------------------------------------
    batch = texts + [text.upper() for text in texts]
    started = time.perf_counter()
    batched = engine.search_batch(batch, limits=limits)
    batch_elapsed = time.perf_counter() - started
    shared_hits = engine.last_shared.hits
    started = time.perf_counter()
    sequential = [engine.search(text, limits=limits) for text in batch]
    sequential_elapsed = time.perf_counter() - started
    batch_identical = [_rendered(r) for r in batched] == [
        _rendered(r) for r in sequential
    ]
    print(f"batch plan sharing ({len(batch)} queries, "
          f"{len(set(batch))} distinct texts):", file=out)
    print(f"  shared sub-plan hits {shared_hits}   "
          f"batch {batch_elapsed * 1e3:8.2f} ms   "
          f"sequential {sequential_elapsed * 1e3:8.2f} ms", file=out)
    print(f"  identical results: {batch_identical}", file=out)
    if not batch_identical:
        failures.append("batch: shared execution diverged from sequential")
    if shared_hits <= 0:
        failures.append("batch: no enumeration sub-plans were shared")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=out)
        return 1
    print(f"OK: pushdown ratio {ratio:.1f}x >= 2x, "
          f"{shared_hits} sub-plans shared, all modes bit-identical", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
