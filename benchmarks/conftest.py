"""Shared fixtures for the benchmark harness.

Every benchmark regenerates a paper artefact (Tables 1-3, Figures 1-2, the
two §3 claims) or sweeps an extension experiment (scalability, baseline
comparison, ranking ablation).  Benchmarks print the regenerated artefact
once per session so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction report; EXPERIMENTS.md records the same content.
"""

from __future__ import annotations

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.company import build_company_database
from repro.datasets.synthetic import SyntheticConfig, generate_company_like, plant


@pytest.fixture(scope="session")
def company_engine():
    return KeywordSearchEngine(build_company_database())


def sized_engine(scale: int, seed: int = 17) -> KeywordSearchEngine:
    """A planted synthetic engine with roughly ``scale`` tuples."""
    departments = max(1, scale // 20)
    config = SyntheticConfig(
        departments=departments,
        projects_per_department=3,
        employees_per_department=10,
        works_on_per_employee=2,
        dependents_per_employee=0.4,
        seed=seed,
    )
    database = generate_company_like(config)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION",
          min(2, database.count("DEPARTMENT")), seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME",
          min(3, database.count("EMPLOYEE")), seed=2)
    return KeywordSearchEngine(database)
