"""Experiment F2: Figure 2's instance — load, integrity, keyword matches.

Benchmarks instance construction with integrity checking plus the keyword
matches the paper states ("Smith" -> e1/e2, "XML" -> d1/d2/p1/p2).
"""

from repro.experiments.figures import figure2
from repro.experiments.report import render_table

_printed = False


def test_figure2_regeneration(benchmark):
    result = benchmark(figure2)

    assert set(result.smith_labels) == {"e1", "e2"}
    assert set(result.xml_labels) == {"d1", "d2", "p1", "p2"}

    global _printed
    if not _printed:
        _printed = True
        print()
        print(
            render_table(
                "Figure 2 - database instance",
                ["relation", "tuples"],
                sorted(result.tuple_counts.items()),
            )
        )
        print(f"'Smith' matches: {', '.join(result.smith_labels)}")
        print(f"'XML' matches:   {', '.join(result.xml_labels)}")
