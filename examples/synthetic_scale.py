"""Search quality and cost on synthetic databases of growing size.

Generates company-shaped databases at several scales, plants a two-keyword
workload with fixed selectivity, and reports per scale: tuple counts,
answer counts for the loose-aware engine vs MTJNT semantics, and wall-clock
timings.  The MTJNT column is always <= the engine column - the paper's
loss phenomenon at scale.

    python examples/synthetic_scale.py
"""

import time

from repro import KeywordSearchEngine, SearchLimits
from repro.baselines.discover import find_mtjnts
from repro.core.connections import Connection
from repro.core.matching import match_keywords
from repro.core.search import find_connections
from repro.datasets.synthetic import SyntheticConfig, generate_company_like, plant
from repro.experiments.report import render_table


def run_scale(departments: int) -> list:
    config = SyntheticConfig(
        departments=departments,
        projects_per_department=3,
        employees_per_department=8,
        works_on_per_employee=2,
        seed=23,
    )
    database = generate_company_like(config)
    plant(database, "kwalpha", "DEPARTMENT", "D_DESCRIPTION",
          min(2, database.count("DEPARTMENT")), seed=1)
    plant(database, "kwbeta", "EMPLOYEE", "L_NAME",
          min(3, database.count("EMPLOYEE")), seed=2)

    engine = KeywordSearchEngine(database)
    matches = match_keywords(engine.index, ("kwalpha", "kwbeta"))

    started = time.perf_counter()
    connections = [
        answer
        for answer in find_connections(
            engine.data_graph, matches, SearchLimits(max_rdb_length=3)
        )
        if isinstance(answer, Connection)
    ]
    engine_seconds = time.perf_counter() - started

    started = time.perf_counter()
    mtjnts = find_mtjnts(engine.data_graph, matches, SearchLimits(max_tuples=4))
    mtjnt_seconds = time.perf_counter() - started

    close = sum(1 for c in connections if c.verdict().is_close)
    return [
        database.count(),
        len(connections),
        close,
        len(connections) - close,
        len(mtjnts),
        f"{engine_seconds * 1000:.1f}",
        f"{mtjnt_seconds * 1000:.1f}",
    ]


def main() -> None:
    rows = []
    for departments in (2, 5, 10, 20):
        rows.append([departments] + run_scale(departments))
    print(render_table(
        "Loose-aware engine vs MTJNT across scales (query kwalpha kwbeta)",
        ["depts", "tuples", "answers", "close", "loose", "MTJNTs",
         "engine ms", "MTJNT ms"],
        rows,
    ))
    print()
    print("MTJNT count never exceeds the engine's answer count: minimality")
    print("discards the loose (but often informative) connections.")


if __name__ == "__main__":
    main()
