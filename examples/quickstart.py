"""Quickstart: keyword search with close/loose-aware ranking.

Runs the paper's query ``Smith XML`` on its running example database and
prints the ranked, explained answers.

    python examples/quickstart.py
"""

from repro import KeywordSearchEngine, SearchLimits, build_company_database


def main() -> None:
    database = build_company_database()
    engine = KeywordSearchEngine(database)

    print("Database:", ", ".join(
        f"{relation.name}({database.count(relation.name)})"
        for relation in database.schema.relations
    ))

    query = "Smith XML"
    print(f"\nQuery: {query!r}\n")
    results = engine.search(query, limits=SearchLimits(max_rdb_length=3))
    for result in results:
        print(engine.explain(result))
        print()


if __name__ == "__main__":
    main()
