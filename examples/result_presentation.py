"""Result presentation: the paper's §4 "user could select longer paths".

Runs the paper's query, then shows the three presentation tools the
library derives from §4: closeness grouping, the larger-context selector,
instance-level filtering — plus OR semantics and role-qualified keywords.

    python examples/result_presentation.py
"""

from repro import (
    KeywordSearchEngine,
    SearchLimits,
    build_company_database,
    group_results,
    larger_context,
)
from repro.core.presentation import filter_instance_close


def main() -> None:
    engine = KeywordSearchEngine(build_company_database())
    limits = SearchLimits(max_rdb_length=3)

    print("Query: 'XML Smith' (paper running example)\n")
    results = engine.search("XML Smith", limits=limits)

    print("--- grouped presentation (paper §4) ---")
    for group in group_results(results):
        print(group.describe())
        print()

    print("--- 'larger context' selector ---")
    print("Longer answers that do not lose the close association:")
    for result in larger_context(results):
        answer = result.answer
        print(f"  {answer.render()}   (er length {answer.er_length})")
    print()

    print("--- instance-level filter ---")
    print("Answers whose association is corroborated by the data:")
    for result in filter_instance_close(results):
        print(f"  {result.answer.render()}")
    print()

    print("--- OR semantics ---")
    print("Query 'XML Scandinavian' under OR (Scandinavian only matches d3,")
    print("which joins nothing — AND semantics would return nothing at all):")
    for result in engine.search("XML Scandinavian", semantics="or", limits=limits):
        covered = int(-result.score[0])
        print(f"  covers {covered} keyword(s): {result.answer.render()}")
    print()

    print("--- role-qualified keywords (MeanKS-style) ---")
    print("Query 'Smith XML@PROJECT' pins XML to project tuples:")
    for result in engine.search("Smith XML@PROJECT", limits=limits):
        print(f"  {result.answer.render()}")


if __name__ == "__main__":
    main()
