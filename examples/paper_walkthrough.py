"""Full paper walkthrough: regenerate every table, figure and claim.

Reproduces, in order: Figure 1 (ER schema -> Figure 2's relational
schema), Figure 2 (the instance), Table 1 (relationship classification),
Tables 2 and 3 (connections with lengths and cardinalities), the MTJNT
loss claim, and the ranking comparison.

    python examples/paper_walkthrough.py
"""

from repro.experiments import (
    figure1,
    figure2,
    mtjnt_loss,
    ranking_comparison,
    render_table,
    table1,
    table2,
    table3,
)
from repro.experiments.figures import figure2_text


def main() -> None:
    print("=" * 72)
    print("Figure 1: ER schema (and its mapping onto Figure 2's schema)")
    print("=" * 72)
    result = figure1()
    print(result.description)
    print("\nmapped relational schema:")
    print(result.mapped_schema.describe())

    print()
    print("=" * 72)
    print("Figure 2: database instance")
    print("=" * 72)
    instance = figure2()
    print(figure2_text(instance.database))
    print()
    print(f"'Smith' matches: {', '.join(instance.smith_labels)}")
    print(f"'XML'   matches: {', '.join(instance.xml_labels)}")

    print()
    print("=" * 72)
    print("Table 1: relationships and their cardinalities")
    print("=" * 72)
    print(render_table(
        "",
        ["#", "relationship", "cardinality", "verdict"],
        [
            [
                row.number,
                row.entities,
                row.cardinalities,
                f"{row.kind.value} ({'close' if row.is_close else 'loose'})",
            ]
            for row in table1()
        ],
    ))

    print()
    print("=" * 72)
    print("Table 2: connections and lengths (RDB vs ER)")
    print("=" * 72)
    print(render_table(
        "",
        ["#", "connection", "len RDB", "len ER"],
        [[r.number, r.rendered, r.rdb_length, r.er_length] for r in table2()],
    ))

    print()
    print("=" * 72)
    print("Table 3: connections with relationship cardinalities")
    print("=" * 72)
    print(render_table(
        "",
        ["#", "connection with relationships"],
        [[r.number, r.rendered] for r in table3()],
    ))

    print()
    print("=" * 72)
    print("Claim 1: MTJNT loses connections")
    print("=" * 72)
    loss = mtjnt_loss()
    print(f"MTJNTs: connections {loss.mtjnt_rows} "
          f"({loss.mtjnt_count} networks)")
    print(f"lost:   connections {loss.lost_rows} "
          "(paper: 'connections 3, 4, 6 and 7 are lost')")

    print()
    print("=" * 72)
    print("Claim 2: ranking comparison")
    print("=" * 72)
    ranking = ranking_comparison()
    print(f"by RDB length: {ranking.rdb_order} "
          f"(best {ranking.rdb_best}, worst {ranking.rdb_worst})")
    print(f"by closeness:  {ranking.closeness_order} "
          f"(best {ranking.closeness_best}, worst {ranking.closeness_worst})")
    print("\nEvery artefact regenerated and verified against the paper.")


if __name__ == "__main__":
    main()
