"""Bring your own schema: a bibliography database from scratch.

Shows the full API surface on a new domain: define an ER schema, map it to
relations, load an instance, reverse-engineer the conceptual view back, and
run close/loose-aware keyword search - including a transitive-N:M joint
(two papers associated only through a shared venue).

    python examples/build_your_own.py
"""

from repro import Cardinality, KeywordSearchEngine, SearchLimits
from repro.core.ambiguity import is_instance_close
from repro.core.connections import Connection
from repro.er.mapping import map_er_to_relational
from repro.er.model import Attribute, EntityType, ERSchema, RelationshipType
from repro.er.reverse import detect_middle_relations
from repro.relational.database import Database


def build_schema() -> ERSchema:
    schema = ERSchema(name="bibliography")
    schema.add_entity_type(
        EntityType(
            "VENUE",
            [Attribute("ID", is_key=True), Attribute("NAME"),
             Attribute("SCOPE", is_text=True)],
        )
    )
    schema.add_entity_type(
        EntityType(
            "PAPER",
            [Attribute("ID", is_key=True), Attribute("TITLE", is_text=True)],
        )
    )
    schema.add_entity_type(
        EntityType(
            "AUTHOR",
            [Attribute("ID", is_key=True), Attribute("NAME")],
        )
    )
    # A paper appears in one venue; an author writes many papers and a
    # paper has many authors.
    schema.add_relationship(
        RelationshipType("APPEARS_IN", "VENUE", "PAPER", Cardinality.parse("1:N"))
    )
    schema.add_relationship(
        RelationshipType("WRITES", "AUTHOR", "PAPER", Cardinality.parse("N:M"))
    )
    schema.validate()
    return schema


def load_instance(database: Database) -> None:
    database.enforce_foreign_keys = False
    database.insert("VENUE", {"ID": "v1", "NAME": "EDBT",
                              "SCOPE": "databases and keyword search"})
    database.insert("VENUE", {"ID": "v2", "NAME": "SIGIR",
                              "SCOPE": "information retrieval"})
    database.insert("PAPER", {"ID": "pa1", "TITLE": "Loose associations in search",
                              "VENUE_ID": "v1"})
    database.insert("PAPER", {"ID": "pa2", "TITLE": "Ranking joining networks",
                              "VENUE_ID": "v1"})
    database.insert("PAPER", {"ID": "pa3", "TITLE": "Query expansion revisited",
                              "VENUE_ID": "v2"})
    database.insert("AUTHOR", {"ID": "a1", "NAME": "Vainio"})
    database.insert("AUTHOR", {"ID": "a2", "NAME": "Junkkari"})
    database.insert("WRITES", {"AUTHOR_ID": "a1", "PAPER_ID": "pa1"})
    database.insert("WRITES", {"AUTHOR_ID": "a2", "PAPER_ID": "pa1"})
    database.insert("WRITES", {"AUTHOR_ID": "a2", "PAPER_ID": "pa2"})
    database.check_integrity()
    database.enforce_foreign_keys = True


def main() -> None:
    er_schema = build_schema()
    print(er_schema.describe())

    mapping = map_er_to_relational(
        er_schema,
        column_names={
            "APPEARS_IN": "VENUE_ID",
            "WRITES.AUTHOR": "AUTHOR_ID",
            "WRITES.PAPER": "PAPER_ID",
        },
    )
    print("\nmapped relational schema:")
    print(mapping.schema.describe())
    print("\ndetected middle relations:",
          ", ".join(detect_middle_relations(mapping.schema)))

    database = Database(mapping.schema)
    load_instance(database)
    engine = KeywordSearchEngine(database)

    query = "Vainio ranking"
    print(f"\nQuery: {query!r}")
    results = engine.search(query, limits=SearchLimits(max_rdb_length=4))
    for result in results:
        print()
        print(engine.explain(result))

    # The connection Vainio -> pa1 -> v1 <- pa2 runs through a loose joint
    # at the venue... but here pa1/pa2 share an author too; check it.
    print("\nInstance-level analysis of loose answers:")
    for result in results:
        answer = result.answer
        if isinstance(answer, Connection) and answer.verdict().is_loose:
            level = "close" if is_instance_close(answer) else "loose"
            print(f"  {answer.render()}  ->  instance {level}")


if __name__ == "__main__":
    main()
