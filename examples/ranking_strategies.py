"""Compare all ranking strategies side by side on the paper's example.

Shows how the same seven connections reorder under the four strategies the
library implements: the traditional RDB length, the conceptual ER length,
the paper's closeness-first proposal, and the instance-ambiguity
refinement from the paper's future work.

    python examples/ranking_strategies.py
"""

from repro import (
    ClosenessRanker,
    ErLengthRanker,
    InstanceAmbiguityRanker,
    KeywordSearchEngine,
    RdbLengthRanker,
    SearchLimits,
    build_company_database,
)
from repro.core.ranking import rank_connections
from repro.experiments.report import render_table
from repro.experiments.tables import paper_connections


def main() -> None:
    engine = KeywordSearchEngine(build_company_database())
    connections = paper_connections(engine)
    searched = {number: connections[number] for number in range(1, 8)}
    reverse = {connection: number for number, connection in searched.items()}

    rankers = [
        RdbLengthRanker(),
        ErLengthRanker(),
        ClosenessRanker(),
        InstanceAmbiguityRanker(),
    ]

    rows = []
    for number in range(1, 8):
        connection = searched[number]
        rows.append(
            [
                number,
                connection.render(),
                connection.rdb_length,
                connection.er_length,
                connection.verdict().loose_joint_count,
            ]
        )
    print(render_table(
        "The seven searched connections of 'Smith XML'",
        ["#", "connection", "rdb", "er", "joints"],
        rows,
    ))

    print()
    order_rows = []
    for ranker in rankers:
        ranked = rank_connections(list(searched.values()), ranker)
        order = [reverse[answer] for answer, __ in ranked]
        order_rows.append([ranker.name, " > ".join(str(n) for n in order)])
    print(render_table(
        "Connection order per strategy (best first)",
        ["strategy", "order"],
        order_rows,
    ))

    print()
    print("Reading the orders:")
    print(" * rdb-length ranks the informative connections 4 and 7 last;")
    print(" * closeness promotes them over the loose 3 and 6 (the paper's")
    print("   proposal), keeping 1, 2, 5 on top;")
    print(" * instance-ambiguity additionally separates 3 (joint touches")
    print("   1x2 tuples) from 6 (joint touches 2x2 tuples).")


if __name__ == "__main__":
    main()
