"""Unit tests for tokenisation and the inverted index."""

import pytest

from repro.relational.index import InvertedIndex, tokenize


class TestTokenize:
    def test_simple_words(self):
        assert tokenize("Different data models") == ["different", "data", "models"]

    def test_punctuation_stripped(self):
        assert tokenize("retrieval and XML.") == ["retrieval", "and", "xml"]

    def test_hyphenated_compound_and_parts(self):
        tokens = tokenize("DB-project")
        assert tokens == ["db-project", "db", "project"]

    def test_underscore_compound(self):
        tokens = tokenize("works_for")
        assert "works_for" in tokens
        assert "works" in tokens
        assert "for" in tokens

    def test_numbers(self):
        assert tokenize("room 42") == ["room", "42"]

    def test_empty(self):
        assert tokenize("") == []

    def test_case_folding(self):
        assert tokenize("XML and Xml") == ["xml", "and", "xml"]


class TestMatching:
    def test_smith_matches_two_employees(self, index, company_db):
        labels = {company_db.tuple(t).label for t in index.matching_tuples("Smith")}
        assert labels == {"e1", "e2"}

    def test_xml_matches_departments_and_projects(self, index, company_db):
        labels = {company_db.tuple(t).label for t in index.matching_tuples("XML")}
        assert labels == {"d1", "d2", "p1", "p2"}

    def test_match_is_case_insensitive(self, index):
        assert index.matching_tuples("xml") == index.matching_tuples("XML")

    def test_word_inside_text_attribute(self, index, company_db):
        labels = {
            company_db.tuple(t).label for t in index.matching_tuples("databases")
        }
        assert labels == {"d1"}

    def test_whole_value_match(self, index, company_db):
        postings = index.postings("Cs")
        assert any(p.whole_value for p in postings)

    def test_word_match_not_whole_value(self, index):
        postings = [p for p in index.postings("xml") if p.attribute == "D_DESCRIPTION"]
        assert postings
        assert all(not p.whole_value for p in postings)

    def test_multiword_value_matches_as_whole(self, index, company_db):
        # P_NAME 'XML and IR' is matchable as one whole value.
        postings = index.postings("xml and ir")
        assert len(postings) == 1
        assert postings[0].whole_value

    def test_no_match(self, index):
        assert index.matching_tuples("quantum") == ()
        assert "quantum" not in index

    def test_contains(self, index):
        assert "xml" in index
        assert "XML " in index  # stripped and lowered

    def test_document_frequency(self, index):
        assert index.document_frequency("xml") == 4
        assert index.document_frequency("smith") == 2
        assert index.document_frequency("nothing") == 0

    def test_matched_attribute_provenance(self, index):
        attributes = {p.attribute for p in index.postings("xml")}
        assert attributes == {"D_DESCRIPTION", "P_NAME", "P_DESCRIPTION"}

    def test_numbers_are_matchable(self, index, company_db):
        labels = {company_db.tuple(t).label for t in index.matching_tuples("40")}
        assert labels == {"w_f1"}


class TestMaintenance:
    def test_add_tuple_after_insert(self, company_db, index):
        record = company_db.insert(
            "EMPLOYEE",
            {"SSN": "e9", "L_NAME": "Zubrowka", "S_NAME": "Ada", "D_ID": "d3"},
        )
        index.add_tuple(record)
        assert index.document_frequency("zubrowka") == 1

    def test_add_tuple_is_idempotent(self, company_db, index):
        record = company_db.get("EMPLOYEE", "e1")
        index.add_tuple(record)
        assert index.document_frequency("smith") == 2

    def test_remove_tuple(self, company_db, index):
        record = company_db.get("EMPLOYEE", "e2")
        index.remove_tuple(record.tid)
        assert index.document_frequency("smith") == 1
        assert index.document_frequency("barbara") == 0

    def test_remove_unknown_is_noop(self, company_db, index):
        before = len(index.vocabulary())
        from repro.relational.database import TupleId

        index.remove_tuple(TupleId("EMPLOYEE", ("e99",)))
        assert len(index.vocabulary()) == before

    def test_rebuild_restores_state(self, company_db, index):
        record = company_db.get("EMPLOYEE", "e2")
        index.remove_tuple(record.tid)
        index.build()
        assert index.document_frequency("smith") == 2

    def test_vocabulary_sorted(self, index):
        vocabulary = index.vocabulary()
        assert list(vocabulary) == sorted(vocabulary)

    def test_null_values_not_indexed(self, db_schema):
        from repro.relational.database import Database

        database = Database(db_schema)
        database.insert("DEPARTMENT", {"ID": "dx"})
        index = InvertedIndex(database)
        assert index.document_frequency("dx") == 1  # only the key itself


class TestIncrementalRoundTrip:
    """remove_tuple + add_tuple must leave the index equal to a fresh
    build() — posting order included (the live subsystem relies on it)."""

    def equal_to_fresh(self, index, database):
        fresh = InvertedIndex(database)
        if index.vocabulary() != fresh.vocabulary():
            return False
        return all(
            index.postings(token) == fresh.postings(token)
            for token in fresh.vocabulary()
        )

    def test_remove_readd_company(self, company_db, index):
        import random

        rng = random.Random(7)
        records = list(company_db.all_tuples())
        for record in rng.sample(records, 8):
            index.remove_tuple(record.tid)
            index.add_tuple(record)
            assert self.equal_to_fresh(index, company_db)

    def test_remove_readd_random_synthetic(self, small_synthetic):
        import random

        rng = random.Random(23)
        index = InvertedIndex(small_synthetic)
        records = list(small_synthetic.all_tuples())
        # Remove a random block, then re-add in a shuffled order.
        block = rng.sample(records, 10)
        for record in block:
            index.remove_tuple(record.tid)
        rng.shuffle(block)
        for record in block:
            index.add_tuple(record)
        assert self.equal_to_fresh(index, small_synthetic)

    def test_incremental_add_after_database_insert(self, company_db, index):
        record = company_db.insert(
            "DEPENDENT", {"ID": "t9", "ESSN": "e1", "DEPENDENT_NAME": "Smith"}
        )
        index.add_tuple(record)
        assert self.equal_to_fresh(index, company_db)
        assert index.document_frequency("smith") == 3

    def test_incremental_remove_after_database_delete(self, company_db, index):
        from repro.relational.database import TupleId

        tid = TupleId("DEPENDENT", ("t1",))
        company_db.delete(tid)
        index.remove_tuple(tid)
        assert self.equal_to_fresh(index, company_db)
