"""Unit tests for the query operators."""

import pytest

from repro.errors import QueryError
from repro.relational.query import fk_join, join_pairs, joinable, project, select


class TestSelect:
    def test_equality_selection(self, company_db):
        smiths = select(company_db, "EMPLOYEE", L_NAME="Smith")
        assert sorted(t.label for t in smiths) == ["e1", "e2"]

    def test_predicate_selection(self, company_db):
        heavy = select(
            company_db, "WORKS_FOR", predicate=lambda t: t["HOURS"] > 55
        )
        assert sorted(t.label for t in heavy) == ["w_f2", "w_f3", "w_f4"]

    def test_predicate_and_equality_combine(self, company_db):
        rows = select(
            company_db,
            "EMPLOYEE",
            predicate=lambda t: t["S_NAME"] == "John",
            L_NAME="Smith",
        )
        assert [t.label for t in rows] == ["e1"]

    def test_unknown_attribute_rejected(self, company_db):
        with pytest.raises(QueryError):
            select(company_db, "EMPLOYEE", NOPE="x")

    def test_empty_result(self, company_db):
        assert select(company_db, "EMPLOYEE", L_NAME="Nobody") == []


class TestJoinable:
    def test_direct_reference(self, company_db):
        e1 = company_db.get("EMPLOYEE", "e1")
        d1 = company_db.get("DEPARTMENT", "d1")
        fk = joinable(company_db, e1, d1)
        assert fk is not None
        assert fk.name == "fk_employee_department"

    def test_symmetric(self, company_db):
        e1 = company_db.get("EMPLOYEE", "e1")
        d1 = company_db.get("DEPARTMENT", "d1")
        assert joinable(company_db, d1, e1) is not None

    def test_unjoined_tuples(self, company_db):
        e1 = company_db.get("EMPLOYEE", "e1")
        d2 = company_db.get("DEPARTMENT", "d2")
        assert joinable(company_db, e1, d2) is None

    def test_unrelated_relations(self, company_db):
        e1 = company_db.get("EMPLOYEE", "e1")
        p1 = company_db.get("PROJECT", "p1")
        assert joinable(company_db, e1, p1) is None  # only via WORKS_FOR


class TestFkJoin:
    def test_join_along_fk(self, company_db):
        fk = company_db.schema.foreign_key("fk_employee_department")
        pairs = list(fk_join(company_db, company_db.tuples("EMPLOYEE"), fk))
        assert len(pairs) == 4
        assert all(right.relation == "DEPARTMENT" for __, right in pairs)

    def test_null_reference_skipped(self, company_db):
        record = company_db.insert(
            "EMPLOYEE", {"SSN": "e9", "L_NAME": "X", "S_NAME": "Y"}
        )
        fk = company_db.schema.foreign_key("fk_employee_department")
        pairs = list(fk_join(company_db, [record], fk))
        assert pairs == []

    def test_wrong_source_relation_rejected(self, company_db):
        fk = company_db.schema.foreign_key("fk_employee_department")
        with pytest.raises(QueryError):
            list(fk_join(company_db, company_db.tuples("PROJECT"), fk))


class TestJoinPairs:
    def test_both_directions(self, company_db):
        pairs = list(join_pairs(company_db, "DEPARTMENT", "EMPLOYEE"))
        assert len(pairs) == 4
        assert all(left.relation == "DEPARTMENT" for left, __, __ in pairs)

    def test_middle_relation_joins(self, company_db):
        pairs = list(join_pairs(company_db, "WORKS_FOR", "PROJECT"))
        assert len(pairs) == 4

    def test_non_adjacent_yields_nothing(self, company_db):
        assert list(join_pairs(company_db, "DEPARTMENT", "DEPENDENT")) == []


class TestProject:
    def test_projection(self, company_db):
        rows = project(company_db.tuples("EMPLOYEE"), ["SSN", "L_NAME"])
        assert rows[0] == {"SSN": "e1", "L_NAME": "Smith"}

    def test_unknown_attribute_rejected(self, company_db):
        with pytest.raises(QueryError):
            project(company_db.tuples("EMPLOYEE"), ["NOPE"])
