"""Unit tests for JSON/CSV persistence."""

import pytest

from repro.errors import ForeignKeyError, SchemaError
from repro.relational.io import (
    database_from_dict,
    database_to_dict,
    dump_csv_dir,
    dump_json,
    load_csv_dir,
    load_json,
    schema_from_dict,
    schema_to_dict,
)


class TestSchemaRoundTrip:
    def test_round_trip_structure(self, db_schema):
        recovered = schema_from_dict(schema_to_dict(db_schema))
        assert {r.name for r in recovered.relations} == {
            r.name for r in db_schema.relations
        }
        assert recovered.relation("WORKS_FOR").is_middle
        assert recovered.relation("WORKS_FOR").implements_relationship == "WORKS_ON"

    def test_round_trip_foreign_keys(self, db_schema):
        recovered = schema_from_dict(schema_to_dict(db_schema))
        assert len(recovered.foreign_keys) == len(db_schema.foreign_keys)
        fk = recovered.foreign_key("fk_works_for_employee")
        assert fk.source_columns == ("ESSN",)

    def test_round_trip_types(self, db_schema):
        recovered = schema_from_dict(schema_to_dict(db_schema))
        assert recovered.relation("WORKS_FOR").attribute("HOURS").data_type == "int"
        assert recovered.relation("DEPARTMENT").attribute("D_DESCRIPTION").is_text

    def test_malformed_document_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"relations": [{"name": "A"}]})


class TestDatabaseRoundTrip:
    def test_round_trip_counts(self, company_db):
        recovered = database_from_dict(database_to_dict(company_db))
        assert recovered.count() == company_db.count()

    def test_round_trip_values(self, company_db):
        recovered = database_from_dict(database_to_dict(company_db))
        assert recovered.get("WORKS_FOR", "e1", "p1")["HOURS"] == 40

    def test_round_trip_labels(self, company_db):
        recovered = database_from_dict(database_to_dict(company_db))
        assert recovered.by_label("w_f2").tid.key == ("e2", "p3")

    def test_load_checks_integrity(self, company_db):
        data = database_to_dict(company_db)
        data["tuples"]["EMPLOYEE"][0]["D_ID"] = "d99"
        with pytest.raises(ForeignKeyError):
            database_from_dict(data)


class TestFiles:
    def test_json_file_round_trip(self, company_db, tmp_path):
        path = tmp_path / "company.json"
        dump_json(company_db, path)
        recovered = load_json(path)
        assert recovered.count() == 16
        assert recovered.get("DEPARTMENT", "d1")["D_NAME"] == "Cs"

    def test_csv_dir_round_trip(self, company_db, tmp_path):
        dump_csv_dir(company_db, tmp_path / "csv")
        recovered = load_csv_dir(company_db.schema, tmp_path / "csv")
        assert recovered.count() == 16
        assert recovered.get("WORKS_FOR", "e3", "p2")["HOURS"] == 70

    def test_csv_null_round_trip(self, company_db, tmp_path):
        company_db.insert("EMPLOYEE", {"SSN": "e9", "L_NAME": "X", "S_NAME": "Y"})
        dump_csv_dir(company_db, tmp_path / "csv")
        recovered = load_csv_dir(company_db.schema, tmp_path / "csv")
        assert recovered.get("EMPLOYEE", "e9")["D_ID"] is None

    def test_csv_missing_file_is_empty_relation(self, company_db, tmp_path):
        dump_csv_dir(company_db, tmp_path / "csv")
        (tmp_path / "csv" / "DEPENDENT.csv").unlink()
        recovered = load_csv_dir(company_db.schema, tmp_path / "csv")
        assert recovered.count("DEPENDENT") == 0
