"""Unit tests for database statistics."""

import pytest

from repro.relational.statistics import DatabaseStatistics


@pytest.fixture
def stats(company_db):
    return DatabaseStatistics(company_db)


class TestCardinalities:
    def test_counts(self, stats):
        assert stats.cardinality("EMPLOYEE") == 4
        assert stats.cardinality("WORKS_FOR") == 4

    def test_unknown_relation_raises(self, stats):
        with pytest.raises(KeyError):
            stats.cardinality("NOPE")


class TestFanOuts:
    def test_employee_department_fanout(self, stats):
        # d1 employs e1, e3; d2 employs e2, e4; d3 employs nobody.
        fanout = stats.fanout("fk_employee_department")
        assert fanout.mean == 2.0
        assert fanout.maximum == 2
        assert fanout.coverage == pytest.approx(2 / 3)

    def test_project_department_fanout(self, stats):
        # d1 controls p1; d2 controls p2, p3.
        fanout = stats.fanout("fk_project_department")
        assert fanout.mean == 1.5
        assert fanout.maximum == 2

    def test_dependent_fanout(self, stats):
        # Only e3 has dependents: two of them.
        fanout = stats.fanout("fk_dependent_employee")
        assert fanout.mean == 2.0
        assert fanout.coverage == pytest.approx(1 / 4)

    def test_works_for_employee_leg(self, stats):
        # Every employee works on exactly one project here.
        fanout = stats.fanout("fk_works_for_employee")
        assert fanout.mean == 1.0
        assert fanout.is_effectively_functional

    def test_unreferenced_fk_reports_zero(self, db_schema):
        from repro.relational.database import Database

        database = Database(db_schema)
        database.insert("DEPARTMENT", {"ID": "d1"})
        stats = DatabaseStatistics(database)
        fanout = stats.fanout("fk_employee_department")
        assert fanout.mean == 0.0
        assert fanout.maximum == 0
        assert fanout.coverage == 0.0

    def test_null_references_excluded(self, company_db):
        company_db.insert("EMPLOYEE", {"SSN": "e9", "L_NAME": "X",
                                       "S_NAME": "Y"})
        stats = DatabaseStatistics(company_db)
        # e9's NULL D_ID contributes nothing.
        assert stats.fanout("fk_employee_department").mean == 2.0


class TestJointAmbiguity:
    def test_expected_joint_ambiguity(self, stats):
        estimate = stats.expected_joint_ambiguity(
            "fk_project_department", "fk_employee_department"
        )
        assert estimate == pytest.approx(1.5 * 2.0)

    def test_floors_at_one(self, db_schema):
        from repro.relational.database import Database

        database = Database(db_schema)
        database.insert("DEPARTMENT", {"ID": "d1"})
        stats = DatabaseStatistics(database)
        assert stats.expected_joint_ambiguity(
            "fk_project_department", "fk_employee_department"
        ) == 1.0

    def test_describe(self, stats):
        text = stats.describe()
        assert "|EMPLOYEE| = 4" in text
        assert "fk_employee_department" in text
