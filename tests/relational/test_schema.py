"""Unit tests for relational schema definitions."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError, UnknownRelationError
from repro.relational.schema import (
    AttributeDef,
    DatabaseSchema,
    ForeignKey,
    Relation,
)


def make_relation(name="A", extra=()):
    return Relation(
        name,
        [AttributeDef("ID"), AttributeDef("NAME")] + list(extra),
        primary_key=["ID"],
    )


class TestAttributeDef:
    def test_defaults(self):
        attribute = AttributeDef("X")
        assert attribute.data_type == "str"
        assert attribute.nullable

    def test_is_text(self):
        assert AttributeDef("X", data_type="text").is_text
        assert not AttributeDef("X").is_text

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            AttributeDef("")

    def test_bad_type_rejected(self):
        with pytest.raises(SchemaError):
            AttributeDef("X", data_type="json")


class TestRelation:
    def test_attribute_order(self):
        relation = make_relation()
        assert relation.attribute_names == ("ID", "NAME")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation("A", [AttributeDef("X"), AttributeDef("X")], primary_key=["X"])

    def test_needs_attributes(self):
        with pytest.raises(SchemaError):
            Relation("A", [], primary_key=["ID"])

    def test_needs_primary_key(self):
        with pytest.raises(SchemaError):
            Relation("A", [AttributeDef("ID")], primary_key=[])

    def test_primary_key_must_exist(self):
        with pytest.raises(UnknownAttributeError):
            Relation("A", [AttributeDef("ID")], primary_key=["MISSING"])

    def test_text_attributes(self):
        relation = Relation(
            "A",
            [AttributeDef("ID"), AttributeDef("BODY", data_type="text")],
            primary_key=["ID"],
        )
        assert [a.name for a in relation.text_attributes] == ["BODY"]

    def test_attribute_lookup_raises_for_unknown(self):
        with pytest.raises(UnknownAttributeError):
            make_relation().attribute("MISSING")

    def test_middle_flag(self):
        relation = Relation(
            "M",
            [AttributeDef("A_ID"), AttributeDef("B_ID")],
            primary_key=["A_ID", "B_ID"],
            is_middle=True,
            implements_relationship="R",
        )
        assert relation.is_middle
        assert relation.implements_relationship == "R"


class TestForeignKey:
    def test_column_alignment_enforced(self):
        with pytest.raises(SchemaError):
            ForeignKey("f", "A", ("X", "Y"), "B", ("ID",))

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("f", "A", (), "B", ())

    def test_str(self):
        fk = ForeignKey("f", "A", ("B_ID",), "B", ("ID",))
        assert str(fk) == "A(B_ID) -> B(ID)"


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        schema = DatabaseSchema(relations=[make_relation("A")])
        assert schema.relation("A").name == "A"
        assert schema.has_relation("A")

    def test_duplicate_relation_rejected(self):
        schema = DatabaseSchema(relations=[make_relation("A")])
        with pytest.raises(SchemaError):
            schema.add_relation(make_relation("A"))

    def test_unknown_relation_raises(self):
        with pytest.raises(UnknownRelationError):
            DatabaseSchema().relation("A")

    def test_fk_source_column_must_exist(self):
        schema = DatabaseSchema(relations=[make_relation("A"), make_relation("B")])
        with pytest.raises(UnknownAttributeError):
            schema.add_foreign_key(ForeignKey("f", "A", ("MISSING",), "B", ("ID",)))

    def test_fk_must_reference_full_primary_key(self):
        schema = DatabaseSchema(relations=[make_relation("A"), make_relation("B")])
        with pytest.raises(SchemaError):
            schema.add_foreign_key(ForeignKey("f", "A", ("NAME",), "B", ("NAME",)))

    def test_duplicate_fk_rejected(self):
        schema = DatabaseSchema(
            relations=[make_relation("A", [AttributeDef("B_ID")]), make_relation("B")]
        )
        schema.add_foreign_key(ForeignKey("f", "A", ("B_ID",), "B", ("ID",)))
        with pytest.raises(SchemaError):
            schema.add_foreign_key(ForeignKey("f", "A", ("B_ID",), "B", ("ID",)))

    def test_fk_navigation(self, db_schema):
        outgoing = db_schema.foreign_keys_from("WORKS_FOR")
        assert {fk.target for fk in outgoing} == {"EMPLOYEE", "PROJECT"}
        incoming = db_schema.foreign_keys_to("DEPARTMENT")
        assert {fk.source for fk in incoming} == {"PROJECT", "EMPLOYEE"}

    def test_adjacent_relations(self, db_schema):
        assert db_schema.adjacent_relations("EMPLOYEE") == (
            "DEPARTMENT",
            "DEPENDENT",
            "WORKS_FOR",
        )

    def test_middle_relations(self, db_schema):
        assert [r.name for r in db_schema.middle_relations()] == ["WORKS_FOR"]

    def test_validate_rejects_underlinked_middle(self):
        schema = DatabaseSchema(
            relations=[
                Relation(
                    "M",
                    [AttributeDef("A_ID")],
                    primary_key=["A_ID"],
                    is_middle=True,
                ),
                make_relation("A"),
            ]
        )
        schema.add_foreign_key(ForeignKey("f", "M", ("A_ID",), "A", ("ID",)))
        with pytest.raises(SchemaError):
            schema.validate()

    def test_replace_relation(self):
        schema = DatabaseSchema(relations=[make_relation("A")])
        schema.replace_relation(make_relation("A", [AttributeDef("EXTRA")]))
        assert schema.relation("A").has_attribute("EXTRA")

    def test_replace_unknown_relation_raises(self):
        with pytest.raises(UnknownRelationError):
            DatabaseSchema().replace_relation(make_relation("A"))

    def test_replace_cannot_drop_fk_column(self):
        schema = DatabaseSchema(
            relations=[make_relation("A", [AttributeDef("B_ID")]), make_relation("B")]
        )
        schema.add_foreign_key(ForeignKey("f", "A", ("B_ID",), "B", ("ID",)))
        with pytest.raises(SchemaError):
            schema.replace_relation(make_relation("A"))  # loses B_ID
        # And the failed replacement must not have been applied.
        assert schema.relation("A").has_attribute("B_ID")

    def test_describe_contains_relations_and_fks(self, db_schema):
        description = db_schema.describe()
        assert "WORKS_FOR" in description
        assert "[middle]" in description
        assert "fk_employee_department" in description
