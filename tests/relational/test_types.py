"""Unit tests for attribute domains and coercion."""

import pytest

from repro.errors import TypeCoercionError
from repro.relational.types import SUPPORTED_TYPES, coerce_value, is_text_type


class TestNullHandling:
    @pytest.mark.parametrize("data_type", sorted(SUPPORTED_TYPES))
    def test_none_passes_through(self, data_type):
        assert coerce_value(None, data_type) is None


class TestStrings:
    def test_str_passthrough(self):
        assert coerce_value("hello", "str") == "hello"

    def test_text_passthrough(self):
        assert coerce_value("hello world", "text") == "hello world"

    def test_number_to_str(self):
        assert coerce_value(42, "str") == "42"

    def test_bool_to_str(self):
        assert coerce_value(True, "str") == "True"

    def test_list_to_str_rejected(self):
        with pytest.raises(TypeCoercionError):
            coerce_value([1, 2], "str")


class TestInts:
    def test_int_passthrough(self):
        assert coerce_value(7, "int") == 7

    def test_str_to_int(self):
        assert coerce_value("7", "int") == 7

    def test_str_with_spaces(self):
        assert coerce_value(" 7 ", "int") == 7

    def test_whole_float_to_int(self):
        assert coerce_value(7.0, "int") == 7

    def test_fractional_float_rejected(self):
        with pytest.raises(TypeCoercionError):
            coerce_value(7.5, "int")

    def test_bool_rejected(self):
        with pytest.raises(TypeCoercionError):
            coerce_value(True, "int")

    def test_garbage_rejected(self):
        with pytest.raises(TypeCoercionError):
            coerce_value("seven", "int")


class TestFloats:
    def test_float_passthrough(self):
        assert coerce_value(1.5, "float") == 1.5

    def test_int_to_float(self):
        assert coerce_value(2, "float") == 2.0

    def test_str_to_float(self):
        assert coerce_value("2.5", "float") == 2.5

    def test_bool_rejected(self):
        with pytest.raises(TypeCoercionError):
            coerce_value(False, "float")

    def test_garbage_rejected(self):
        with pytest.raises(TypeCoercionError):
            coerce_value("pi", "float")


class TestBools:
    @pytest.mark.parametrize("token", ["true", "True", "YES", "y", "1", "t"])
    def test_truthy_tokens(self, token):
        assert coerce_value(token, "bool") is True

    @pytest.mark.parametrize("token", ["false", "No", "n", "0", "F"])
    def test_falsy_tokens(self, token):
        assert coerce_value(token, "bool") is False

    def test_bool_passthrough(self):
        assert coerce_value(True, "bool") is True

    def test_zero_one_ints(self):
        assert coerce_value(1, "bool") is True
        assert coerce_value(0, "bool") is False

    def test_other_ints_rejected(self):
        with pytest.raises(TypeCoercionError):
            coerce_value(2, "bool")

    def test_garbage_rejected(self):
        with pytest.raises(TypeCoercionError):
            coerce_value("maybe", "bool")


class TestMeta:
    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeCoercionError):
            coerce_value("x", "blob")

    def test_is_text_type(self):
        assert is_text_type("text")
        assert not is_text_type("str")
        assert not is_text_type("int")

    def test_supported_types(self):
        assert SUPPORTED_TYPES == {"str", "text", "int", "float", "bool"}
