"""Unit tests for the database instance store."""

import pytest

from repro.errors import (
    ForeignKeyError,
    IntegrityError,
    PrimaryKeyError,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.relational.database import Database, TupleId


class TestInsert:
    def test_insert_and_get(self, company_db):
        record = company_db.get("DEPARTMENT", "d1")
        assert record is not None
        assert record["D_NAME"] == "Cs"

    def test_insert_coerces_types(self, company_db):
        record = company_db.get("WORKS_FOR", "e1", "p1")
        assert record["HOURS"] == 40
        assert isinstance(record["HOURS"], int)

    def test_missing_attributes_become_null(self, db_schema):
        database = Database(db_schema)
        database.insert("DEPARTMENT", {"ID": "dx"})
        assert database.get("DEPARTMENT", "dx")["D_NAME"] is None

    def test_unknown_attribute_rejected(self, db_schema):
        database = Database(db_schema)
        with pytest.raises(UnknownAttributeError):
            database.insert("DEPARTMENT", {"ID": "dx", "NOPE": 1})

    def test_duplicate_primary_key_rejected(self, company_db):
        with pytest.raises(PrimaryKeyError):
            company_db.insert("DEPARTMENT", {"ID": "d1", "D_NAME": "dup"})

    def test_null_primary_key_rejected(self, db_schema):
        database = Database(db_schema)
        with pytest.raises(PrimaryKeyError):
            database.insert("DEPARTMENT", {"D_NAME": "x"})

    def test_dangling_fk_rejected_when_enforcing(self, company_db):
        with pytest.raises(ForeignKeyError):
            company_db.insert(
                "EMPLOYEE",
                {"SSN": "e9", "L_NAME": "New", "S_NAME": "Guy", "D_ID": "d99"},
            )

    def test_null_fk_allowed(self, company_db):
        record = company_db.insert(
            "EMPLOYEE", {"SSN": "e9", "L_NAME": "New", "S_NAME": "Guy"}
        )
        assert record["D_ID"] is None

    def test_unknown_relation_rejected(self, company_db):
        with pytest.raises(UnknownRelationError):
            company_db.insert("NOPE", {"ID": "x"})

    def test_insert_many(self, db_schema):
        database = Database(db_schema)
        rows = [{"ID": f"d{i}"} for i in range(3)]
        records = database.insert_many("DEPARTMENT", rows)
        assert len(records) == 3
        assert database.count("DEPARTMENT") == 3


class TestLabels:
    def test_default_label_is_key(self, company_db):
        assert company_db.get("DEPARTMENT", "d1").label == "d1"

    def test_explicit_label(self, company_db):
        assert company_db.get("WORKS_FOR", "e1", "p1").label == "w_f1"

    def test_by_label(self, company_db):
        assert company_db.by_label("w_f3").tid.key == ("e3", "p2")

    def test_by_label_missing_raises(self, company_db):
        with pytest.raises(IntegrityError):
            company_db.by_label("nope")


class TestLookup:
    def test_tuples_in_insertion_order(self, company_db):
        labels = [t.label for t in company_db.tuples("EMPLOYEE")]
        assert labels == ["e1", "e2", "e3", "e4"]

    def test_all_tuples_count(self, company_db):
        assert sum(1 for __ in company_db.all_tuples()) == 16

    def test_count(self, company_db):
        assert company_db.count() == 16
        assert company_db.count("PROJECT") == 3

    def test_tuple_by_tid(self, company_db):
        tid = TupleId("EMPLOYEE", ("e1",))
        assert company_db.tuple(tid)["L_NAME"] == "Smith"

    def test_tuple_missing_raises(self, company_db):
        with pytest.raises(IntegrityError):
            company_db.tuple(TupleId("EMPLOYEE", ("e99",)))

    def test_tuple_unknown_relation_raises(self, company_db):
        with pytest.raises(UnknownRelationError):
            company_db.tuple(TupleId("NOPE", ("x",)))

    def test_get_returns_none_for_missing(self, company_db):
        assert company_db.get("EMPLOYEE", "e99") is None


class TestNavigation:
    def test_referenced_tuple(self, company_db):
        fk = company_db.schema.foreign_key("fk_employee_department")
        employee = company_db.get("EMPLOYEE", "e1")
        department = company_db.referenced_tuple(employee, fk)
        assert department.tid == TupleId("DEPARTMENT", ("d1",))

    def test_referenced_tuple_null_fk(self, company_db):
        record = company_db.insert(
            "EMPLOYEE", {"SSN": "e9", "L_NAME": "X", "S_NAME": "Y"}
        )
        fk = company_db.schema.foreign_key("fk_employee_department")
        assert company_db.referenced_tuple(record, fk) is None

    def test_referenced_tuple_wrong_relation_raises(self, company_db):
        fk = company_db.schema.foreign_key("fk_employee_department")
        department = company_db.get("DEPARTMENT", "d1")
        with pytest.raises(IntegrityError):
            company_db.referenced_tuple(department, fk)

    def test_referencing_tuples(self, company_db):
        department = company_db.get("DEPARTMENT", "d1")
        labels = sorted(t.label for t in company_db.referencing_tuples(department))
        assert labels == ["e1", "e3", "p1"]

    def test_referencing_tuples_single_fk(self, company_db):
        fk = company_db.schema.foreign_key("fk_employee_department")
        department = company_db.get("DEPARTMENT", "d1")
        labels = sorted(
            t.label for t in company_db.referencing_tuples(department, fk)
        )
        assert labels == ["e1", "e3"]


class TestDelete:
    def test_delete_unreferenced(self, company_db):
        tid = TupleId("DEPENDENT", ("t2",))
        company_db.delete(tid)
        assert company_db.get("DEPENDENT", "t2") is None

    def test_delete_referenced_rejected(self, company_db):
        with pytest.raises(IntegrityError):
            company_db.delete(TupleId("DEPARTMENT", ("d1",)))

    def test_delete_missing_raises(self, company_db):
        with pytest.raises(IntegrityError):
            company_db.delete(TupleId("DEPENDENT", ("t99",)))


class TestDeferredIntegrity:
    def test_deferred_mode_allows_forward_references(self, db_schema):
        database = Database(db_schema, enforce_foreign_keys=False)
        database.insert(
            "EMPLOYEE", {"SSN": "e1", "L_NAME": "A", "S_NAME": "B", "D_ID": "d1"}
        )
        database.insert("DEPARTMENT", {"ID": "d1"})
        database.check_integrity()

    def test_check_integrity_catches_dangling(self, db_schema):
        database = Database(db_schema, enforce_foreign_keys=False)
        database.insert(
            "EMPLOYEE", {"SSN": "e1", "L_NAME": "A", "S_NAME": "B", "D_ID": "d9"}
        )
        with pytest.raises(ForeignKeyError):
            database.check_integrity()

    def test_company_instance_is_consistent(self, company_db):
        company_db.check_integrity()


class TestTupleClass:
    def test_equality_by_tid(self, company_db):
        first = company_db.get("EMPLOYEE", "e1")
        second = company_db.tuple(TupleId("EMPLOYEE", ("e1",)))
        assert first == second
        assert hash(first) == hash(second)

    def test_getitem_and_get(self, company_db):
        record = company_db.get("EMPLOYEE", "e1")
        assert record["L_NAME"] == "Smith"
        assert record.get("MISSING", "default") == "default"

    def test_tid_str(self):
        assert str(TupleId("EMPLOYEE", ("e1",))) == "EMPLOYEE(e1)"
        assert str(TupleId("WORKS_FOR", ("e1", "p1"))) == "WORKS_FOR(e1,p1)"


class TestUpdate:
    def test_update_changes_values_in_place(self, company_db):
        tid = TupleId("DEPARTMENT", ("d1",))
        record = company_db.tuple(tid)
        company_db.update(tid, {"D_DESCRIPTION": "robotics"})
        assert record["D_DESCRIPTION"] == "robotics"
        assert company_db.tuple(tid) is record

    def test_update_rejects_unknown_attribute(self, company_db):
        with pytest.raises(UnknownAttributeError):
            company_db.update(
                TupleId("DEPARTMENT", ("d1",)), {"NO_SUCH": 1}
            )

    def test_update_rejects_pk_change(self, company_db):
        with pytest.raises(PrimaryKeyError):
            company_db.update(TupleId("DEPARTMENT", ("d1",)), {"ID": "d9"})

    def test_update_allows_equal_pk_value(self, company_db):
        company_db.update(
            TupleId("DEPARTMENT", ("d1",)),
            {"ID": "d1", "D_DESCRIPTION": "same key"},
        )

    def test_update_validates_changed_foreign_keys(self, company_db):
        with pytest.raises(ForeignKeyError):
            company_db.update(TupleId("DEPENDENT", ("t1",)), {"ESSN": "e99"})

    def test_delete_referenced_error_is_clear(self, company_db):
        with pytest.raises(IntegrityError, match="still referenced") as exc:
            company_db.delete(TupleId("EMPLOYEE", ("e1",)))
        # The message names the victim and (some of) its referencers, so
        # the caller can resolve the conflict instead of corrupting the
        # graph by forcing the delete.
        assert "e1" in str(exc.value)
        assert company_db.get("EMPLOYEE", "e1") is not None
