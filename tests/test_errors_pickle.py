"""Pickle round-trips for the whole error hierarchy.

The parallel serving layer ships errors across worker pipes, so every
:class:`ReproError` subclass — current and future — must survive
pickling with its message, args and structured context intact.  The
hierarchy is enumerated via ``__subclasses__()`` after importing every
``repro`` module, so a subclass added anywhere in the tree is covered
automatically (and a stateful one without ``__reduce__`` fails here as
well as in the PKL01 lint rule).
"""

import importlib
import pickle
import pkgutil

import pytest

import repro
from repro.errors import ReproError


def _import_everything():
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        importlib.import_module(module.name)


def _error_classes():
    _import_everything()
    found = []
    frontier = [ReproError]
    while frontier:
        cls = frontier.pop()
        for sub in cls.__subclasses__():
            if sub not in found:
                found.append(sub)
                frontier.append(sub)
    return sorted(found, key=lambda cls: cls.__qualname__)


ERROR_CLASSES = _error_classes()


def test_hierarchy_enumeration_found_the_known_errors():
    names = {cls.__name__ for cls in ERROR_CLASSES}
    assert {"SchemaError", "IntegrityError", "SnapshotError"} <= names
    assert len(ERROR_CLASSES) >= 10


@pytest.mark.parametrize(
    "cls", ERROR_CLASSES, ids=lambda cls: cls.__qualname__
)
def test_roundtrip_preserves_message_args_and_context(cls):
    error = cls("boom", shard=3, hint="xml")
    for protocol in range(2, pickle.HIGHEST_PROTOCOL + 1):
        restored = pickle.loads(pickle.dumps(error, protocol))
        assert type(restored) is cls
        assert restored.args == error.args
        assert str(restored) == str(error)
        assert restored.context == {"shard": 3, "hint": "xml"}
        assert restored.__dict__ == error.__dict__


@pytest.mark.parametrize(
    "cls", ERROR_CLASSES, ids=lambda cls: cls.__qualname__
)
def test_roundtrip_does_not_rerender_context_into_message(cls):
    # The PR 5 bug: unpickling re-ran __init__ on the already-rendered
    # message, doubling the context details.  One round-trip must be a
    # fixed point.
    error = cls("boom", shard=3)
    once = pickle.loads(pickle.dumps(error))
    twice = pickle.loads(pickle.dumps(once))
    assert str(once) == str(error)
    assert str(twice) == str(once)
    assert once.context == twice.context == {"shard": 3}


def test_contextless_error_roundtrip():
    error = ReproError("plain")
    restored = pickle.loads(pickle.dumps(error))
    assert str(restored) == "plain"
    assert restored.context == {}


@pytest.mark.parametrize(
    "cls", ERROR_CLASSES, ids=lambda cls: cls.__qualname__
)
def test_subclasses_stay_pickle_safe_by_construction(cls):
    # Guard rail matching PKL01: a subclass may add state only alongside
    # a pickle hook of its own.  Everything today inherits the base
    # __init__/__reduce__ pair.
    defines_init = "__init__" in cls.__dict__
    defines_hook = any(
        hook in cls.__dict__
        for hook in ("__reduce__", "__reduce_ex__", "__getstate__")
    )
    assert not defines_init or defines_hook, (
        f"{cls.__qualname__} overrides __init__ without a pickle hook; "
        "its state will be lost crossing worker pipes (see PKL01)"
    )
