"""Shared fixtures: the paper's database and derived structures."""

from __future__ import annotations

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.datasets.company import (
    build_company_database,
    build_company_er_schema,
    build_company_schema,
)
from repro.datasets.synthetic import SyntheticConfig, generate_company_like
from repro.graph.data_graph import DataGraph
from repro.graph.schema_graph import SchemaGraph
from repro.relational.index import InvertedIndex


@pytest.fixture
def er_schema():
    """Figure 1's ER schema."""
    return build_company_er_schema()


@pytest.fixture
def db_schema():
    """Figure 2's relational schema."""
    return build_company_schema()


@pytest.fixture
def company_db():
    """Figure 2's instance, verbatim."""
    return build_company_database()


@pytest.fixture
def data_graph(company_db):
    return DataGraph(company_db)


@pytest.fixture
def schema_graph(db_schema):
    return SchemaGraph(db_schema)


@pytest.fixture
def index(company_db):
    return InvertedIndex(company_db)


@pytest.fixture
def engine(company_db):
    return KeywordSearchEngine(company_db)


@pytest.fixture(autouse=True)
def _obs_off():
    """Leave observability disabled and empty around every test.

    Tests that enable repro.obs flip process-global flags and fill the
    process-global registry/ambient trace; resetting afterwards keeps
    them from leaking determinism-breaking state into later tests.
    """
    yield
    from repro import obs

    obs.set_enabled(False)
    obs.reset()


@pytest.fixture(scope="session")
def small_synthetic():
    """A small deterministic synthetic database (shared, do not mutate)."""
    return generate_company_like(
        SyntheticConfig(
            departments=3,
            projects_per_department=2,
            employees_per_department=4,
            works_on_per_employee=2,
            dependents_per_employee=0.5,
            seed=42,
        )
    )
