"""Unit tests for the BANKS backward expanding baseline."""

import math

import pytest

from repro.baselines.banks import BanksSearch
from repro.core.matching import match_keywords
from repro.errors import QueryError
from repro.relational.database import TupleId


def tid(relation, *key):
    return TupleId(relation, tuple(key))


@pytest.fixture
def banks(data_graph):
    return BanksSearch(data_graph)


@pytest.fixture
def smith_xml(index):
    return match_keywords(index, ("XML", "Smith"))


class TestDirectedGraph:
    def test_forward_edge_from_referencing_tuple(self, banks):
        graph = banks.directed_graph
        assert graph.has_edge(tid("EMPLOYEE", "e1"), tid("DEPARTMENT", "d1"))

    def test_backward_edge_exists(self, banks):
        graph = banks.directed_graph
        assert graph.has_edge(tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1"))

    def test_forward_weight_is_one(self, banks):
        graph = banks.directed_graph
        weight = graph[tid("EMPLOYEE", "e1")][tid("DEPARTMENT", "d1")]["weight"]
        assert weight == 1.0

    def test_backward_weight_grows_with_indegree(self, banks):
        graph = banks.directed_graph
        # d1 is referenced by e1, e3 and p1 (indegree 3).
        weight = graph[tid("DEPARTMENT", "d1")][tid("EMPLOYEE", "e1")]["weight"]
        assert weight == pytest.approx(1.0 + math.log2(4))

    def test_isolated_node_present(self, banks):
        assert tid("DEPARTMENT", "d3") in banks.directed_graph

    def test_node_prestige(self, banks):
        assert banks.node_prestige(tid("DEPARTMENT", "d1")) > \
            banks.node_prestige(tid("DEPARTMENT", "d3"))


class TestSearch:
    def test_answers_cover_all_keywords(self, banks, smith_xml):
        for answer in banks.search(smith_xml, top_k=5):
            assert answer.covered_keywords == {"XML", "Smith"}

    def test_answers_sorted_by_score(self, banks, smith_xml):
        answers = banks.search(smith_xml, top_k=10)
        scores = [answer.score for answer in answers]
        assert scores == sorted(scores)

    def test_top_answer_is_direct_connection(self, banks, smith_xml):
        best = banks.search(smith_xml, top_k=1)[0]
        members = {t for t in best.tuple_ids()}
        # A root on a Smith employee with a path to an XML tuple of cost 1:
        # d1->e1 or d2->e2 shaped answers dominate.
        assert members in (
            {tid("DEPARTMENT", "d1"), tid("EMPLOYEE", "e1")},
            {tid("DEPARTMENT", "d2"), tid("EMPLOYEE", "e2")},
        )

    def test_paths_start_at_root(self, banks, smith_xml):
        for answer in banks.search(smith_xml, top_k=5):
            for __, path in answer.paths:
                assert path[0] == answer.root

    def test_path_ends_at_keyword_tuple(self, banks, smith_xml, index):
        keyword_tuples = {
            match.keyword: set(match.tuple_ids) for match in smith_xml
        }
        for answer in banks.search(smith_xml, top_k=5):
            for keyword, path in answer.paths:
                assert path[-1] in keyword_tuples[keyword]

    def test_top_k_respected(self, banks, smith_xml):
        assert len(banks.search(smith_xml, top_k=3)) == 3

    def test_max_distance_prunes(self, banks, smith_xml):
        near = banks.search(smith_xml, top_k=50, max_distance=1.0)
        far = banks.search(smith_xml, top_k=50, max_distance=10.0)
        assert len(near) < len(far)

    def test_unmatched_keyword_yields_nothing(self, banks, index):
        matches = match_keywords(index, ("XML", "unicorn"))
        assert banks.search(matches) == []

    def test_no_keywords_rejected(self, banks):
        with pytest.raises(QueryError):
            banks.search([])

    def test_answers_deduplicated_by_tuple_set(self, banks, smith_xml):
        answers = banks.search(smith_xml, top_k=50)
        member_sets = [frozenset(answer.tuple_ids()) for answer in answers]
        assert len(member_sets) == len(set(member_sets))

    def test_deterministic(self, banks, smith_xml):
        first = [a.render() for a in banks.search(smith_xml, top_k=5)]
        second = [a.render() for a in banks.search(smith_xml, top_k=5)]
        assert first == second

    def test_rdb_length_counts_tree_edges(self, banks, smith_xml):
        best = banks.search(smith_xml, top_k=1)[0]
        assert best.rdb_length == 1

    def test_prestige_weight_changes_scores(self, data_graph, smith_xml):
        plain = BanksSearch(data_graph).search(smith_xml, top_k=3)
        weighted = BanksSearch(data_graph, prestige_weight=0.5).search(
            smith_xml, top_k=3
        )
        assert any(
            p.score != w.score for p, w in zip(plain, weighted)
        )


class TestThreeKeywords:
    def test_three_keyword_answers(self, banks, index):
        matches = match_keywords(index, ("Smith", "Alice", "Cs"))
        answers = banks.search(matches, top_k=3)
        assert answers
        for answer in answers:
            assert answer.covered_keywords == {"Smith", "Alice", "Cs"}
