"""Unit tests for the BLINKS-style indexed baseline."""

import math

import pytest

from repro.baselines.banks import BanksSearch
from repro.baselines.blinks import BlinksSearch, KeywordDistanceIndex
from repro.core.matching import match_keywords
from repro.errors import QueryError
from repro.relational.database import TupleId


def tid(relation, *key):
    return TupleId(relation, tuple(key))


@pytest.fixture
def blinks(data_graph, index):
    return BlinksSearch(data_graph, index, keywords=("xml", "smith"))


@pytest.fixture
def smith_xml(index):
    return match_keywords(index, ("XML", "Smith"))


class TestKeywordDistanceIndex:
    def test_distance_zero_at_match_tuples(self, data_graph, index):
        banks = BanksSearch(data_graph)
        kd_index = KeywordDistanceIndex(banks, index, keywords=("smith",))
        assert kd_index.distance("smith", tid("EMPLOYEE", "e1")) == 0.0
        assert kd_index.distance("smith", tid("EMPLOYEE", "e2")) == 0.0

    def test_distance_matches_banks_weights(self, data_graph, index):
        banks = BanksSearch(data_graph)
        kd_index = KeywordDistanceIndex(banks, index, keywords=("smith",))
        # d1 -> e1 is a backward edge with weight 1 + log2(1 + indeg(d1)).
        expected = banks.directed_graph[tid("DEPARTMENT", "d1")][
            tid("EMPLOYEE", "e1")
        ]["weight"]
        assert kd_index.distance("smith", tid("DEPARTMENT", "d1")) == \
            pytest.approx(expected)

    def test_unreachable_is_infinite(self, data_graph, index):
        banks = BanksSearch(data_graph)
        kd_index = KeywordDistanceIndex(banks, index, keywords=("smith",))
        assert math.isinf(kd_index.distance("smith", tid("DEPARTMENT", "d3")))

    def test_unindexed_keyword_is_infinite(self, data_graph, index):
        banks = BanksSearch(data_graph)
        kd_index = KeywordDistanceIndex(banks, index, keywords=("smith",))
        assert math.isinf(kd_index.distance("xml", tid("DEPARTMENT", "d1")))
        assert not kd_index.is_indexed("xml")

    def test_path_reconstruction(self, data_graph, index):
        banks = BanksSearch(data_graph)
        kd_index = KeywordDistanceIndex(banks, index, keywords=("smith",))
        path = kd_index.path("smith", tid("DEPARTMENT", "d1"))
        assert path[0] == tid("DEPARTMENT", "d1")
        assert path[-1] in (tid("EMPLOYEE", "e1"), tid("EMPLOYEE", "e2"))

    def test_size_counts_entries(self, data_graph, index):
        banks = BanksSearch(data_graph)
        kd_index = KeywordDistanceIndex(banks, index, keywords=("smith",))
        assert kd_index.size() == len(
            kd_index._distances["smith"]  # noqa: SLF001 - white-box check
        )

    def test_full_vocabulary_indexing(self, data_graph, index):
        banks = BanksSearch(data_graph)
        kd_index = KeywordDistanceIndex(banks, index)  # whole vocabulary
        assert set(kd_index.indexed_keywords()) == set(index.vocabulary())


class TestBlinksSearch:
    def test_same_answers_as_banks(self, data_graph, index, blinks, smith_xml):
        banks_answers = BanksSearch(data_graph).search(smith_xml, top_k=10)
        blinks_answers = blinks.search(smith_xml, top_k=10)
        assert [frozenset(a.tuple_ids()) for a in banks_answers] == [
            frozenset(a.tuple_ids()) for a in blinks_answers
        ]

    def test_same_scores_as_banks(self, data_graph, index, blinks, smith_xml):
        banks_answers = BanksSearch(data_graph).search(smith_xml, top_k=10)
        blinks_answers = blinks.search(smith_xml, top_k=10)
        for banks_answer, blinks_answer in zip(banks_answers, blinks_answers):
            assert banks_answer.score == pytest.approx(blinks_answer.score)

    def test_unindexed_keyword_indexed_on_the_fly(self, data_graph, index):
        blinks = BlinksSearch(data_graph, index, keywords=("xml",))
        matches = match_keywords(index, ("XML", "Alice"))
        answers = blinks.search(matches, top_k=5)
        assert answers
        assert blinks.index.is_indexed("alice")

    def test_unmatched_keyword_yields_nothing(self, blinks, index):
        matches = match_keywords(index, ("XML", "unicorn"))
        assert blinks.search(matches) == []

    def test_no_keywords_rejected(self, blinks):
        with pytest.raises(QueryError):
            blinks.search([])

    def test_top_k_respected(self, blinks, smith_xml):
        assert len(blinks.search(smith_xml, top_k=2)) == 2

    def test_deterministic(self, blinks, smith_xml):
        first = [a.render() for a in blinks.search(smith_xml, top_k=5)]
        second = [a.render() for a in blinks.search(smith_xml, top_k=5)]
        assert first == second
